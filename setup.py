"""Legacy shim: lets `pip install -e .` fall back to setuptools' develop
mode in offline environments that lack the `wheel` package (modern
PEP 660 editable installs need it to build the editable wheel)."""

from setuptools import setup

setup()
