"""One-line deploy-storm summary for the CI job summary.

Usage::

    python benchmarks/summarize_deploy_storm.py [results.json]

Reads the ``deploy_storm`` section of ``BENCH_simulator.json`` and prints
a short NDJSON-vs-binary comparison in GitHub-flavored markdown — CI
appends it to ``$GITHUB_STEP_SUMMARY`` so the fast-path number is visible
on the workflow page without opening the benchmark artifact.  Exits 0
even when the section is missing (the storm bench may not have run);
the perf gate, not this summary, is the enforcement point.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_RESULTS = REPO_ROOT / "BENCH_simulator.json"


def main(argv: list[str]) -> int:
    results_path = Path(argv[1]) if len(argv) > 1 else DEFAULT_RESULTS
    try:
        results = json.loads(results_path.read_text())
    except (OSError, ValueError) as exc:
        print(f"deploy-storm summary: cannot read {results_path}: {exc}")
        return 0
    storm = results.get("deploy_storm")
    if not storm:
        print("deploy-storm summary: no `deploy_storm` section in results")
        return 0
    ndjson = storm.get("ndjson", {})
    binary = storm.get("binary", {})
    print(
        "**Deploy storm** — NDJSON "
        f"{ndjson.get('deploys_per_s', 0):,.0f} deploys/s "
        f"(p50 {ndjson.get('p50_ms', 0):.2f} ms) vs binary `deploy_many` "
        f"{binary.get('deploys_per_s', 0):,.0f} deploys/s "
        f"(p50 {binary.get('p50_ms', 0):.3f} ms amortized, "
        f"{binary.get('batch_size', 0)} deploys/frame): "
        f"**{storm.get('speedup', 0):.1f}x**"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
