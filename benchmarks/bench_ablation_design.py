"""Ablations of P4runpro design choices called out in DESIGN.md.

1. Register-lifetime elision (§4.2): program depth (= stage consumption)
   with and without the liveness optimization for supportive-register
   backups, across the 15-program library.
2. Recirculation budget R: which library programs remain deployable at
   R = 0 / 1 / 2, and the logic-RPB headroom R buys.
3. Address-translation mechanism: VLIW/stage cost of the mask-based
   scheme vs the shift- and TCAM-based alternatives the paper rejects
   (§4.1.2), as a static resource estimate.
"""

from _common import banner, fmt_row, once

from repro.compiler.allocation import build_problem
from repro.compiler.compiler import compile_source, parse_and_check
from repro.compiler.ir import assign_depths, build_ir
from repro.compiler.solver import AllocationSolver
from repro.compiler.objectives import f1
from repro.compiler.target import TargetSpec, UnlimitedResources
from repro.compiler.translate import align_memory_depths, expand_pseudo, insert_offsets
from repro.lang.errors import AllocationError
from repro.programs import ALL_PROGRAM_NAMES, PROGRAMS


def depth_with(source: str, use_liveness: bool) -> tuple[int, int]:
    """(depth, backups) after a full translation with/without liveness."""
    unit = parse_and_check(source)
    ir = build_ir(unit.programs[0])
    stats = expand_pseudo(ir, use_liveness=use_liveness)
    insert_offsets(ir)
    align_memory_depths(ir)
    assign_depths(ir)
    return ir.max_depth(), stats.backups_needed


def test_ablation_liveness(benchmark):
    def run():
        rows = {}
        for name in ALL_PROGRAM_NAMES:
            source = PROGRAMS[name].source
            with_liveness = depth_with(source, True)
            without = depth_with(source, False)
            rows[name] = (with_liveness, without)
        return rows

    rows = once(benchmark, run)
    banner("Ablation: register-lifetime elision of supportive-register backups")
    widths = [10, 14, 14, 14, 14]
    print(
        fmt_row(
            "program", "depth (live)", "depth (no)", "backups (live)", "backups (no)",
            widths=widths,
        )
    )
    total_saved = 0
    for name, ((d1, b1), (d2, b2)) in rows.items():
        total_saved += d2 - d1
        print(fmt_row(name, d1, d2, b1, b2, widths=widths))
    print(f"\ntotal stages saved across the library: {total_saved}")
    # The optimization never hurts and saves stages where pseudo
    # primitives appear (calc's SUB, hll's ANDI, nc/bf's MOVE...).
    for name, ((d1, b1), (d2, b2)) in rows.items():
        assert d1 <= d2
        assert b1 <= b2
    assert total_saved > 0
    assert rows["calc"][1][0] > rows["calc"][0][0]  # calc benefits


def test_ablation_recirculation_budget(benchmark):
    def run():
        outcome = {}
        for r in (0, 1, 2):
            spec = TargetSpec(max_recirculations=r)
            solver = AllocationSolver(spec, UnlimitedResources(spec))
            deployable = []
            for name in ALL_PROGRAM_NAMES:
                compiled = compile_source(PROGRAMS[name].source)  # translate only
                try:
                    solver.solve(compiled.problem, f1())
                    deployable.append(name)
                except AllocationError:
                    pass
            outcome[r] = deployable
        return outcome

    outcome = once(benchmark, run)
    banner("Ablation: recirculation budget R vs deployable programs")
    for r, names in outcome.items():
        print(f"R={r}: {len(names)}/15 deployable; missing: "
              f"{sorted(set(ALL_PROGRAM_NAMES) - set(names)) or '-'}")
    # R=0 cannot host the two long programs; R=1 hosts all 15 (paper §6.3).
    assert set(ALL_PROGRAM_NAMES) - set(outcome[0]) == {"hh", "nc"}
    assert set(outcome[1]) == set(ALL_PROGRAM_NAMES)
    assert set(outcome[2]) == set(ALL_PROGRAM_NAMES)


def test_ablation_chain_vs_recirculation(benchmark):
    """§4.1.3's deployment alternative: a 2-hop chain hosts the long
    programs without recirculation, offers more logic RPBs, and avoids the
    Fig. 11 throughput loss — at the price of rejecting programs that
    revisit a virtual memory (each hop has its own arrays)."""
    from repro.compiler.target import ChainSpec
    from repro.controlplane import Controller

    def run():
        single_spec = TargetSpec()
        chain_spec = ChainSpec(num_switches=2)
        ctl_chain, _ = Controller.with_chain(2)
        deployable = []
        for name in ALL_PROGRAM_NAMES:
            try:
                handle = ctl_chain.deploy(PROGRAMS[name].source)
                deployable.append((name, max(handle.stats.logic_rpbs)))
            except AllocationError:
                pass
        return single_spec, chain_spec, deployable

    single_spec, chain_spec, deployable = once(benchmark, run)
    banner("Ablation: 2-hop switch chain vs single-switch recirculation")
    widths = [26, 16, 16]
    print(fmt_row("metric", "single (R=1)", "chain (2 hops)", widths=widths))
    print(fmt_row("logic RPBs", single_spec.num_logic_rpbs, chain_spec.num_logic_rpbs, widths=widths))
    print(fmt_row("ingress RPBs / pass", single_spec.num_ingress_rpbs, chain_spec.num_ingress_rpbs, widths=widths))
    print(fmt_row("recirculation loss", "1-10% (Fig 11)", "none", widths=widths))
    spill = [name for name, max_rpb in deployable if max_rpb > chain_spec.rpbs_per_switch]
    print(f"deployable on the chain: {len(deployable)}/15; spanning both hops: {spill}")
    assert chain_spec.num_logic_rpbs > single_spec.num_logic_rpbs
    assert len(deployable) == 15
    assert set(spill) == {"hh", "nc"}  # the two recirculating programs


def test_ablation_address_translation(benchmark):
    """Static cost of the three address-translation mechanisms (§4.1.2):
    mask-based (ours) merges into existing actions; shift-based needs a
    VLIW op per hash width per RPB; TCAM-based needs a translation table
    per RPB."""

    def run():
        spec = TargetSpec()
        rpbs = spec.num_rpbs
        return {
            # mask merged with hash action + offset sharing the SALU-flag
            # action: no extra stages, 1 extra VLIW slot per RPB
            "mask (P4runpro)": {"vliw": rpbs * 1, "tcam_blocks": 0, "stages": 0},
            # shift per possible power-of-two size (16 widths) per RPB
            "shift (FlyMon)": {"vliw": rpbs * 16, "tcam_blocks": 0, "stages": 0},
            # TCAM translation table per RPB: 512 entries x 44b + action
            "tcam (FlyMon)": {"vliw": rpbs * 2, "tcam_blocks": rpbs * 1, "stages": 0},
        }

    costs = once(benchmark, run)
    banner("Ablation: address-translation mechanism cost (static estimate)")
    widths = [18, 10, 14, 8]
    print(fmt_row("mechanism", "VLIW", "TCAM blocks", "stages", widths=widths))
    for name, cost in costs.items():
        print(fmt_row(name, cost["vliw"], cost["tcam_blocks"], cost["stages"], widths=widths))
    mask = costs["mask (P4runpro)"]
    assert mask["vliw"] < costs["shift (FlyMon)"]["vliw"]
    assert mask["tcam_blocks"] < costs["tcam (FlyMon)"]["tcam_blocks"]
