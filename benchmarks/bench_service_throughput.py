"""Control-service throughput: N concurrent tenants churning deploy/revoke.

Measures the northbound service end to end — TCP framing, admission
queue, tenancy, audit, metrics — with a NullBinding controller so the
numbers isolate the *service* layer rather than the simulator.  Reports
ops/s and client-observed p50/p99 RPC latency, plus the server's own
latency histograms, so later PRs have a perf trajectory for this layer.

Scale: quick = 4 tenants x 12 deploy/revoke rounds; full = 8 x 50.
"""

import statistics
import threading
import time

from _common import banner, fmt_row, once, scaled

from repro.controlplane import Controller, NullBinding
from repro.programs import PROGRAMS
from repro.service import ControlService, ServerThread, ServiceClient, TenantQuota, TenantRegistry

SOURCES = [PROGRAMS[name].source for name in ("cache", "lb", "hh", "nc")]


def churn(port, tenant, source, rounds, latencies):
    with ServiceClient(port=port, tenant=tenant) as client:
        for _ in range(rounds):
            t0 = time.perf_counter()
            info = client.deploy(source)
            latencies["deploy"].append((time.perf_counter() - t0) * 1e3)
            t0 = time.perf_counter()
            client.revoke(info["program_id"])
            latencies["revoke"].append((time.perf_counter() - t0) * 1e3)
            t0 = time.perf_counter()
            client.list_programs()
            latencies["list"].append((time.perf_counter() - t0) * 1e3)


def run_churn(num_tenants, rounds):
    service = ControlService(
        Controller(NullBinding()),
        tenants=TenantRegistry(TenantQuota.unlimited()),
    )
    latencies = {"deploy": [], "revoke": [], "list": []}
    with ServerThread(service) as server:
        threads = [
            threading.Thread(
                target=churn,
                args=(server.port, f"tenant{i}", SOURCES[i % len(SOURCES)], rounds, latencies),
            )
            for i in range(num_tenants)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        server_metrics = service.metrics.snapshot()
    total_rpcs = sum(len(v) for v in latencies.values())
    return {
        "elapsed_s": elapsed,
        "ops_per_s": total_rpcs / elapsed,
        "latencies": latencies,
        "server": server_metrics,
        "audit_records": len(service.audit),
    }


def quantile(values, q):
    ordered = sorted(values)
    return ordered[min(int(q * len(ordered)), len(ordered) - 1)]


def test_service_throughput(benchmark):
    num_tenants = scaled(4, 8)
    rounds = scaled(12, 50)
    report = once(benchmark, lambda: run_churn(num_tenants, rounds))
    banner(
        f"Control-service throughput: {num_tenants} concurrent tenants x "
        f"{rounds} deploy/revoke/list rounds"
    )
    print(
        f"total {report['ops_per_s']:8.1f} RPC/s over {report['elapsed_s']:.2f} s "
        f"({report['audit_records']} audited writes)"
    )
    widths = [8, 8, 10, 10, 10, 10]
    print(fmt_row("rpc", "count", "mean ms", "p50 ms", "p99 ms", "max ms", widths=widths))
    for rpc, values in sorted(report["latencies"].items()):
        print(
            fmt_row(
                rpc,
                len(values),
                f"{statistics.mean(values):.3f}",
                f"{quantile(values, 0.50):.3f}",
                f"{quantile(values, 0.99):.3f}",
                f"{max(values):.3f}",
                widths=widths,
            )
        )
    print("\nserver-side latency histograms (ms):")
    for name, hist in sorted(report["server"]["histograms"].items()):
        print(
            fmt_row(
                name,
                hist["count"],
                f"mean {hist['mean']}",
                f"p50 {round(hist['p50'], 3)}",
                f"p99 {round(hist['p99'], 3)}",
                widths=[28, 8, 14, 14, 14],
            )
        )
    assert report["ops_per_s"] > 0
