"""Fig. 9: program capacity (how many programs run concurrently).

Sweeps the cache / lb / hh / nc / all-mixed workloads over the paper's
parameter grid: requested memory 1,024 / 2,048 / 4,096 B (256 / 512 /
1,024 buckets) and 2 / 16 / 256 elastic case blocks.  Quick scale caps the
per-configuration search; full scale deploys to failure like the paper
(capacities ~0.6K for nc up to ~2.8K for lb).
"""

from _common import banner, fmt_row, once, scaled

from repro.analysis.experiments import program_capacity

WORKLOADS = ("cache", "lb", "hh", "nc", "all-mixed")


def run(max_epochs):
    rows = []
    # Memory sweep at 2 elastic blocks.
    for buckets in (256, 512, 1024):
        for workload in WORKLOADS:
            rows.append(
                program_capacity(
                    workload,
                    memory_buckets=buckets,
                    elastic_blocks=2,
                    max_epochs=max_epochs,
                    seed=1,
                )
            )
    # Elastic sweep at 1,024 B.
    for elastic in (16, 256):
        for workload in WORKLOADS:
            rows.append(
                program_capacity(
                    workload,
                    memory_buckets=256,
                    elastic_blocks=elastic,
                    max_epochs=max_epochs,
                    seed=1,
                )
            )
    return rows


def test_fig9_capacity(benchmark):
    max_epochs = scaled(150, 4000)
    rows = once(benchmark, lambda: run(max_epochs))
    banner(f"Fig. 9: program capacity (per-config cap {max_epochs})")
    widths = [10, 12, 10, 10, 10, 10]
    print(
        fmt_row(
            "workload", "memory (B)", "elastic", "capacity", "mem %", "entries %", widths=widths
        )
    )
    table = {}
    for row in rows:
        table[(row.workload, row.memory_buckets, row.elastic_blocks)] = row
        print(
            fmt_row(
                row.workload,
                row.memory_buckets * 4,
                row.elastic_blocks,
                row.capacity if row.capacity < max_epochs else f">={max_epochs}",
                f"{row.memory_utilization:.0%}",
                f"{row.entry_utilization:.0%}",
                widths=widths,
            )
        )
    # Shape assertions from §6.2.3:
    # 1. The capacity ordering: simple lb >= complex nc.
    assert table[("lb", 256, 2)].capacity >= table[("nc", 256, 2)].capacity
    # 2. Doubling the memory does not halve the capacity.
    base = table[("hh", 256, 2)].capacity
    doubled = table[("hh", 512, 2)].capacity
    if base < max_epochs and doubled < max_epochs:
        assert doubled > base / 2
    # 3. Elastic blocks hit capacity harder than memory (entry scarcity).
    cache_elastic = table[("cache", 256, 256)].capacity
    cache_memory = table[("cache", 1024, 2)].capacity
    assert cache_elastic <= cache_memory
    print(
        "\npaper: ~2.8K (lb), ~0.6K (nc), 77-1351 (all-mixed); elastic "
        "blocks dominate because TCAM entries are scarcer than SRAM"
    )
