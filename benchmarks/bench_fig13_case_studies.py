"""Fig. 13: the four case studies on replayed traffic.

(a) RX rate under runtime deploy/delete churn — flat for P4runpro, with a
    visible blackout for the conventional workflow contrast curve;
(b) in-network cache: function starts immediately at deploy time, 60%
    hit traffic reflected;
(c) stateless load balancer: load-imbalance rate drops to ~0 at deploy;
(d) heavy-hitter detector: F1 score rises to 1.0 as heavy flows cross
    the threshold.
"""

import statistics

from _common import banner, fmt_row, once, scaled

from repro.analysis.metrics import precision_recall
from repro.baselines.conventional import ConventionalWorkflow
from repro.controlplane import Controller
from repro.programs import PROGRAMS, source_with_memory
from repro.rmt.packet import make_tcp, make_udp
from repro.rmt.pipeline import Verdict
from repro.traffic import (
    CacheTrace,
    CacheTraceConfig,
    CampusTrace,
    ReplayEngine,
    ReplayEvent,
    TraceConfig,
    load_imbalance,
    make_population,
)

DEPLOY_AT_S = 5.0


def test_fig13a_impact_on_traffic(benchmark):
    duration = scaled(10.0, 30.0)
    samples = scaled(15, 40)

    def run():
        ctl, dataplane = Controller.with_simulator()
        trace = CampusTrace(
            make_population(seed=3),
            TraceConfig(duration_s=duration, samples_per_window=samples),
        )
        deployed = []
        events = []
        names = [n for n in PROGRAMS if n != "nc"] * 4

        def act(name):
            def action():
                if deployed and len(deployed) % 3 == 2:
                    ctl.revoke(deployed.pop(0))
                else:
                    deployed.append(ctl.deploy(PROGRAMS[name].source))

            return action

        t = DEPLOY_AT_S
        for name in names:
            if t >= duration:
                break
            events.append(ReplayEvent(at_s=t, action=act(name)))
            t += 0.5
        stats = ReplayEngine(dataplane).run(trace.windows(), events)

        # Contrast: a conventional reprovision at the same time.
        ctl2, dataplane2 = Controller.with_simulator()
        workflow = ConventionalWorkflow()
        workflow.deploy("cache", p4_loc=77, at_s=DEPLOY_AT_S)
        trace2 = CampusTrace(
            make_population(seed=3),
            TraceConfig(duration_s=duration, samples_per_window=5),
        )
        contrast = ReplayEngine(
            dataplane2, blackout=lambda t: not workflow.traffic_available(t)
        ).run(trace2.windows())
        return stats, contrast

    stats, contrast = once(benchmark, run)
    banner("Fig. 13(a): RX rate during runtime program deploy/delete churn")
    print("time(s)  P4runpro RX/offered   conventional RX/offered")
    step = max(len(stats) // 20, 1)
    for ours, theirs in list(zip(stats, contrast))[::step]:
        print(
            f"{ours.start_s:6.2f}   {ours.rx_mbps:7.1f}/{ours.offered_mbps:7.1f}"
            f"      {theirs.rx_mbps:7.1f}/{theirs.offered_mbps:7.1f}"
        )
    # P4runpro never loses a byte; the conventional switch blacks out.
    for s in stats:
        assert s.rx_mbps == s.offered_mbps or abs(s.rx_mbps - s.offered_mbps) < 1e-6
    blacked = [s for s in contrast if s.rx_mbps == 0 and s.start_s >= DEPLOY_AT_S]
    assert blacked, "conventional reprovision must stop traffic"


def test_fig13b_in_network_cache(benchmark):
    duration = scaled(10.0, 30.0)

    def run():
        ctl, dataplane = Controller.with_simulator()
        trace = CacheTrace(
            CacheTraceConfig(duration_s=duration, samples_per_window=scaled(25, 40))
        )

        def deploy():
            handle = ctl.deploy(PROGRAMS["cache"].source)
            ctl.write_memory(handle, "mem1", 128, 0xCAFE)

        stats = ReplayEngine(dataplane).run(
            trace.windows(), [ReplayEvent(at_s=DEPLOY_AT_S, action=deploy)]
        )
        return stats

    stats = once(benchmark, run)
    banner("Fig. 13(b): in-network cache (hit rate 0.6, 100 Mbps reads)")
    before = [s for s in stats if s.start_s < DEPLOY_AT_S]
    after = [s for s in stats if s.start_s > DEPLOY_AT_S + 0.25]
    rx_before = statistics.mean(s.rx_mbps for s in before)
    rx_after = statistics.mean(s.rx_mbps for s in after)
    reflected_after = statistics.mean(s.reflected_mbps for s in after)
    print(f"RX before deploy: {rx_before:.1f} Mbps (all forwarded to server)")
    print(f"RX after deploy:  {rx_after:.1f} Mbps  reflected: {reflected_after:.1f} Mbps")
    print("paper: hit rate 0.6 -> 60 Mbps reflected to clients, 40 Mbps RX")
    assert rx_before == statistics.mean(s.offered_mbps for s in before)
    assert reflected_after / (rx_after + reflected_after) == statistics.mean(
        [0.6]
    ) or abs(reflected_after / (rx_after + reflected_after) - 0.6) < 0.08


def test_fig13c_load_balancer(benchmark):
    duration = scaled(10.0, 30.0)

    def run():
        ctl, dataplane = Controller.with_simulator()

        def deploy():
            handle = ctl.deploy(PROGRAMS["lb"].source)
            for addr in range(256):
                ctl.write_memory(handle, "port_pool", addr, addr % 2)
                ctl.write_memory(handle, "dip_pool", addr, 0x0A00B000 + addr % 2)

        population = make_population(num_flows=4096, heavy_flows=0, seed=5)
        trace = CampusTrace(
            population,
            TraceConfig(duration_s=duration, samples_per_window=scaled(40, 80)),
        )
        return ReplayEngine(dataplane).run(
            trace.windows(), [ReplayEvent(at_s=DEPLOY_AT_S, action=deploy)]
        )

    stats = once(benchmark, run)
    banner("Fig. 13(c): stateless load balancer imbalance rate")
    after = [s for s in stats if s.start_s > DEPLOY_AT_S + 0.25]
    imbalance = statistics.mean(load_imbalance(s, 0, 1) for s in after)
    print(f"mean |rx0-rx1|/total after deploy: {imbalance:.3f} (paper: ~0)")
    assert imbalance < 0.2


def test_fig13d_heavy_hitter(benchmark):
    threshold = scaled(64, 1024)
    packets = scaled(20_000, 400_000)

    def run():
        ctl, dataplane = Controller.with_simulator()
        source = (
            source_with_memory("hh", scaled(1024, 1024))
            .replace("LOADI(har, 1024)", f"LOADI(har, {threshold})")
            .replace(
                "case(<har, 1024, 0xffffffff>)",
                f"case(<har, {threshold}, 0xffffffff>)",
            )
        )
        ctl.deploy(source)
        population = make_population(
            num_flows=4096, heavy_flows=100, heavy_share=0.75, seed=6
        )
        detected = set()
        sent: dict[tuple, int] = {}
        f1_series = []
        check_every = packets // 20
        for index, flow in enumerate(population.sample(packets)):
            sent[flow.five_tuple] = sent.get(flow.five_tuple, 0) + 1
            maker = make_udp if flow.proto == 17 else make_tcp
            pkt = maker(flow.src_ip, flow.dst_ip, flow.src_port, flow.dst_port)
            result = dataplane.process(pkt)
            if result.verdict is Verdict.TO_CPU:
                detected.add(pkt.five_tuple())
            if (index + 1) % check_every == 0:
                crossed = {t for t, n in sent.items() if n >= threshold}
                _p, _r, f1 = precision_recall(detected, crossed)
                f1_series.append((index + 1, f1, len(crossed)))
        return f1_series

    f1_series = once(benchmark, run)
    banner(f"Fig. 13(d): heavy-hitter F1 score over time (threshold {threshold})")
    print(fmt_row("packets", "F1", "ground truth", widths=[10, 8, 12]))
    for count, f1, truth in f1_series:
        print(fmt_row(count, f"{f1:.3f}", truth, widths=[10, 8, 12]))
    # F1 rapidly reaches ~1 once heavy flows cross the threshold.
    final_f1 = f1_series[-1][1]
    assert final_f1 > 0.95
    assert f1_series[-1][2] >= 50  # a meaningful heavy set crossed
