"""Fig. 7: allocation delay.

(a) Allocation delay during continuous program deployment (window-31
    moving average over sequential arrivals) for the cache / lb / hh /
    mixed workloads, P4runpro vs the ActiveRMT allocator.  P4runpro's
    delay stays flat per-program while ActiveRMT's grows with the number
    of allocated programs.
(b) Allocation delay vs requested memory granularity (128 B - 1,024 B):
    flat for P4runpro, increasing as granularity shrinks for ActiveRMT.
"""

import random
import statistics

from _common import banner, fmt_row, once, scaled

from repro.analysis.experiments import continuous_deployment
from repro.analysis.metrics import moving_average
from repro.baselines.activermt import ActiveRMTAllocator, WORKLOADS

WORKLOAD_NAMES = ("cache", "lb", "hh", "mixed")


def run_p4runpro(epochs: int) -> dict[str, list[float]]:
    series = {}
    for workload in WORKLOAD_NAMES:
        results = continuous_deployment(workload, epochs, seed=1)
        series[workload] = [r.allocation_ms for r in results]
    return series


def run_activermt(epochs: int) -> dict[str, list[float]]:
    series = {}
    rng = random.Random(1)
    for workload in WORKLOAD_NAMES:
        allocator = ActiveRMTAllocator()
        delays = []
        for _ in range(epochs):
            name = workload if workload != "mixed" else rng.choice(("cache", "lb", "hh"))
            outcome = allocator.allocate(WORKLOADS[name])
            delays.append(outcome.delay_s * 1e3 if outcome.success else 0.0)
        series[workload] = delays
    return series


def summarize(label: str, series: dict[str, list[float]]) -> dict[str, tuple]:
    summary = {}
    print(f"\n{label} — allocation delay, moving average (window 31), ms")
    widths = [8, 12, 12, 12, 12]
    print(fmt_row("workload", "early", "mid", "late", "max", widths=widths))
    for workload, delays in series.items():
        smooth = moving_average(delays, 31)
        n = len(smooth)
        early = statistics.mean(smooth[: max(n // 10, 1)])
        mid = statistics.mean(smooth[n // 2 : n // 2 + max(n // 10, 1)])
        late = statistics.mean(smooth[-max(n // 10, 1) :])
        summary[workload] = (early, mid, late, max(smooth))
        print(
            fmt_row(
                workload,
                f"{early:.2f}",
                f"{mid:.2f}",
                f"{late:.2f}",
                f"{max(smooth):.2f}",
                widths=widths,
            )
        )
    return summary


def test_fig7a_continuous_deployment(benchmark):
    epochs = scaled(150, 500)
    ours, theirs = once(
        benchmark, lambda: (run_p4runpro(epochs), run_activermt(epochs))
    )
    banner(f"Fig. 7(a): allocation delay over {epochs} sequential deployments")
    ours_summary = summarize("P4runpro", ours)
    theirs_summary = summarize("ActiveRMT", theirs)
    # Shape: ActiveRMT's delay grows with allocated programs...
    for workload in ("hh", "mixed"):
        early, _mid, late, _max = theirs_summary[workload]
        assert late > early * 1.5, f"ActiveRMT {workload} should slow down"
    # ...while P4runpro stays within a small factor of its early delay.
    for workload in WORKLOAD_NAMES:
        early, _mid, late, _max = ours_summary[workload]
        assert late < max(early, 1.0) * 25  # stable per-epoch, no blowup
    print(
        "\npaper: P4runpro stable per-epoch; ActiveRMT exceeds 1 s after "
        "hundreds of arrivals (full scale reproduces the >1 s crossing)"
    )


def test_fig7c_solver_feasibility_cache(benchmark):
    """Static-feasibility caching: repeated same-shape solves against an
    unchanged resource view skip the per-(depth, value) resource scan.
    Reports the cached-vs-uncached wall-time ratio for a steady-state
    deployment mix (compile-only, no installs, so the view never changes
    and the cache can do its best — the continuous-deployment runs above
    exercise the invalidation path)."""
    import time

    from repro.compiler import solver as solver_mod
    from repro.compiler.compiler import compile_source
    from repro.controlplane.manager import ResourceManager
    from repro.programs import library

    rounds = scaled(20, 60)
    sources = [library.get(name).source for name in ("cache", "lb", "hh")]

    def run_compiles(enable_cache: bool) -> float:
        previous = solver_mod.CACHING_ENABLED
        solver_mod.CACHING_ENABLED = enable_cache
        try:
            manager = ResourceManager()
            started = time.perf_counter()
            for _ in range(rounds):
                for source in sources:
                    compile_source(source, view=manager)
            return time.perf_counter() - started
        finally:
            solver_mod.CACHING_ENABLED = previous

    def run():
        uncached = run_compiles(False)
        cached = run_compiles(True)
        return uncached, cached

    uncached_s, cached_s = once(benchmark, run)
    banner("Fig. 7(c): allocation-solver static-feasibility cache")
    n = rounds * len(sources)
    speedup = uncached_s / cached_s if cached_s > 0 else float("inf")
    print(f"{n} compiles, cache off: {uncached_s * 1e3:.1f} ms")
    print(f"{n} compiles, cache on:  {cached_s * 1e3:.1f} ms")
    print(f"speedup: {speedup:.2f}x")
    # The cache must never slow the solve down materially; the win is in
    # the allocation phase only, so end-to-end compile speedup is modest.
    assert cached_s < uncached_s * 1.10


def test_fig7b_memory_granularity(benchmark):
    epochs = scaled(60, 200)
    granularities_buckets = (32, 64, 128, 256)  # 128 B ... 1,024 B

    def run():
        ours = {}
        for buckets in granularities_buckets:
            results = continuous_deployment(
                "mixed", epochs, memory_buckets=buckets, seed=2
            )
            ours[buckets] = statistics.mean(
                r.allocation_ms for r in results if r.success
            )
        theirs = {}
        rng = random.Random(2)
        for buckets in granularities_buckets:
            allocator = ActiveRMTAllocator(granularity=buckets)
            delays = []
            for _ in range(epochs):
                name = rng.choice(("cache", "lb", "hh"))
                delays.append(allocator.allocate(WORKLOADS[name]).delay_s * 1e3)
            theirs[buckets] = statistics.mean(delays)
        return ours, theirs

    ours, theirs = once(benchmark, run)
    banner("Fig. 7(b): allocation delay vs memory granularity (mixed workload)")
    widths = [14, 16, 16]
    print(fmt_row("granularity", "P4runpro (ms)", "ActiveRMT (ms)", widths=widths))
    for buckets in granularities_buckets:
        print(
            fmt_row(
                f"{buckets * 4} B",
                f"{ours[buckets]:.2f}",
                f"{theirs[buckets]:.2f}",
                widths=widths,
            )
        )
    # Shape: requested size does not affect P4runpro's allocation time...
    values = list(ours.values())
    assert max(values) < max(min(values), 0.5) * 6
    # ...while ActiveRMT pays more for finer granularity.
    assert theirs[32] > theirs[256]
