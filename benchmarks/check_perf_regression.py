"""CI perf gate: compare BENCH_simulator.json against the committed baseline.

Usage::

    python benchmarks/check_perf_regression.py [results.json] [baseline.json]

Fails (exit 1) if the idle packet rate regresses by more than the allowed
fraction versus ``benchmarks/perf_baseline.json``.  Only the idle scenario
gates: it has the least variance across runners (no program state, no
register traffic), so it catches hot-path regressions without flaking on
scheduler noise.  The other scenarios are reported for context.

``PERF_REGRESSION_TOLERANCE`` overrides the allowed fractional drop
(default 0.30, i.e. fail below 70% of baseline) — CI runners are shared
and noisy, so the gate is deliberately loose; it exists to catch
order-of-magnitude regressions (an accidental fall back to the reference
path), not single-digit drift.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_RESULTS = REPO_ROOT / "BENCH_simulator.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "perf_baseline.json"

GATED_SCENARIO = "idle (no programs)"


def main(argv: list[str]) -> int:
    results_path = Path(argv[1]) if len(argv) > 1 else DEFAULT_RESULTS
    baseline_path = Path(argv[2]) if len(argv) > 2 else DEFAULT_BASELINE
    tolerance = float(os.environ.get("PERF_REGRESSION_TOLERANCE", "0.30"))

    try:
        results = json.loads(results_path.read_text())
    except (OSError, ValueError) as exc:
        print(f"FAIL: cannot read results {results_path}: {exc}")
        return 1
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, ValueError) as exc:
        print(f"FAIL: cannot read baseline {baseline_path}: {exc}")
        return 1

    measured = results.get("throughput", {}).get("pps", {})
    expected = baseline.get("pps", {})
    if GATED_SCENARIO not in measured:
        print(f"FAIL: results have no {GATED_SCENARIO!r} measurement")
        return 1
    if GATED_SCENARIO not in expected:
        print(f"FAIL: baseline has no {GATED_SCENARIO!r} entry")
        return 1

    print(f"{'scenario':32} {'measured':>12} {'baseline':>12} {'ratio':>7}")
    failed = False
    for scenario, base in expected.items():
        got = measured.get(scenario)
        if got is None:
            print(f"{scenario:32} {'missing':>12} {base:>12,.0f}")
            continue
        ratio = got / base if base else float("inf")
        gate = " <-- gate" if scenario == GATED_SCENARIO else ""
        print(f"{scenario:32} {got:>12,.0f} {base:>12,.0f} {ratio:>6.2f}x{gate}")
        if scenario == GATED_SCENARIO and ratio < 1.0 - tolerance:
            failed = True

    if failed:
        print(
            f"\nFAIL: {GATED_SCENARIO!r} regressed below "
            f"{(1.0 - tolerance) * 100:.0f}% of the committed baseline"
        )
        return 1
    print(f"\nOK: {GATED_SCENARIO!r} within {tolerance * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
