"""CI perf gate: compare BENCH_simulator.json against the committed baseline.

Usage::

    python benchmarks/check_perf_regression.py [results.json] [baseline.json]

Fails (exit 1) if any gated number regresses by more than the allowed
fraction versus ``benchmarks/perf_baseline.json``.  Gated numbers:

* the four single-process throughput scenarios (``throughput.pps``),
  all measured with the flow cache disabled (they gate the uncached
  pipeline walk);
* the codegen tier's packet rate on the same cache-disabled scenarios
  (``codegen.pps``) — they gate the trace-to-source generated code that
  serves cache misses;
* the flow cache's cached packet rate on the Zipf skewed-flow scenario
  (``flow_cache.skewed.cached_pps``) and on the uniform worst-case
  scenario (``flow_cache.uniform.cached_pps``, 2,000 flows with no
  locality — gates the cache's bookkeeping overhead on the miss path);
* the sharded engine's projected aggregate capacity per worker count
  (``engine.by_workers.<N>.pps``) — the projection is CPU-time based and
  therefore stable across runners with different core counts;
* the engine's projected speedup at the highest worker count;
* the rebalanced pinned-owner scenario: a capacity floor
  (``engine.pinned_owner_rebalanced.pps``) plus two zero-tolerance
  ceilings — the post-rebalance hottest-shard share must stay <= the
  baseline 0.70 and growing a 4-worker ring to 5 must remap <= 35% of
  flows (both deterministic properties, gated exactly);
* the shared-memory southbound transport
  (``engine.transport.<N>.shm.pps``): projected-capacity floors on any
  host, plus — only on runners with >= 5 cores, where wall clock means
  something — a hard 1.8x floor on the 4-worker shm wall rate versus the
  single process (``engine.shm_wall_speedup_vs_single``);
* the fabric's projected aggregate capacity per leaf count
  (``fabric.by_leaves.<N>.pps``) and its capacity speedup at the highest
  leaf count — both CPU-time based like the engine projection;
* the control-plane deploy rate, cold and warm (``deploy.cold`` /
  ``deploy.warm`` in deploys/s) — warm goes through the relocatable
  allocation cache, cold through the full solve, so the pair catches a
  broken cache and a regressed solver independently;
* the deploy-storm service numbers (``deploy_storm``): the NDJSON
  thread-storm floor (``ndjson.deploys_per_s``), the binary
  ``deploy_many`` fast-path floor (``binary.deploys_per_s``), and an
  inverted gate on the binary amortized per-deploy latency
  (``binary.p50_ms`` is a *ceiling* — the gate trips when the measured
  p50 grows above baseline by more than the tolerance).

``PERF_REGRESSION_TOLERANCE`` overrides the allowed fractional drop
(default 0.30, i.e. fail below 70% of baseline) — CI runners are shared
and noisy, so the gate is deliberately loose; it exists to catch
order-of-magnitude regressions (an accidental fall back to the reference
path, a serialization stall in the engine), not single-digit drift.
Engine entries are skipped with a warning when the results file has no
``engine`` section (the scaling bench did not run), so the gate still
works on throughput-only runs.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_RESULTS = REPO_ROOT / "BENCH_simulator.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "perf_baseline.json"


def check(label: str, got: float | None, base: float, tolerance: float) -> bool:
    """Print one gate row; returns True when the gate trips."""
    if got is None:
        print(f"{label:44} {'missing':>12} {base:>12,.2f}  <-- gate FAILED")
        return True
    ratio = got / base if base else float("inf")
    verdict = ""
    failed = ratio < 1.0 - tolerance
    if failed:
        verdict = "  <-- gate FAILED"
    print(f"{label:44} {got:>12,.1f} {base:>12,.1f} {ratio:>6.2f}x{verdict}")
    return failed


def check_ceiling(label: str, got: float | None, base: float, tolerance: float) -> bool:
    """Inverted gate for latency numbers: fail when ``got`` grows above
    ``base`` by more than the tolerance (lower is better)."""
    if got is None:
        print(f"{label:44} {'missing':>12} {base:>12,.2f}  <-- gate FAILED")
        return True
    ratio = got / base if base else float("inf")
    failed = ratio > 1.0 + tolerance
    verdict = "  <-- gate FAILED" if failed else ""
    print(f"{label:44} {got:>12,.3f} {base:>12,.3f} {ratio:>6.2f}x{verdict}")
    return failed


def main(argv: list[str]) -> int:
    results_path = Path(argv[1]) if len(argv) > 1 else DEFAULT_RESULTS
    baseline_path = Path(argv[2]) if len(argv) > 2 else DEFAULT_BASELINE
    tolerance = float(os.environ.get("PERF_REGRESSION_TOLERANCE", "0.30"))

    try:
        results = json.loads(results_path.read_text())
    except (OSError, ValueError) as exc:
        print(f"FAIL: cannot read results {results_path}: {exc}")
        return 1
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, ValueError) as exc:
        print(f"FAIL: cannot read baseline {baseline_path}: {exc}")
        return 1

    print(f"{'gated number':44} {'measured':>12} {'baseline':>12} {'ratio':>7}")
    failed = False

    measured = results.get("throughput", {}).get("pps", {})
    expected = baseline.get("pps", {})
    if not expected:
        print("FAIL: baseline has no throughput floors")
        return 1
    for scenario, base in expected.items():
        failed |= check(scenario, measured.get(scenario), base, tolerance)

    codegen_baseline = baseline.get("codegen", {})
    codegen_results = results.get("codegen", {})
    if codegen_baseline:
        if not codegen_results:
            print(
                "WARN: results have no codegen section "
                "(codegen bench not run); codegen gates skipped"
            )
        else:
            measured = codegen_results.get("pps", {})
            for scenario, base in codegen_baseline.get("pps", {}).items():
                failed |= check(
                    f"codegen: {scenario}", measured.get(scenario), base, tolerance
                )

    engine_baseline = baseline.get("engine", {})
    engine_results = results.get("engine", {})
    if engine_baseline:
        if not engine_results:
            print(
                "WARN: results have no engine section "
                "(scaling bench not run); engine gates skipped"
            )
        else:
            by_workers = engine_results.get("by_workers", {})
            for workers, base in engine_baseline.get("pps", {}).items():
                got = by_workers.get(workers, {}).get("pps")
                failed |= check(
                    f"engine capacity ({workers} workers)", got, base, tolerance
                )
            speedup_floor = engine_baseline.get("speedup_at_max_workers")
            if speedup_floor:
                counts = sorted(by_workers, key=int)
                top = counts[-1] if counts else None
                got = engine_results.get("speedup", {}).get(top)
                failed |= check(
                    f"engine speedup ({top} workers)",
                    got,
                    speedup_floor,
                    tolerance,
                )
            rebalanced = engine_results.get("pinned_owner_rebalanced", {})
            base = engine_baseline.get("rebalanced_pps")
            if base:
                failed |= check(
                    "engine rebalanced capacity",
                    rebalanced.get("pps"),
                    base,
                    tolerance,
                )
            # Hard bounds, zero tolerance: the post-rebalance shard
            # balance and the consistent-hash remap fraction are
            # deterministic properties, not noisy throughput numbers.
            share_ceiling = engine_baseline.get("rebalanced_max_share")
            if share_ceiling:
                failed |= check_ceiling(
                    "engine rebalanced max share (ceiling)",
                    rebalanced.get("max_share_after"),
                    share_ceiling,
                    0.0,
                )
            remap_ceiling = engine_baseline.get("ring_remap_4_to_5")
            if remap_ceiling:
                failed |= check_ceiling(
                    "engine ring remap 4->5 (ceiling)",
                    engine_results.get("ring_remap_4_to_5"),
                    remap_ceiling,
                    0.0,
                )
            transport_base = engine_baseline.get("transport", {})
            transport_results = engine_results.get("transport", {})
            if transport_base and not transport_results:
                print(
                    "WARN: results have no engine.transport section "
                    "(transport bench not run); shm transport gates skipped"
                )
            elif transport_base:
                # Projected-capacity floors hold on any host (CPU-time
                # based, like the engine.pps floors above).
                for workers, base in transport_base.get("shm_pps", {}).items():
                    got = transport_results.get(workers, {}).get("shm", {}).get(
                        "pps"
                    )
                    failed |= check(
                        f"engine shm capacity ({workers} workers)",
                        got,
                        base,
                        tolerance,
                    )
                # The wall-clock speedup floor is only meaningful when the
                # runner granted a core per replica (coordinator + 4
                # workers); smaller hosts time-slice the processes and the
                # wall number measures the scheduler, not the transport.
                wall_floor = transport_base.get("shm_wall_speedup_vs_single")
                if wall_floor and engine_results.get("cores", 0) >= 5:
                    failed |= check(
                        "engine shm wall speedup vs single",
                        engine_results.get("shm_wall_speedup_vs_single"),
                        wall_floor,
                        0.0,
                    )
                elif wall_floor:
                    print(
                        f"WARN: host has {engine_results.get('cores')} cores "
                        "(< 5); shm wall-speedup floor skipped, capacity "
                        "floors gated instead"
                    )

    fabric_baseline = baseline.get("fabric", {})
    fabric_results = results.get("fabric", {})
    if fabric_baseline:
        if not fabric_results:
            print(
                "WARN: results have no fabric section "
                "(fabric scaling bench not run); fabric gates skipped"
            )
        else:
            by_leaves = fabric_results.get("by_leaves", {})
            for leaves, base in fabric_baseline.get("pps", {}).items():
                got = by_leaves.get(leaves, {}).get("pps")
                failed |= check(
                    f"fabric capacity ({leaves} leaves)", got, base, tolerance
                )
            speedup_floor = fabric_baseline.get("speedup_at_max_leaves")
            if speedup_floor:
                counts = sorted(by_leaves, key=int)
                top = counts[-1] if counts else None
                got = fabric_results.get("speedup", {}).get(top)
                failed |= check(
                    f"fabric speedup ({top} leaves)",
                    got,
                    speedup_floor,
                    tolerance,
                )

    cache_baseline = baseline.get("flow_cache", {})
    cache_results = results.get("flow_cache", {})
    if cache_baseline:
        if not cache_results:
            print(
                "WARN: results have no flow_cache section "
                "(flow-cache bench not run); flow-cache gates skipped"
            )
        else:
            base = cache_baseline.get("skewed")
            if base:
                got = cache_results.get("skewed", {}).get("cached_pps")
                failed |= check("flow_cache.skewed (cached pps)", got, base, tolerance)
            base = cache_baseline.get("uniform")
            if base:
                got = cache_results.get("uniform", {}).get("cached_pps")
                failed |= check("flow_cache.uniform (cached pps)", got, base, tolerance)

    deploy_baseline = baseline.get("deploy", {})
    deploy_results = results.get("deploy", {})
    if deploy_baseline:
        if not deploy_results:
            print(
                "WARN: results have no deploy section "
                "(deploy-rate bench not run); deploy gates skipped"
            )
        else:
            for scenario, base in deploy_baseline.items():
                got = deploy_results.get(scenario, {}).get("deploys_per_s")
                failed |= check(f"deploy.{scenario} (deploys/s)", got, base, tolerance)

    storm_baseline = baseline.get("deploy_storm", {})
    storm_results = results.get("deploy_storm", {})
    if storm_baseline:
        if not storm_results:
            print(
                "WARN: results have no deploy_storm section "
                "(deploy-storm bench not run); deploy-storm gates skipped"
            )
        else:
            for codec in ("ndjson", "binary"):
                base = storm_baseline.get(codec, {}).get("deploys_per_s")
                if base:
                    got = storm_results.get(codec, {}).get("deploys_per_s")
                    failed |= check(
                        f"deploy_storm.{codec} (deploys/s)", got, base, tolerance
                    )
            p50_ceiling = storm_baseline.get("binary", {}).get("p50_ms")
            if p50_ceiling:
                got = storm_results.get("binary", {}).get("p50_ms")
                failed |= check_ceiling(
                    "deploy_storm.binary (p50 ms, ceiling)",
                    got,
                    p50_ceiling,
                    tolerance,
                )

    if failed:
        print(
            f"\nFAIL: at least one gated number regressed below "
            f"{(1.0 - tolerance) * 100:.0f}% of the committed baseline"
        )
        return 1
    print(f"\nOK: all gated numbers within {tolerance * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
