"""Fig. 11: impact of recirculation on throughput and latency.

Sweeps packet sizes 128-1500 B and recirculation iteration counts 0-6:
maximum lossless throughput (recirculation-port model) and normalized RTT
(added per-pass latency over a ~21 ms generator-stack baseline), plus a
functional check that recirculating programs really make extra passes on
the simulator.
"""

from _common import banner, fmt_row, once

from repro.controlplane import Controller
from repro.programs import PROGRAMS
from repro.rmt.packet import make_udp
from repro.rmt.parser import default_parse_machine
from repro.rmt.pipeline import Switch, SwitchConfig

PACKET_SIZES = (128, 256, 512, 1024, 1500)
ITERATIONS = tuple(range(7))
BASE_RTT_MS = 21.0  # zero-queue RTT through the generator stack (§6.3)


def sweep():
    switch = Switch(default_parse_machine(), SwitchConfig())
    throughput = {
        size: [switch.max_lossless_throughput_gbps(size, k) for k in ITERATIONS]
        for size in PACKET_SIZES
    }
    rtt = {
        size: [
            (BASE_RTT_MS + switch.added_latency_ms(k, size)) / BASE_RTT_MS
            for k in ITERATIONS
        ]
        for size in PACKET_SIZES
    }
    return throughput, rtt


def test_fig11_throughput_and_latency(benchmark):
    throughput, rtt = once(benchmark, sweep)
    banner("Fig. 11: recirculation impact")
    widths = [10] + [9] * len(ITERATIONS)
    print("max lossless throughput (Gbps) by recirculation iterations:")
    print(fmt_row("size", *[f"R={k}" for k in ITERATIONS], widths=widths))
    for size in PACKET_SIZES:
        print(
            fmt_row(
                f"{size} B",
                *[f"{v:.1f}" for v in throughput[size]],
                widths=widths,
            )
        )
    print("\nnormalized zero-queue RTT:")
    print(fmt_row("size", *[f"R={k}" for k in ITERATIONS], widths=widths))
    for size in PACKET_SIZES:
        print(fmt_row(f"{size} B", *[f"{v:.3f}" for v in rtt[size]], widths=widths))

    # Shape assertions (§6.3):
    # R=1 loss between ~1% (1500 B) and ~10% (128 B).
    loss_small = 1 - throughput[128][1] / 100.0
    loss_large = 1 - throughput[1500][1] / 100.0
    assert 0.05 < loss_small < 0.15
    assert 0.005 < loss_large < 0.02
    # Added latency at R=6 stays in the 0.5-1.5 ms band (2.2-7.2% growth).
    for size in PACKET_SIZES:
        growth = rtt[size][6] - 1.0
        assert 0.02 < growth < 0.075
    # Throughput monotonically decreases with iterations.
    for size in PACKET_SIZES:
        series = throughput[size]
        assert all(a >= b for a, b in zip(series, series[1:]))


def test_fig11_functional_recirculation(benchmark):
    """hh and nc really recirculate once on the simulator; the other 13
    programs complete in a single pass (paper: 13 of 15)."""

    def run():
        passes = {}
        for name in ("hh", "nc", "cache", "lb", "cms"):
            ctl, dataplane = Controller.with_simulator()
            ctl.deploy(PROGRAMS[name].source)
            if name in ("hh", "cms"):
                pkt = make_udp(0x0A000001, 0x0B000001, 4000, 80)
            elif name == "lb":
                pkt = make_udp(0x0B000001, 0x0A000001, 4000, 80)
            else:
                from repro.rmt.packet import make_cache

                pkt = make_cache(1, 2, op=1, key=0x9999)
            passes[name] = dataplane.process(pkt).recirculations
        return passes

    passes = once(benchmark, run)
    print("\nrecirculation passes per program:", passes)
    assert passes["hh"] == 1
    assert passes["nc"] == 1
    assert passes["cache"] == 0
    assert passes["lb"] == 0
    assert passes["cms"] == 0
