"""Fig. 12 / Appendix C: alternative allocation objective functions.

Deploys the all-mixed workload until failure under the four schemes —
f1 = 0.7x_L - 0.3x_1 (default), f2 = x_L, f3 = x_L/x_1, and hierarchical
(min x_L then max x_1) — and reports program capacity, resource
utilization, and allocation delay for each.  Paper shapes: f3 wins
capacity/utilization but pays an order of magnitude in delay (nonlinear),
f2 and hierarchical pack ingress RPBs and stop earliest, f1 balances.
"""

from _common import banner, fmt_row, once, scaled

from repro.analysis.experiments import compare_objectives
from repro.compiler.objectives import f1, f2, f3, hierarchical


def test_fig12_objectives(benchmark):
    # Quick scale drives the data plane to genuine saturation fast by
    # requesting entry-hungry programs (64 elastic case blocks); full scale
    # uses the paper's 2 elastic blocks and runs to failure.
    max_epochs = scaled(1200, 4000)
    elastic = scaled(64, 2)
    objectives = {
        "f1=0.7xL-0.3x1": f1(),
        "f2=xL": f2(),
        "f3=xL/x1": f3(),
        "hierarchical": hierarchical(),
    }
    rows = once(
        benchmark,
        lambda: compare_objectives(
            objectives,
            workload="all-mixed",
            seed=1,
            max_epochs=max_epochs,
            elastic_blocks=elastic,
        ),
    )
    banner(f"Fig. 12: objective functions, all-mixed workload (cap {max_epochs})")
    widths = [16, 10, 10, 12, 14, 14]
    print(
        fmt_row(
            "objective",
            "capacity",
            "memory %",
            "entries %",
            "mean alloc ms",
            "p99 alloc ms",
            widths=widths,
        )
    )
    by_name = {}
    for row in rows:
        by_name[row.objective] = row
        print(
            fmt_row(
                row.objective,
                row.capacity,
                f"{row.memory_utilization:.0%}",
                f"{row.entry_utilization:.0%}",
                f"{row.mean_allocation_ms:.2f}",
                f"{row.p99_allocation_ms:.2f}",
                widths=widths,
            )
        )
    # Shape assertions from §6.2.4 / Appendix C: f3 achieves the largest
    # program capacity and resource utilization; f2 and hierarchical are
    # the weakest; f1 tracks the front-runners.
    assert by_name["f3=xL/x1"].capacity >= by_name["f2=xL"].capacity
    assert by_name["f3=xL/x1"].capacity >= by_name["hierarchical"].capacity
    assert by_name["f1=0.7xL-0.3x1"].capacity >= by_name["f2=xL"].capacity
    assert (
        by_name["f3=xL/x1"].entry_utilization
        >= by_name["f2=xL"].entry_utilization
    )
    print(
        "\npaper: f3 best capacity/utilization but 1-10 s delays (Z3 on a "
        "nonlinear objective); f2/hierarchical worst capacity (ingress-only"
        " packing); f1 balances.\n"
        "NOTE (documented in EXPERIMENTS.md): our endpoint-bounded branch-"
        "and-bound solves the ratio objective efficiently, so f3's delay "
        "penalty from the paper does not reproduce — the capacity and "
        "utilization ordering does."
    )
