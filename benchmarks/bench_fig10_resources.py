"""Fig. 10: hardware resource usage of the three systems.

Seven headline resources (PHV, hash units, SRAM, TCAM, VLIW, SALU, LTID)
as percent of the chip budget; P4runpro computed from the built data
plane, baselines from their published configurations.
"""

from _common import banner, fmt_row, once

from repro.baselines.profiles import all_profiles

RESOURCES = (
    ("phv_bits", "PHV"),
    ("hash_units", "Hash"),
    ("sram_blocks", "SRAM"),
    ("tcam_blocks", "TCAM"),
    ("vliw_slots", "VLIW"),
    ("salus", "SALU"),
    ("ltids", "LTID"),
)


def test_fig10_resources(benchmark):
    profiles = once(benchmark, all_profiles)
    by_name = {p.name: p for p in profiles}
    banner("Fig. 10: resource utilization (% of chip budget)")
    widths = [10] + [10] * len(RESOURCES)
    print(fmt_row("system", *[label for _k, label in RESOURCES], widths=widths))
    for profile in profiles:
        print(
            fmt_row(
                profile.name,
                *[f"{profile.utilization[key]:.1f}" for key, _label in RESOURCES],
                widths=widths,
            )
        )
    p4 = by_name["P4runpro"].utilization
    active = by_name["ActiveRMT"].utilization
    flymon = by_name["FlyMon"].utilization
    # Shape assertions straight from §6.3:
    assert p4["vliw_slots"] > 80.0  # "uses almost all the VLIW"
    assert p4["salus"] > active["salus"]  # two extra RPB stages
    assert p4["hash_units"] > active["hash_units"]
    assert p4["sram_blocks"] < 40.0  # "does not heavily rely on SRAM"
    assert p4["tcam_blocks"] > p4["sram_blocks"]  # TCAM limits table scaling
    assert flymon["vliw_slots"] < p4["vliw_slots"]  # measurement-only scope
    print(
        "\npaper: P4runpro saturates VLIW, stays light on SRAM, and TCAM "
        "limits per-RPB table scaling; FlyMon needs no generality overhead"
    )
