"""Ablation: memory fragmentation and direct mapping (paper §7).

"A continuous memory allocation algorithm with powers of two generates
both external and internal memory fragmentations, reducing memory
utilization.  Enab[ling] the direct mapping mechanism proposed by
SwitchVM ... can help utilize these fragmentations."

This bench measures exactly that: a deploy/revoke churn phase fragments
the free lists, then programs are packed until failure — once with the
paper's contiguous allocator, once with the direct-mapping extension.
Direct mapping reaches higher memory utilization at the cost of extra
per-fragment OFFSET entries.
"""

import random

from _common import banner, fmt_row, once, scaled

from repro.compiler import CompileOptions
from repro.controlplane import Controller
from repro.controlplane.freelist import OutOfMemoryError
from repro.lang.errors import AllocationError, P4runproError
from repro.programs import source_with_memory

CHURN_SIZES = (256, 512, 1024, 2048, 4096)


def churn(controller: Controller, rounds: int, seed: int) -> None:
    """Fragment the free lists: deploy random-sized programs, then revoke
    a random half, leaving holes of mixed sizes."""
    rng = random.Random(seed)
    live = []
    for _ in range(rounds):
        buckets = rng.choice(CHURN_SIZES)
        try:
            live.append(controller.deploy(source_with_memory("cms", buckets)))
        except (AllocationError, OutOfMemoryError, P4runproError):
            break
        if len(live) > 3 and rng.random() < 0.35:
            live.pop(rng.randrange(len(live)))  # keep: permanent tenant
        elif live and rng.random() < 0.55:
            controller.revoke(live.pop(rng.randrange(len(live))))


PACK_BUCKETS = 4096  # 16 KB requests: too big for post-churn holes


def pack_until_failure(controller: Controller, options: CompileOptions | None, cap: int):
    packed = 0
    while packed < cap:
        try:
            controller.deploy(
                source_with_memory("cms", PACK_BUCKETS), options=options
            )
            packed += 1
        except (AllocationError, OutOfMemoryError, P4runproError):
            break
    return packed, controller.manager.memory_utilization()


def fragmentation_stats(controller: Controller) -> tuple[int, float]:
    """(largest free run, external fragmentation = 1 - largest/free)."""
    largest = max(
        fl.largest_free_run() for fl in controller.manager._freelists.values()
    )
    free = sum(fl.free_total() for fl in controller.manager._freelists.values())
    return largest, 1 - largest * 22 / free if free else 0.0


def pin_tenants(controller: Controller, hole_buckets: int) -> None:
    """Adversarial residency: small permanent tenants pinned at regular
    intervals on every RPB, leaving free holes of ``hole_buckets`` between
    them — the long-lived-tenant pattern that defeats coalescing."""
    for phys in range(1, controller.spec.num_rpbs + 1):
        freelist = controller.manager._freelists[phys]
        holes = []
        while True:
            try:
                holes.append(freelist.allocate(hole_buckets))
                freelist.allocate(64)  # the pinned tenant
            except OutOfMemoryError:
                break
        for base in holes:
            freelist.free(base)


def run_scenario(prepare, cap: int):
    results = {}
    for label, options in (
        ("contiguous (paper)", None),
        ("direct (SwitchVM ext.)", CompileOptions(direct_memory=True)),
    ):
        controller = Controller()
        prepare(controller)
        largest, _ = fragmentation_stats(controller)
        util_before = controller.manager.memory_utilization()
        packed, util_after = pack_until_failure(controller, options, cap)
        results[label] = (largest, util_before, packed, util_after)
    return results


def print_scenario(title: str, results) -> None:
    widths = [26, 14, 12, 10, 12]
    print(f"\n{title}")
    print(
        fmt_row(
            "allocator", "largest run", "util before", "packed", "util after",
            widths=widths,
        )
    )
    for label, (largest, before, packed, after) in results.items():
        print(
            fmt_row(
                label, f"{largest} bkt", f"{before:.1%}", packed, f"{after:.1%}",
                widths=widths,
            )
        )


def test_fragmentation_vs_direct_mapping(benchmark):
    churn_rounds = scaled(300, 1200)
    cap = scaled(400, 800)

    def run():
        mild = run_scenario(lambda c: churn(c, churn_rounds, seed=5), cap)
        adversarial = run_scenario(lambda c: pin_tenants(c, 3072), cap)
        return mild, adversarial

    mild, adversarial = once(benchmark, run)
    banner("Ablation: fragmentation vs direct mapping (paper §7)")
    print_scenario("scenario A — deploy/revoke churn (first-fit self-heals):", mild)
    print_scenario(
        "scenario B — pinned long-lived tenants (3,072-bucket holes):", adversarial
    )
    # A: direct never does worse.
    assert mild["direct (SwitchVM ext.)"][2] >= mild["contiguous (paper)"][2]
    # B: contiguous 4,096-bucket requests cannot fit any hole; direct
    # mapping reclaims the fragments — a strict win.
    assert adversarial["contiguous (paper)"][2] == 0
    assert adversarial["direct (SwitchVM ext.)"][2] > 0
    assert (
        adversarial["direct (SwitchVM ext.)"][3]
        > adversarial["contiguous (paper)"][3] + 0.2
    )
    print(
        "\npaper §7: power-of-two continuous allocation leaves internal + "
        "external fragmentation; SwitchVM-style direct mapping reclaims it "
        "at the cost of per-fragment translation entries."
    )
