"""Sharded-engine scaling: packet rate at 1/2/4 worker processes.

The scenario is the throughput benchmark's hardest one — all 15 library
programs resident — driven with multi-flow cache-header traffic.  The
deploy order puts ``cms`` (a mergeable sketch whose filter matches all
IPv4) first, so under first-match init semantics the traffic is owned by
a data-parallel program and spreads across shards by flow hash.  The
same traffic with the pinned ``cache`` program as owner stays on one
shard by design; that datapoint is recorded separately as the placement
map's cost.  A third scenario (``pinned_owner_rebalanced``) drives a
2-worker engine with 50/50 pinned + hash-spread traffic, runs the
load-aware rebalancer once, and records the shard split before and
after — the ring reweighting must bring the hottest shard to <= 70% of
the traffic with zero packets dropped.  The consistent-hash remap cost
of growing a 4-worker ring to 5 is measured alongside (<= 35% of flows
may move).

Two rates are recorded per worker count:

* ``wall_pps`` — packets / wall seconds, what this machine actually
  delivered.  Only meaningful as a scaling signal when the host grants
  the engine enough cores (coordinator + 4 workers need 5).
* ``pps`` (projected aggregate capacity) — packets / max(coordinator CPU
  seconds, slowest worker's CPU seconds).  Each worker measures its own
  ``time.process_time()`` around the batch, so the projection is the
  makespan of the bottleneck process and is independent of how the OS
  time-slices the replicas onto cores; on an unloaded machine with
  enough cores it equals wall throughput.  The scaling assertion uses
  wall clock when the host has ≥5 cores and the projection otherwise.

Results land in the ``engine`` section of ``BENCH_simulator.json`` (the
canonical record; merge-don't-clobber via ``_common.write_results``).
"""

import os
import time

from _common import banner, fmt_row, once, scaled, write_results

from repro.controlplane import Controller
from repro.programs import ALL_PROGRAM_NAMES, PROGRAMS
from repro.rmt.packet import make_cache, make_udp

WORKER_COUNTS = (1, 2, 4)

#: wall-clock scaling is only attainable when every replica gets a core
CORES_FOR_WALL_SCALING = max(WORKER_COUNTS) + 1

REQUIRED_SPEEDUP = 2.5


def traffic(total):
    """Multi-flow cache-header traffic: 64 flows, 50 distinct keys."""
    return [make_cache(i % 64 + 1, 2, op=1, key=i % 50) for i in range(total)]


def mixed_traffic(total):
    """50/50 pinned (cache-header) and hash-spread (plain UDP) packets
    over 64 flows — the rebalancer's worst case when the pinned owner
    and a full hash share land on the same shard."""
    packets = []
    for i in range(total):
        if i % 2 == 0:
            packets.append(make_cache(i % 64 + 1, 2, op=1, key=i % 50))
        else:
            packets.append(make_udp(i % 64 + 1, 2, 5000 + i % 64, 80))
    return packets


def deploy_all(controller, first="cms"):
    controller.deploy(PROGRAMS[first].source)
    for name in ALL_PROGRAM_NAMES:
        if name != first:
            controller.deploy(PROGRAMS[name].source)


def measure_engine(num_workers, packets, repeats, first="cms"):
    """Best-of-N rates through an N-worker engine; plan built once."""
    from repro.engine import ShardedEngine

    with ShardedEngine(num_workers) as engine:
        deploy_all(engine.controller, first)
        plan = engine.plan(packets, mode="verdicts")
        best_wall = best_projected = 0.0
        shard_counts = list(plan.shard_counts)
        for _ in range(repeats):
            engine.inject_plan(plan)
            stats = engine.last_inject_stats
            makespan = max(
                [stats["coordinator_cpu_s"]]
                + list(stats["worker_cpu_s"].values())
            )
            best_wall = max(best_wall, len(packets) / stats["wall_s"])
            if makespan > 0:
                best_projected = max(best_projected, len(packets) / makespan)
    return {
        "wall_pps": round(best_wall, 1),
        "pps": round(best_projected, 1),
        "shard_counts": shard_counts,
    }


def measure_transport(packets, repeats):
    """Pipe vs shm southbound transport at 2 and 4 workers, end to end
    through ``inject`` (routing + encode + transfer + compute + results).
    The shm rows also record how often the engine had to fall back to the
    pipe and how long the coordinator stalled on full rings — both should
    be zero at default ring sizes."""
    from repro.engine import ShardedEngine

    out = {}
    for w in (2, 4):
        row = {}
        for label, use_shm in (("pipe", False), ("shm", True)):
            with ShardedEngine(w, use_shm=use_shm) as engine:
                deploy_all(engine.controller)
                best_wall = best_projected = 0.0
                for _ in range(repeats):
                    engine.inject(
                        [p.clone() for p in packets], mode="verdicts"
                    )
                    stats = engine.last_inject_stats
                    makespan = max(
                        [stats["coordinator_cpu_s"]]
                        + list(stats["worker_cpu_s"].values())
                    )
                    best_wall = max(best_wall, len(packets) / stats["wall_s"])
                    if makespan > 0:
                        best_projected = max(
                            best_projected, len(packets) / makespan
                        )
                entry = {
                    "wall_pps": round(best_wall, 1),
                    "pps": round(best_projected, 1),
                }
                if use_shm:
                    transport = engine.transport_stats()
                    entry["fallbacks"] = sum(transport["fallbacks"].values())
                    entry["stall_s"] = round(transport["stall_s"], 4)
                    entry["ring_records"] = transport["ring_records"]
                row[label] = entry
        pipe, shm = row["pipe"], row["shm"]
        row["wall_ratio"] = (
            round(shm["wall_pps"] / pipe["wall_pps"], 2)
            if pipe["wall_pps"]
            else 0.0
        )
        row["capacity_ratio"] = (
            round(shm["pps"] / pipe["pps"], 2) if pipe["pps"] else 0.0
        )
        out[str(w)] = row
    return out


def measure_rebalanced(packets, repeats):
    """The pinned-owner pathology, then the load-aware fix: a 2-worker
    engine with ``cache`` (pinned) owning half the traffic and ``cms``
    (hash-spread) the other half.  Before rebalancing, the pinned shard
    also serves its full hash share; ``rebalance()`` reweights the ring
    so hash flows drain to the cold shard."""
    from repro.engine import ShardedEngine

    with ShardedEngine(2) as engine:
        # Just the two owners: cache first (pinned, owns the nc-header
        # half by first-match), cms second (mergeable, owns the plain
        # UDP half, spread by flow hash).  Deploying the full library
        # would hand the UDP half to the pinned firewall instead and
        # leave no hash traffic for the ring to steer.
        engine.controller.deploy(PROGRAMS["cache"].source)
        engine.controller.deploy(PROGRAMS["cms"].source)
        engine.inject([p.clone() for p in packets], mode="verdicts")
        before = list(engine.last_inject_stats["shard_counts"])
        report = engine.rebalance(threshold=0.6)
        best_projected = 0.0
        after = before
        delivered = 0
        for _ in range(repeats):
            results = engine.inject(
                [p.clone() for p in packets], mode="verdicts"
            )
            stats = engine.last_inject_stats
            after = list(stats["shard_counts"])
            delivered = len([r for r in results if r is not None])
            makespan = max(
                [stats["coordinator_cpu_s"]]
                + list(stats["worker_cpu_s"].values())
            )
            if makespan > 0:
                best_projected = max(best_projected, len(packets) / makespan)
    return {
        "pps": round(best_projected, 1),
        "before_shard_counts": before,
        "after_shard_counts": after,
        "skew_before": round(max(before) / sum(before), 4),
        "max_share_after": round(max(after) / sum(after), 4),
        "delivered": delivered,
        "migrations": len(report["migrations"]),
        "reweighted": report["reweighted"],
    }


def measure_ring_remap(flows=10_000):
    """Fraction of flows remapped when a 4-worker ring grows to 5."""
    from repro.engine import HashRing, flow_hash

    ring = HashRing()
    for w in range(4):
        ring.add(w)
    hashes = [flow_hash((i + 1, 2, 17, 1000 + i, 80)) for i in range(flows)]
    before = [ring.lookup(h) for h in hashes]
    ring.add(4)
    moved = sum(1 for h, b in zip(hashes, before) if ring.lookup(h) != b)
    return round(moved / flows, 4)


def test_engine_scaling(benchmark):
    total = scaled(2_000, 20_000)
    repeats = scaled(3, 5)
    cores = os.cpu_count() or 1

    def run():
        packets = traffic(total)

        ctl, dataplane = Controller.with_simulator()
        deploy_all(ctl)
        start = time.perf_counter()
        dataplane.process_many([p.clone() for p in packets])
        single_pps = total / (time.perf_counter() - start)

        by_workers = {
            w: measure_engine(w, packets, repeats) for w in WORKER_COUNTS
        }
        pinned = measure_engine(2, packets, repeats, first="cache")
        rebalanced = measure_rebalanced(mixed_traffic(total), repeats)
        transport = measure_transport(packets, repeats)
        return single_pps, by_workers, pinned, rebalanced, transport

    single_pps, by_workers, pinned, rebalanced, transport = once(benchmark, run)
    remap_fraction = measure_ring_remap()

    base = by_workers[WORKER_COUNTS[0]]
    speedup = {
        w: round(by_workers[w]["pps"] / base["pps"], 2) for w in WORKER_COUNTS
    }
    wall_speedup = {
        w: round(by_workers[w]["wall_pps"] / base["wall_pps"], 2)
        for w in WORKER_COUNTS
    }

    banner("Sharded-engine scaling (15 programs, multi-flow cache traffic)")
    print(f"host cores: {cores}   packets/batch: {total:,}")
    print(fmt_row("single process", f"{single_pps:,.0f} pps", widths=[16, 44]))
    for w in WORKER_COUNTS:
        row = by_workers[w]
        print(
            fmt_row(
                f"{w} worker{'s' if w > 1 else ''}",
                f"{row['pps']:,.0f} pps capacity ({speedup[w]:.2f}x)",
                f"{row['wall_pps']:,.0f} pps wall ({wall_speedup[w]:.2f}x)",
                f"shards {row['shard_counts']}",
                widths=[16, 30, 30, 20],
            )
        )
    print(
        fmt_row(
            "pinned owner",
            f"{pinned['pps']:,.0f} pps capacity",
            f"shards {pinned['shard_counts']} (cache owns all traffic)",
            widths=[16, 30, 40],
        )
    )
    print(
        fmt_row(
            "rebalanced",
            f"{rebalanced['pps']:,.0f} pps capacity",
            f"shards {rebalanced['before_shard_counts']} -> "
            f"{rebalanced['after_shard_counts']} "
            f"(skew {rebalanced['skew_before']:.2f} -> "
            f"{rebalanced['max_share_after']:.2f})",
            widths=[16, 30, 50],
        )
    )
    print(
        fmt_row(
            "ring remap 4->5",
            f"{remap_fraction:.1%} of flows moved (<= 35% required)",
            widths=[16, 44],
        )
    )
    for w, row in transport.items():
        print(
            fmt_row(
                f"transport {w}w",
                f"pipe {row['pipe']['wall_pps']:,.0f} pps wall",
                f"shm {row['shm']['wall_pps']:,.0f} pps wall "
                f"({row['wall_ratio']:.2f}x)",
                f"capacity {row['capacity_ratio']:.2f}x, "
                f"{row['shm']['fallbacks']} fallbacks",
                widths=[16, 26, 34, 30],
            )
        )

    write_results(
        "engine",
        {
            "cores": cores,
            "packets_per_batch": total,
            "single_process_pps": round(single_pps, 1),
            "by_workers": {str(w): by_workers[w] for w in WORKER_COUNTS},
            "speedup": {str(w): speedup[w] for w in WORKER_COUNTS},
            "wall_speedup": {str(w): wall_speedup[w] for w in WORKER_COUNTS},
            "pinned_owner": pinned,
            "pinned_owner_rebalanced": rebalanced,
            "ring_remap_4_to_5": remap_fraction,
            "transport": transport,
            "shm_wall_speedup_vs_single": round(
                transport["4"]["shm"]["wall_pps"] / single_pps, 2
            ),
            "note": (
                "pps is projected aggregate capacity: packets / "
                "max(coordinator CPU s, slowest worker CPU s), measured "
                "with per-process time.process_time(); wall_pps is "
                "packets / wall seconds on this host. The two converge "
                f"when the host grants >= {CORES_FOR_WALL_SCALING} cores; "
                "the scaling assertion uses wall_pps there and the "
                "projection on smaller hosts. pinned_owner re-runs the "
                "2-worker engine with the pinned cache program owning the "
                "traffic: everything lands on one shard by design (its "
                "absolute rate is not comparable to the cms-owned runs -- "
                "a different program does the per-packet work)."
            ),
        },
    )

    # A pinned owner concentrates every packet on its shard.
    assert min(pinned["shard_counts"]) == 0
    # Data-parallel traffic spreads: no empty shard at 4 workers.
    assert min(by_workers[4]["shard_counts"]) > 0
    # The rebalancer fixes the pinned-owner skew: the pathology was real
    # before, post-rebalance the hottest shard holds <= 70%, and not a
    # single packet was dropped in the rebalanced run.
    assert rebalanced["skew_before"] > 0.7
    assert rebalanced["max_share_after"] <= 0.7, rebalanced
    assert rebalanced["delivered"] == total
    # Consistent hashing: growing the ring 4 -> 5 remaps <= 35% of flows.
    assert remap_fraction <= 0.35, remap_fraction
    # The headline acceptance: >= 2.5x at 4 workers.
    achieved = wall_speedup[4] if cores >= CORES_FOR_WALL_SCALING else speedup[4]
    assert achieved >= REQUIRED_SPEEDUP, (
        f"4-worker speedup {achieved:.2f}x below {REQUIRED_SPEEDUP}x "
        f"(cores={cores}, wall={wall_speedup[4]:.2f}x, "
        f"projected={speedup[4]:.2f}x)"
    )
    # Default-sized rings must carry the whole batch — a fallback here
    # means the zero-copy path silently regressed to pickle-over-pipe.
    for w, row in transport.items():
        assert row["shm"]["fallbacks"] == 0, (w, row["shm"])
    # And the shm transport may not cost aggregate capacity vs pipes.
    assert transport["4"]["capacity_ratio"] >= 0.8, transport["4"]
    # With a core per replica, shm streaming at 4 workers must deliver
    # >= 1.8x the single-process wall rate (the ISSUE acceptance floor).
    if cores >= CORES_FOR_WALL_SCALING:
        shm_wall = transport["4"]["shm"]["wall_pps"] / single_pps
        assert shm_wall >= 1.8, (
            f"shm 4-worker wall speedup {shm_wall:.2f}x below 1.8x "
            f"(shm wall {transport['4']['shm']['wall_pps']:,.0f} pps, "
            f"single {single_pps:,.0f} pps)"
        )
