"""Table 1: LoC and update delay for the 15 programs.

Regenerates every Table-1 row: our P4runpro LoC vs the paper's, and the
measured update delay (mean over repeated deploy/revoke cycles on a fresh
controller) vs the paper's, plus the prior system's published delay where
one exists (ActiveRMT / FlyMon).
"""

import statistics

from _common import banner, fmt_row, once, scaled

from repro.baselines.activermt import ActiveRMTTiming, WORKLOADS
from repro.baselines.flymon import FlyMonController
from repro.compiler import emit_p4, p4_loc, parse_and_check
from repro.controlplane import Controller
from repro.programs import ALL_PROGRAM_NAMES, PROGRAMS, source_loc


def measure_update_delays(repeats: int) -> dict[str, dict[str, float]]:
    rows: dict[str, dict[str, float]] = {}
    for name in ALL_PROGRAM_NAMES:
        info = PROGRAMS[name]
        ctl = Controller()
        install, parse = [], []
        for _ in range(repeats):
            handle = ctl.deploy(info.source)
            install.append(handle.stats.update_ms)
            parse.append(handle.stats.parse_ms)
            ctl.revoke(handle)
        unit = parse_and_check(info.source)
        generated_p4 = emit_p4(unit, unit.programs[0])
        rows[name] = {
            "update_ms": statistics.mean(install),
            "parse_ms": statistics.mean(parse),
            "loc": source_loc(info.source),
            "p4_loc": p4_loc(generated_p4),
        }
    return rows


def prior_delay(name: str) -> str:
    info = PROGRAMS[name]
    if info.prior_system == "ActiveRMT" and name in WORKLOADS:
        timing = ActiveRMTTiming()
        return f"{timing.update_delay_ms(WORKLOADS[name]):.2f}*"
    if info.prior_system == "FlyMon":
        return f"{FlyMonController().deploy(name).update_delay_ms:.2f}**"
    if info.prior_update_ms is not None:
        marker = "*" if info.prior_system == "ActiveRMT" else "**"
        return f"{info.prior_update_ms:.2f}{marker}"
    return "-"


def test_table1(benchmark):
    repeats = scaled(10, 50)
    rows = once(benchmark, lambda: measure_update_delays(repeats))
    banner("Table 1: P4 programs implemented by P4runpro + update delay")
    widths = [10, 10, 12, 10, 10, 14, 14, 14]
    print(
        fmt_row(
            "program",
            "LoC ours",
            "LoC paper",
            "P4 gen'd",
            "P4 paper",
            "update (ms)",
            "paper (ms)",
            "prior (ms)",
            widths=widths,
        )
    )
    for name in ALL_PROGRAM_NAMES:
        info = PROGRAMS[name]
        row = rows[name]
        print(
            fmt_row(
                name,
                row["loc"],
                info.paper_runpro_loc,
                row["p4_loc"],
                info.paper_p4_loc,
                f"{row['update_ms']:.2f}",
                f"{info.paper_update_ms:.2f}",
                prior_delay(name),
                widths=widths,
            )
        )
    parse_mean = statistics.mean(r["parse_ms"] for r in rows.values())
    print(f"\nmean parsing delay: {parse_mean:.3f} ms (paper: ~2 ms, negligible)")
    # Shape assertions: complexity ordering preserved.
    assert rows["hll"]["update_ms"] == max(r["update_ms"] for r in rows.values())
    assert rows["l3route"]["update_ms"] < rows["hh"]["update_ms"]
    for name in ALL_PROGRAM_NAMES:
        assert rows[name]["loc"] < PROGRAMS[name].paper_p4_loc
        # The expressiveness claim, measured: the generated conventional-P4
        # control block is always longer than the P4runpro source.
        assert rows[name]["p4_loc"] > rows[name]["loc"]
