"""Fig. 18 / Fig. 19 (Appendix C): per-RPB memory and table-entry
utilization heatmaps during continuous all-mixed deployment.

Prints text heatmaps (one row per RPB, one column per epoch segment) and
checks the appendix's observations: the default objective fills ingress
RPB entries ahead of egress ones (the reason forwarding-bound allocations
eventually fail), and memory allocation is non-uniform (first-fit).
"""

import statistics

from _common import banner, once, scaled

from repro.analysis.experiments import continuous_deployment

SHADES = " .:-=+*#%@"


def render(per_segment: list[list[float]], title: str) -> None:
    print(f"\n{title} (rows: RPB 1-22, cols: epoch segments, shade = utilization)")
    num_rpbs = len(per_segment[0])
    for rpb in range(num_rpbs):
        row = "".join(
            SHADES[min(int(seg[rpb] * (len(SHADES) - 1) + 0.5), len(SHADES) - 1)]
            for seg in per_segment
        )
        marker = "ingress" if rpb < 10 else "egress"
        print(f"  rpb{rpb + 1:<3d} |{row}| {marker}")


def segment(results, field: str, segments: int = 12) -> list[list[float]]:
    snaps = [getattr(r, field) for r in results if getattr(r, field)]
    size = max(len(snaps) // segments, 1)
    out = []
    for i in range(0, len(snaps), size):
        chunk = snaps[i : i + size]
        out.append([statistics.mean(s[j] for s in chunk) for j in range(22)])
    return out


def test_fig18_19_heatmaps(benchmark):
    epochs = scaled(250, 2500)
    results = once(
        benchmark,
        lambda: continuous_deployment(
            "all-mixed", epochs, snapshot_rpbs=True, stop_on_failure=True, seed=1
        ),
    )
    banner(f"Fig. 18/19: per-RPB utilization heatmaps ({len(results)} epochs)")
    memory_segments = segment(results, "per_rpb_memory")
    entry_segments = segment(results, "per_rpb_entries")
    render(memory_segments, "Fig. 18: memory utilization per RPB")
    render(entry_segments, "Fig. 19: table-entry utilization per RPB")

    final_entries = results[-1].per_rpb_entries
    final_memory = results[-1].per_rpb_memory
    ingress_entries = statistics.mean(final_entries[:10])
    egress_entries = statistics.mean(final_entries[10:])
    print(
        f"\nfinal entry utilization: ingress {ingress_entries:.1%} "
        f"vs egress {egress_entries:.1%}"
    )
    # Appendix C: under f1 the ingress RPBs' entries fill ahead of egress.
    assert ingress_entries > egress_entries
    # First-fit memory allocation is non-uniform across RPBs.
    assert statistics.pstdev(final_memory) > 0.01
