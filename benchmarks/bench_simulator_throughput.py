"""Supplementary micro-benchmark: simulator packet throughput.

Not a paper artifact — a substrate quality metric.  Measures how many
packets per second the simulated data plane processes with 1 and with 15
resident programs, and the per-deploy cost of the full control-plane
path.  Useful to size the case-study experiments and catch performance
regressions in the table/PHV hot paths.
"""

import time

from _common import banner, fmt_row, once

from repro.controlplane import Controller
from repro.programs import ALL_PROGRAM_NAMES, PROGRAMS
from repro.rmt.packet import make_cache, make_udp


def pps(dataplane, packets, repeats=3):
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        for packet in packets:
            dataplane.process(packet.clone())
        elapsed = time.perf_counter() - start
        best = max(best, len(packets) / elapsed)
    return best


def test_packet_throughput(benchmark):
    def run():
        results = {}
        packets = [make_udp(i + 1, 2, 1000 + i, 80) for i in range(500)]
        cache_packets = [make_cache(1, 2, op=1, key=i) for i in range(500)]

        ctl, dataplane = Controller.with_simulator()
        results["idle (no programs)"] = pps(dataplane, packets)

        ctl.deploy(PROGRAMS["cache"].source)
        results["1 program (cache traffic)"] = pps(dataplane, cache_packets)

        for name in ALL_PROGRAM_NAMES:
            if name != "cache":
                ctl.deploy(PROGRAMS[name].source)
        results["15 programs (cache traffic)"] = pps(dataplane, cache_packets)
        results["15 programs (plain UDP)"] = pps(dataplane, packets)
        return results

    results = once(benchmark, run)
    banner("Simulator throughput (packets/second, single core)")
    for label, rate in results.items():
        print(fmt_row(label, f"{rate:,.0f} pps", widths=[30, 16]))
    # Program-count scaling must stay sane thanks to the program-ID index.
    assert results["15 programs (cache traffic)"] > results["1 program (cache traffic)"] * 0.3
    assert results["idle (no programs)"] > 2000


def test_deploy_rate(benchmark):
    def run():
        ctl = Controller()
        start = time.perf_counter()
        count = 60
        for i in range(count):
            handle = ctl.deploy(PROGRAMS[("lb", "cms", "l3route")[i % 3]].source)
        return count / (time.perf_counter() - start)

    rate = once(benchmark, run)
    banner("Control-plane deploy rate (compile + allocate + install)")
    print(f"{rate:.1f} deployments/second")
    assert rate > 5
