"""Supplementary micro-benchmark: simulator packet throughput.

Not a paper artifact — a substrate quality metric.  Measures how many
packets per second the simulated data plane processes with 1 and with 15
resident programs (through the batched fast path), the per-deploy cost of
the full control-plane path, and the allocation solver's search rate.
Useful to size the case-study experiments and catch performance
regressions in the table/PHV hot paths.

Results are written to ``BENCH_simulator.json`` at the repo root — the
canonical machine-readable performance record (CI's perf-smoke job diffs
it against ``benchmarks/perf_baseline.json``).  ``pre_fast_path`` keeps
the numbers measured on this machine before the compiled fast path landed,
so the speedup stays visible next to the current run.

Pass ``--workers N`` (or set ``REPRO_BENCH_WORKERS=N``) to also measure
the 15-program scenario through an N-worker sharded engine;
``bench_engine_scaling.py`` holds the full 1/2/4-worker scaling study.
"""

import random
import time

from _common import banner, fmt_row, once, write_results

from repro.compiler.compiler import compile_source
from repro.compiler.objectives import f3
from repro.controlplane import Controller
from repro.programs import ALL_PROGRAM_NAMES, PROGRAMS
from repro.rmt.packet import make_cache, make_udp

#: pps measured on the pre-fast-path simulator (same scenarios, same
#: machine class) — kept for speedup reporting, not for CI gating.
PRE_FAST_PATH_PPS = {
    "idle (no programs)": 18335,
    "1 program (cache traffic)": 8953,
    "15 programs (cache traffic)": 7457,
    "15 programs (plain UDP)": 7057,
}


def pps(dataplane, packets, repeats=3):
    """Best-of-N batched packet rate; cloning counts against the clock,
    exactly as the pre-fast-path measurement did."""
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        dataplane.process_many([packet.clone() for packet in packets])
        elapsed = time.perf_counter() - start
        best = max(best, len(packets) / elapsed)
    return best


def engine_pps(num_workers, packets, repeats=3):
    """Best-of-N wall-clock packet rate through an N-worker sharded
    engine, all 15 programs resident (cms first so the multi-flow IP
    traffic is data-parallel; see bench_engine_scaling.py for the full
    scaling study and the capacity projection)."""
    from repro.engine import ShardedEngine

    with ShardedEngine(num_workers) as engine:
        engine.controller.deploy(PROGRAMS["cms"].source)
        for name in ALL_PROGRAM_NAMES:
            if name != "cms":
                engine.controller.deploy(PROGRAMS[name].source)
        plan = engine.plan(packets, mode="verdicts")
        best = 0.0
        for _ in range(repeats):
            start = time.perf_counter()
            engine.inject_plan(plan)
            elapsed = time.perf_counter() - start
            best = max(best, len(packets) / elapsed)
    return best


def test_packet_throughput(benchmark, engine_workers):
    def run():
        results = {}
        packets = [make_udp(i + 1, 2, 1000 + i, 80) for i in range(500)]
        cache_packets = [make_cache(1, 2, op=1, key=i) for i in range(500)]

        ctl, dataplane = Controller.with_simulator()
        # These four scenarios gate the *interpreter* hot path: the flow
        # cache would make them measure mostly replay speed, and the
        # codegen tier would measure generated code, hiding a regression
        # in the pipeline walk itself.  The cached rate has its own
        # scenario (and gate) in test_flow_cache_throughput, and the
        # generated-code rate in test_codegen_throughput.
        dataplane.flow_cache.enabled = False
        dataplane.codegen.enabled = False
        results["idle (no programs)"] = pps(dataplane, packets)

        ctl.deploy(PROGRAMS["cache"].source)
        results["1 program (cache traffic)"] = pps(dataplane, cache_packets)

        for name in ALL_PROGRAM_NAMES:
            if name != "cache":
                ctl.deploy(PROGRAMS[name].source)
        results["15 programs (cache traffic)"] = pps(dataplane, cache_packets)
        results["15 programs (plain UDP)"] = pps(dataplane, packets)
        if engine_workers:
            flows = [
                make_cache(i % 64 + 1, 2, op=1, key=i % 50) for i in range(500)
            ]
            results[f"15 programs ({engine_workers} workers)"] = engine_pps(
                engine_workers, flows
            )
        return results

    results = once(benchmark, run)
    banner("Simulator throughput (packets/second, single core, batched)")
    for label, rate in results.items():
        baseline = PRE_FAST_PATH_PPS.get(label)
        speedup = f"{rate / baseline:.1f}x vs pre-fast-path" if baseline else ""
        print(fmt_row(label, f"{rate:,.0f} pps", speedup, widths=[30, 16, 24]))
    write_results(
        "throughput",
        {
            "pps": {label: round(rate, 1) for label, rate in results.items()},
            "pre_fast_path_pps": PRE_FAST_PATH_PPS,
            "speedup": {
                label: round(results[label] / base, 2)
                for label, base in PRE_FAST_PATH_PPS.items()
            },
        },
    )
    # Program-count scaling must stay sane thanks to the program-ID index.
    assert results["15 programs (cache traffic)"] > results["1 program (cache traffic)"] * 0.3
    assert results["idle (no programs)"] > 2000


def test_codegen_throughput(benchmark):
    """Trace-to-source codegen tier on the same cache-disabled scenarios
    as test_packet_throughput: flow cache off, codegen on, so every
    packet after the first runs through a generated function.  The
    speedup column compares against the interpreter rate measured in the
    same run (codegen off, same dataplane state)."""

    def run():
        results = {}
        packets = [make_udp(i + 1, 2, 1000 + i, 80) for i in range(500)]
        cache_packets = [make_cache(1, 2, op=1, key=i) for i in range(500)]

        ctl, dataplane = Controller.with_simulator()
        dataplane.flow_cache.enabled = False

        def measure(label, pkts):
            dataplane.codegen.enabled = False
            interp = pps(dataplane, pkts)
            dataplane.codegen.enabled = True
            # Warm pass: compile the generated functions outside the
            # clock (deploys between scenarios invalidate them anyway).
            dataplane.process_many([p.clone() for p in pkts])
            results[label] = {"pps": pps(dataplane, pkts), "interp": interp}

        measure("idle (no programs)", packets)
        ctl.deploy(PROGRAMS["cache"].source)
        measure("1 program (cache traffic)", cache_packets)
        for name in ALL_PROGRAM_NAMES:
            if name != "cache":
                ctl.deploy(PROGRAMS[name].source)
        measure("15 programs (cache traffic)", cache_packets)
        measure("15 programs (plain UDP)", packets)
        return results, dataplane.codegen.stats()

    results, stats = once(benchmark, run)
    banner("Codegen tier throughput (flow cache off, packets/second)")
    for label, r in results.items():
        print(
            fmt_row(
                label,
                f"{r['pps']:,.0f} pps",
                f"{r['pps'] / r['interp']:.1f}x vs interpreter",
                widths=[30, 16, 24],
            )
        )
    write_results(
        "codegen",
        {
            "pps": {label: round(r["pps"], 1) for label, r in results.items()},
            "interpreter_pps": {
                label: round(r["interp"], 1) for label, r in results.items()
            },
            "speedup_vs_interpreter": {
                label: round(r["pps"] / r["interp"], 2)
                for label, r in results.items()
            },
            "compiled": stats["compiled"],
            "fallbacks": stats["fallbacks"],
        },
    )
    # Every scenario must beat the interpreter it replaces, and all
    # traffic in these scenarios is codegen-servable (no fallbacks).
    for label, r in results.items():
        assert r["pps"] > r["interp"], label
    assert stats["hits"] > 0
    assert not stats["fallbacks"], stats["fallbacks"]


def zipf_stream(num_flows=2000, num_packets=4000, s=1.2, seed=42):
    """A skewed flow mix: flow popularity follows Zipf(s) over
    ``num_flows`` distinct 5-tuples — the head flows dominate, as in
    real traffic, which is exactly the locality a flow cache exploits."""
    rng = random.Random(seed)
    weights = [1.0 / (rank ** s) for rank in range(1, num_flows + 1)]
    flows = [
        make_udp(0x0A000000 + flow, 2, 1024 + flow % 40000, 80)
        for flow in range(num_flows)
    ]
    return [flows[i].clone() for i in rng.choices(range(num_flows), weights, k=num_packets)]


def uniform_stream(num_flows=2000, num_packets=4000, seed=43):
    """The flow cache's worst case: ``num_flows`` distinct 5-tuples hit
    uniformly at random — no head flows, so the EMC thrashes and the
    cache's own bookkeeping is pure overhead on most packets."""
    rng = random.Random(seed)
    flows = [
        make_udp(0x0B000000 + flow, 2, 1024 + flow % 40000, 80)
        for flow in range(num_flows)
    ]
    return [flows[i].clone() for i in rng.choices(range(num_flows), k=num_packets)]


def _cached_rate(source, packets):
    """Cached pps + hit rate over one warmed dataplane (cache on)."""
    ctl, cached = Controller.with_simulator()
    ctl.deploy(source)
    cached.process_many([p.clone() for p in packets])  # warm the cache
    before = cached.flow_cache.stats()
    rate_on = pps(cached, packets)
    after = cached.flow_cache.stats()
    hits = (
        after["emc_hits"]
        - before["emc_hits"]
        + after["megaflow_hits"]
        - before["megaflow_hits"]
    )
    lookups = hits + after["misses"] - before["misses"]
    return rate_on, hits / lookups if lookups else 0.0


def test_flow_cache_throughput(benchmark):
    """Two-tier flow cache on Zipf-skewed and uniform traffic: cached vs
    uncached packet rate plus the measured hit rate, with one resident
    forwarding program so verdicts vary per flow.  The uniform mix is
    the cache's worst case — the gate on it keeps cache bookkeeping from
    regressing the miss path."""

    def run():
        source = PROGRAMS["l2fwd"].source
        packets = zipf_stream()

        rate_on, hit_rate = _cached_rate(source, packets)

        ctl_off, uncached = Controller.with_simulator()
        # The uncached comparator is the *interpreter* (codegen off too),
        # so "speedup" keeps meaning "cache vs full pipeline walk"; the
        # cache-vs-codegen delta is visible in the codegen section.
        uncached.flow_cache.enabled = False
        uncached.codegen.enabled = False
        ctl_off.deploy(source)
        rate_off = pps(uncached, packets)

        uniform_on, uniform_hit_rate = _cached_rate(source, uniform_stream())
        return {
            "cached_pps": rate_on,
            "uncached_pps": rate_off,
            "hit_rate": hit_rate,
            "speedup": rate_on / rate_off if rate_off else 0.0,
            "uniform_cached_pps": uniform_on,
            "uniform_hit_rate": uniform_hit_rate,
        }

    results = once(benchmark, run)
    banner("Flow cache on Zipf-skewed traffic (2000 flows, s=1.2)")
    print(fmt_row("skewed, cache on", f"{results['cached_pps']:,.0f} pps",
                  f"hit rate {results['hit_rate'] * 100:.1f}%",
                  widths=[30, 16, 24]))
    print(fmt_row("skewed, cache off", f"{results['uncached_pps']:,.0f} pps",
                  f"{results['speedup']:.1f}x speedup from cache",
                  widths=[30, 16, 24]))
    print(fmt_row("uniform, cache on", f"{results['uniform_cached_pps']:,.0f} pps",
                  f"hit rate {results['uniform_hit_rate'] * 100:.1f}%",
                  widths=[30, 16, 24]))
    write_results(
        "flow_cache",
        {
            "skewed": {
                "cached_pps": round(results["cached_pps"], 1),
                "uncached_pps": round(results["uncached_pps"], 1),
                "hit_rate": round(results["hit_rate"], 4),
                "speedup": round(results["speedup"], 2),
            },
            "uniform": {
                "cached_pps": round(results["uniform_cached_pps"], 1),
                "hit_rate": round(results["uniform_hit_rate"], 4),
            },
        },
    )
    assert results["hit_rate"] > 0.9  # Zipf head flows dominate
    assert results["cached_pps"] > results["uncached_pps"]
    assert results["uniform_cached_pps"] > 0


#: deploys/s measured on the pre-fast-path control plane (same 60-deploy
#: lb/cms/l3route mix, same machine class) — for speedup reporting.
PRE_FAST_PATH_DEPLOYS_PER_S = 983.4

#: the deploy mix and count shared by the cold and warm scenarios
DEPLOY_MIX = ("lb", "cms", "l3route")
DEPLOY_COUNT = 60


def _deploy_rate(make_controller, repeats=3):
    """Best-of-N deploy rate over a fresh controller per round (same
    convention as :func:`pps`: best-of filters scheduler/GC noise)."""
    best = 0.0
    for _ in range(repeats):
        ctl = make_controller()
        start = time.perf_counter()
        for i in range(DEPLOY_COUNT):
            ctl.deploy(PROGRAMS[DEPLOY_MIX[i % len(DEPLOY_MIX)]].source)
        best = max(best, DEPLOY_COUNT / (time.perf_counter() - start))
    return best


def test_deploy_rate(benchmark):
    """Control-plane deploy rate, cold and warm.

    *cold*: relocatable allocation cache disabled and process-wide solver
    caches cleared — every deploy pays the full parse + translate +
    branch-and-bound + install path (the pre-fast-path behavior, so the
    cold number gauges the solver-side speedups: warm-started endpoint
    enumeration and incremental feasibility refresh).

    *warm*: fresh controller whose deploy cache was primed with one
    deploy/revoke round per program — every timed deploy front-end-hits
    (no parse/translate) and shape-hits (trace rebind instead of solve).
    """
    from repro.compiler import solver

    def make_cold():
        solver.clear_global_caches()
        ctl = Controller()
        ctl.deploy_cache.enabled = False
        return ctl

    def make_warm():
        solver.clear_global_caches()
        ctl = Controller()
        for name in DEPLOY_MIX:
            handle = ctl.deploy(PROGRAMS[name].source)
            ctl.revoke(handle)
        return ctl

    def run():
        return {"cold": _deploy_rate(make_cold), "warm": _deploy_rate(make_warm)}

    results = once(benchmark, run)
    banner("Control-plane deploy rate (compile + allocate + install)")
    for label in ("cold", "warm"):
        rate = results[label]
        print(
            fmt_row(
                f"deploy.{label}",
                f"{rate:,.1f} deploys/s",
                f"{rate / PRE_FAST_PATH_DEPLOYS_PER_S:.1f}x vs pre-fast-path",
                widths=[16, 20, 24],
            )
        )
    write_results(
        "deploy",
        {
            "cold": {"deploys_per_s": round(results["cold"], 1)},
            "warm": {"deploys_per_s": round(results["warm"], 1)},
            "pre_fast_path_deploys_per_s": PRE_FAST_PATH_DEPLOYS_PER_S,
            "speedup": {
                label: round(results[label] / PRE_FAST_PATH_DEPLOYS_PER_S, 2)
                for label in ("cold", "warm")
            },
        },
    )
    assert results["cold"] > 5
    assert results["warm"] > results["cold"] * 0.8


def test_solver_node_rate(benchmark):
    """Branch-and-bound search rate (nodes/s) on a nonlinear objective —
    the solver-side companion of the packet-rate numbers above."""

    def run():
        from repro.compiler.compiler import CompileOptions

        nodes = 0
        elapsed = 0.0
        # Default (linear) objective plus f3, which forces the generic
        # branch-and-bound path (much more search).
        for options in (None, CompileOptions(objective=f3())):
            for name in ("cache", "lb", "hh"):
                allocation = compile_source(
                    PROGRAMS[name].source, options=options
                ).allocation
                nodes += allocation.nodes_explored
                elapsed += allocation.solve_time_s
        return nodes, elapsed

    nodes, elapsed = once(benchmark, run)
    rate = nodes / elapsed if elapsed > 0 else 0.0
    banner("Allocation-solver search rate")
    print(f"{nodes:,} nodes in {elapsed * 1e3:.1f} ms -> {rate:,.0f} nodes/s")
    write_results(
        "solver",
        {"nodes": nodes, "elapsed_ms": round(elapsed * 1e3, 2), "nodes_per_s": round(rate)},
    )
    assert rate > 1000
