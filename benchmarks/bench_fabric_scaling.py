"""Fabric scaling: aggregate capacity at 1/2/4 leaves plus failover cost.

Scenario: a leaf-spine fabric (2 spines above every multi-leaf
configuration) with the mergeable ``cms`` sketch deployed fabric-wide,
driven by the shared topology-aware flow generator
(:func:`repro.traffic.make_fabric_population`, 50% leaf locality).  Every
node is a full P4runpro switch; packets traverse up to three pipelines
(ingress leaf, spine, egress leaf).

Two rates per leaf count:

* ``wall_pps`` — packets / wall seconds.  The fabric's nodes run
  serially inside one process, so wall rate *cannot* scale with leaves;
  it is recorded as the honest single-host number.
* ``pps`` (projected aggregate capacity) — packets / busiest node's CPU
  seconds, the same makespan metric the engine benchmark uses.  In a
  real fabric every switch is its own hardware, so the bottleneck
  node's time is the fabric's capacity limit.  With 4 leaves at 50%
  locality each leaf handles ~(1 + 0.5)/4 of the per-packet pipeline
  work of the 1-leaf fabric, so capacity must scale >= 2x (the ISSUE
  acceptance floor).

The failover scenario (controlled routing, link down at the run's
midpoint, controller reroute two chunks later) records the traffic lost
in the blackout window and the reroute's wall latency.  Results land in
the ``fabric`` section of ``BENCH_simulator.json``.
"""

import time

from _common import banner, fmt_row, once, scaled, write_results

from repro.fabric import Fabric, FabricController, Scenario, Topology
from repro.programs import PROGRAMS
from repro.traffic import make_fabric_population

LEAF_COUNTS = (1, 2, 4)
SPINES = 2
LOCALITY = 0.5

REQUIRED_SPEEDUP = 2.0


def measure_fabric(num_leaves, packets, repeats, seed=7):
    """Best-of-N rates through a fabric of ``num_leaves`` leaves."""
    spines = SPINES if num_leaves > 1 else 0
    with Topology.leaf_spine(num_leaves, spines, seed=seed) as topo:
        controller = FabricController(topo)
        controller.deploy(PROGRAMS["cms"].source)
        traffic = make_fabric_population(
            topo, num_flows=1024, locality=LOCALITY, seed=seed
        )
        assignments = traffic.assignments(packets)
        best_wall = best_projected = 0.0
        for _ in range(repeats):
            for node in topo.nodes.values():
                node.busy_s = 0.0
            report = controller.fabric.run(
                [(leaf, pkt.clone()) for leaf, pkt in assignments]
            )
            assert report.conservation_ok()
            assert not report.drops, report.drops
            makespan = max(node.busy_s for node in topo.nodes.values())
            best_wall = max(best_wall, packets / report.wall_s)
            if makespan > 0:
                best_projected = max(best_projected, packets / makespan)
        return {
            "wall_pps": round(best_wall, 1),
            "pps": round(best_projected, 1),
            "nodes": num_leaves + spines,
        }


def measure_failover(packets, seed=7):
    """Controlled-mode failover: loss window and reroute latency."""
    with Topology.leaf_spine(2, SPINES, seed=seed) as topo:
        fabric = Fabric(topo, routing="controlled")
        controller = FabricController(topo, fabric=fabric)
        controller.deploy(PROGRAMS["cms"].source)
        traffic = make_fabric_population(
            topo, num_flows=1024, locality=0.0, seed=seed
        )
        assignments = traffic.assignments(packets)
        fail_at = packets // 2
        heal_at = fail_at + packets // 10
        scenario = (
            Scenario()
            .link_down(fail_at, "leaf0", "spine0")
            .reroute(heal_at)
        )
        report = fabric.run(assignments, scenario=scenario)
        assert report.conservation_ok()
        lost = sum(report.drops.values())
        window = heal_at - fail_at
        return {
            "packets": packets,
            "blackout_window_packets": window,
            "lost_packets": lost,
            "loss_share_of_window": round(lost / window, 4),
            "reroute_latency_ms": report.reroutes[0]["latency_ms"],
            "reorders": report.reorders,
        }


def test_fabric_scaling(benchmark):
    total = scaled(3_000, 20_000)
    repeats = scaled(2, 4)

    def run():
        by_leaves = {
            n: measure_fabric(n, total, repeats) for n in LEAF_COUNTS
        }
        failover = measure_failover(scaled(2_000, 10_000))
        return by_leaves, failover

    by_leaves, failover = once(benchmark, run)

    base = by_leaves[LEAF_COUNTS[0]]
    speedup = {
        n: round(by_leaves[n]["pps"] / base["pps"], 2) for n in LEAF_COUNTS
    }

    banner(
        f"Fabric scaling ({SPINES} spines, cms fabric-wide, "
        f"{LOCALITY:.0%} leaf locality)"
    )
    print(f"packets/run: {total:,}")
    for n in LEAF_COUNTS:
        row = by_leaves[n]
        print(
            fmt_row(
                f"{n} {'leaf' if n == 1 else 'leaves'}",
                f"{row['pps']:,.0f} pps capacity ({speedup[n]:.2f}x)",
                f"{row['wall_pps']:,.0f} pps wall",
                f"{row['nodes']} switches",
                widths=[10, 34, 24, 12],
            )
        )
    print(
        fmt_row(
            "failover",
            f"{failover['lost_packets']} lost of "
            f"{failover['blackout_window_packets']}-packet blackout window",
            f"reroute {failover['reroute_latency_ms']:.3f} ms",
            widths=[10, 44, 24],
        )
    )

    write_results(
        "fabric",
        {
            "spines": SPINES,
            "locality": LOCALITY,
            "packets_per_run": total,
            "by_leaves": {str(n): by_leaves[n] for n in LEAF_COUNTS},
            "speedup": {str(n): speedup[n] for n in LEAF_COUNTS},
            "failover": failover,
            "note": (
                "pps is projected aggregate capacity: packets / busiest "
                "node's CPU seconds (per-node time.process_time() around "
                "its batches). Fabric nodes run serially in one process, "
                "so wall_pps cannot scale with leaves; in deployment every "
                "switch is its own hardware and the busiest node bounds "
                "fabric capacity. failover: controlled routing, leaf0-"
                "spine0 link down mid-run, controller reroute after a 10% "
                "blackout window; lost packets are the link_down-accounted "
                "drops in that window."
            ),
        },
    )

    # Spine-layer and egress processing cost capacity at 2 leaves; the
    # fan-out win must dominate by 4 leaves.
    assert speedup[4] >= REQUIRED_SPEEDUP, (
        f"4-leaf capacity speedup {speedup[4]:.2f}x below {REQUIRED_SPEEDUP}x"
    )
    # Failover must lose only (part of) the blackout window, never more.
    assert 0 < failover["lost_packets"] <= failover["blackout_window_packets"]
