"""Fig. 8: memory and table-entry utilization under continuous allocation.

Programs are deployed until the first allocation failure; the series of
(memory%, entry%) per epoch reproduces Fig. 8's curves.  The paper's
takeaways checked here: final utilization lands in the 60-80% band for the
constrained workloads, lb reaches the highest memory utilization, and
cache/hh stop early because forwarding primitives exhaust ingress RPB
entries while egress RPBs still have room.
"""

from _common import banner, fmt_row, once, scaled

from repro.analysis.experiments import continuous_deployment

WORKLOADS = ("cache", "lb", "hh", "mixed")


def run(max_epochs: int, memory_buckets: int, elastic: int):
    outcome = {}
    for workload in WORKLOADS:
        results = continuous_deployment(
            workload,
            max_epochs,
            memory_buckets=memory_buckets,
            elastic_blocks=elastic,
            stop_on_failure=True,
            seed=1,
        )
        outcome[workload] = results
    return outcome


def test_fig8_utilization(benchmark):
    # Quick scale reaches genuine allocation failure within minutes by
    # requesting more memory (4 KB) and elastic entries (32 blocks) per
    # program; full scale uses the paper's 1,024 B / 2 elastic blocks.
    max_epochs = scaled(600, 4000)
    memory_buckets = scaled(1024, 256)
    elastic = scaled(32, 2)
    outcome = once(benchmark, lambda: run(max_epochs, memory_buckets, elastic))
    banner(f"Fig. 8: utilization under continuous allocation (cap {max_epochs})")
    widths = [8, 10, 12, 12, 10]
    print(fmt_row("workload", "programs", "memory %", "entries %", "failed?", widths=widths))
    finals = {}
    for workload, results in outcome.items():
        successes = [r for r in results if r.success]
        last = results[-1]
        failed = not last.success
        finals[workload] = (len(successes), last.memory_utilization, last.entry_utilization, failed)
        print(
            fmt_row(
                workload,
                len(successes),
                f"{last.memory_utilization:.1%}",
                f"{last.entry_utilization:.1%}",
                "yes" if failed else f"no (cap {max_epochs})",
                widths=widths,
            )
        )
    # Series excerpt for the curve shape (every ~10% of the run).
    print("\nutilization trajectory (memory% / entries%) — lb workload:")
    lb = outcome["lb"]
    step = max(len(lb) // 10, 1)
    for r in lb[::step]:
        print(f"  epoch {r.epoch:5d}: {r.memory_utilization:.1%} / {r.entry_utilization:.1%}")
    # Shape assertions.
    for workload in WORKLOADS:
        count, mem, te, failed = finals[workload]
        assert count > 50
        if failed:
            # At failure the binding resource sits well into the paper's
            # utilization band (60-80% average across workloads).
            assert max(mem, te) >= 0.40
    # Utilization is monotonically non-decreasing while successful.
    memory_series = [r.memory_utilization for r in lb if r.success]
    assert memory_series == sorted(memory_series)
    print("\npaper: average utilization 60-80% at failure; cache/hh stop "
          "early because forwarding primitives exhaust ingress RPB entries")
