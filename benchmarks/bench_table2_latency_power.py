"""Table 2: pipeline latency (cycles), worst-case power, traffic limit load.

P4runpro's row is computed from the built simulator data plane; ActiveRMT
and FlyMon run the same latency/power models over their published
configurations (see repro.baselines.profiles).
"""

from _common import banner, fmt_row, once

from repro.baselines.profiles import all_profiles

PAPER = {
    "P4runpro": ((306, 316, 622), (19.32, 21.42, 40.74), 0.98),
    "ActiveRMT": ((312, 308, 620), (23.36, 20.34, 43.70), 0.91),
    "FlyMon": ((54, 282, 336), (0.0, 34.05, 34.05), 1.00),
}


def test_table2(benchmark):
    profiles = once(benchmark, all_profiles)
    banner("Table 2: latency / worst-case power / traffic limit load")
    widths = [11, 22, 22, 10, 24]
    print(
        fmt_row(
            "system", "latency in/eg/total", "power in/eg/total", "load", "paper (lat, W, load)",
            widths=widths,
        )
    )
    by_name = {}
    for profile in profiles:
        by_name[profile.name] = profile
        paper_lat, paper_pw, paper_load = PAPER[profile.name]
        print(
            fmt_row(
                profile.name,
                "/".join(str(c) for c in profile.latency_cycles),
                "/".join(f"{w:.2f}" for w in profile.power_watts),
                f"{profile.traffic_limit_load:.1%}",
                f"{paper_lat[2]}cy {paper_pw[2]:.1f}W {paper_load:.0%}",
                widths=widths,
            )
        )
    # Shape assertions (who wins / orderings from the paper).
    assert by_name["P4runpro"].latency_cycles[2] == 622
    assert by_name["P4runpro"].power_watts[2] < by_name["ActiveRMT"].power_watts[2]
    assert by_name["FlyMon"].traffic_limit_load == 1.0
    assert (
        by_name["FlyMon"].traffic_limit_load
        > by_name["P4runpro"].traffic_limit_load
        > by_name["ActiveRMT"].traffic_limit_load
    )
    assert by_name["FlyMon"].latency_cycles[2] < by_name["P4runpro"].latency_cycles[2]
