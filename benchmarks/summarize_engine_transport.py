"""One-line southbound-transport summary for the CI job summary.

Usage::

    python benchmarks/summarize_engine_transport.py [results.json]

Reads the ``engine.transport`` section of ``BENCH_simulator.json`` and
prints the pipe-vs-shm comparison at 2 and 4 workers in GitHub-flavored
markdown — CI appends it to ``$GITHUB_STEP_SUMMARY`` so the transport
outcome (rates, fallback count, coordinator stall time) is visible on
the workflow page without opening the benchmark artifact.  Exits 0 even
when the section is missing (the scaling bench may not have run); the
perf gate, not this summary, is the enforcement point.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_RESULTS = REPO_ROOT / "BENCH_simulator.json"


def main(argv: list[str]) -> int:
    results_path = Path(argv[1]) if len(argv) > 1 else DEFAULT_RESULTS
    try:
        results = json.loads(results_path.read_text())
    except (OSError, ValueError) as exc:
        print(f"engine-transport summary: cannot read {results_path}: {exc}")
        return 0
    engine = results.get("engine", {})
    transport = engine.get("transport")
    if not transport:
        print(
            "engine-transport summary: no `engine.transport` section in "
            "results"
        )
        return 0
    parts = []
    fallbacks = 0
    stall_s = 0.0
    for workers in sorted(transport, key=int):
        row = transport[workers]
        shm, pipe = row.get("shm", {}), row.get("pipe", {})
        fallbacks += shm.get("fallbacks", 0)
        stall_s += shm.get("stall_s", 0.0)
        parts.append(
            f"{workers}w shm {shm.get('wall_pps', 0):,.0f} pps wall / "
            f"{shm.get('pps', 0):,.0f} capacity "
            f"(pipe {pipe.get('wall_pps', 0):,.0f} / "
            f"{pipe.get('pps', 0):,.0f}; "
            f"{row.get('capacity_ratio', 0):.2f}x capacity)"
        )
    wall_speedup = engine.get("shm_wall_speedup_vs_single")
    tail = (
        f"{fallbacks} pipe fallback(s), {stall_s:.3f}s coordinator stall; "
        f"shm 4w wall = {wall_speedup:.2f}x single process "
        f"on a {engine.get('cores', '?')}-core host"
        if wall_speedup is not None
        else f"{fallbacks} pipe fallback(s), {stall_s:.3f}s coordinator stall"
    )
    print(
        "**Southbound transport** — " + "; ".join(parts) + f" — {tail}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
