"""Supplementary micro-benchmark: allocation-solver scaling.

Backs up the §6.2.1 claim that P4runpro's allocation complexity "is not
sensitive to the number of allocated resources but increases with the
depth of the input AST": sweeps program depth and resource pressure
independently and reports solve times and node counts.
"""

import statistics
import time

from _common import banner, fmt_row, once

from repro.compiler.allocation import AllocationProblem
from repro.compiler.objectives import f1
from repro.compiler.solver import AllocationSolver
from repro.compiler.target import TargetSpec, UnlimitedResources


def make_problem(depths: int, forwarding_tail: bool = True) -> AllocationProblem:
    forwarding = {depths} if forwarding_tail and depths > 1 else set()
    return AllocationProblem(
        program=f"synthetic{depths}",
        num_depths=depths,
        te_req={d: 2 for d in range(1, depths + 1)},
        forwarding_depths=forwarding,
        memory_sizes={"m": 256},
        memory_depths={"m": [max(depths // 2, 1)]},
        sequential_pairs=[],
    )


class PressuredView:
    """Fixed fraction of every RPB's entries already consumed."""

    def __init__(self, spec: TargetSpec, used_fraction: float):
        self._free = int(spec.rpb_table_size * (1 - used_fraction))
        self._mem = spec.rpb_memory_size

    def free_entries(self, phys):
        return self._free

    def can_allocate_memory(self, phys, sizes):
        return sum(sizes) <= self._mem


def solve_ms(problem, view, spec, repeats=30):
    solver = AllocationSolver(spec, view)
    times = []
    nodes = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = solver.solve(problem, f1())
        times.append((time.perf_counter() - t0) * 1e3)
        nodes = result.nodes_explored
    return statistics.mean(times), nodes


def test_depth_scaling(benchmark):
    spec = TargetSpec()
    view = UnlimitedResources(spec)

    def run():
        return {
            depths: solve_ms(make_problem(depths), view, spec)
            for depths in (2, 4, 8, 12, 16, 20, 24)
        }

    rows = once(benchmark, run)
    banner("Solver scaling: allocation time vs program depth (free chip)")
    print(fmt_row("depth L", "mean ms", "nodes", widths=[10, 12, 10]))
    for depths, (ms, nodes) in rows.items():
        print(fmt_row(depths, f"{ms:.3f}", nodes, widths=[10, 12, 10]))
    # Cost grows with depth...
    assert rows[24][1] > rows[2][1]
    # ...but stays interactive even at the domain's edge.
    assert rows[24][0] < 100.0


def test_pressure_insensitivity(benchmark):
    """Occupancy changes feasibility, not asymptotics: solve time under
    0% / 50% / 90% entry pressure stays the same order of magnitude."""
    spec = TargetSpec()
    problem = make_problem(10)

    def run():
        return {
            fraction: solve_ms(problem, PressuredView(spec, fraction), spec)
            for fraction in (0.0, 0.5, 0.9)
        }

    rows = once(benchmark, run)
    banner("Solver scaling: allocation time vs pre-existing entry pressure")
    print(fmt_row("pressure", "mean ms", "nodes", widths=[10, 12, 10]))
    for fraction, (ms, nodes) in rows.items():
        print(fmt_row(f"{fraction:.0%}", f"{ms:.3f}", nodes, widths=[10, 12, 10]))
    times = [ms for ms, _nodes in rows.values()]
    assert max(times) < max(min(times), 0.2) * 20
