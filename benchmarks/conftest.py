"""Benchmark-harness options.

``--workers N`` (or ``REPRO_BENCH_WORKERS=N``) adds sharded-engine
measurements to the throughput benchmarks: packets are routed across N
switch-replica worker processes instead of one in-process switch.
"""

import pytest

from _common import WORKERS


def pytest_addoption(parser):
    parser.addoption(
        "--workers",
        action="store",
        type=int,
        default=None,
        help="measure throughput through a sharded engine with N worker "
        "processes (default: REPRO_BENCH_WORKERS env, else off)",
    )


@pytest.fixture
def engine_workers(request):
    option = request.config.getoption("--workers", default=None)
    return WORKERS if option is None else option
