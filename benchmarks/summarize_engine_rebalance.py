"""One-line elastic-rebalance summary for the CI job summary.

Usage::

    python benchmarks/summarize_engine_rebalance.py [results.json]

Reads the ``engine.pinned_owner_rebalanced`` section of
``BENCH_simulator.json`` and prints the before/after shard skew of the
load-aware rebalancer in GitHub-flavored markdown — CI appends it to
``$GITHUB_STEP_SUMMARY`` so the rebalancing outcome is visible on the
workflow page without opening the benchmark artifact.  Exits 0 even
when the section is missing (the scaling bench may not have run); the
perf gate, not this summary, is the enforcement point.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_RESULTS = REPO_ROOT / "BENCH_simulator.json"


def main(argv: list[str]) -> int:
    results_path = Path(argv[1]) if len(argv) > 1 else DEFAULT_RESULTS
    try:
        results = json.loads(results_path.read_text())
    except (OSError, ValueError) as exc:
        print(f"engine-rebalance summary: cannot read {results_path}: {exc}")
        return 0
    engine = results.get("engine", {})
    rebalanced = engine.get("pinned_owner_rebalanced")
    if not rebalanced:
        print(
            "engine-rebalance summary: no `engine.pinned_owner_rebalanced` "
            "section in results"
        )
        return 0
    before = rebalanced.get("before_shard_counts", [])
    after = rebalanced.get("after_shard_counts", [])
    print(
        "**Elastic rebalance** — pinned-owner skew "
        f"{rebalanced.get('skew_before', 0):.0%} -> "
        f"{rebalanced.get('max_share_after', 0):.0%} hottest-shard share "
        f"(shards {before} -> {after}, "
        f"{rebalanced.get('migrations', 0)} migration(s), "
        f"ring reweighted: {rebalanced.get('reweighted', False)}) at "
        f"{rebalanced.get('pps', 0):,.0f} pps capacity; ring remap 4->5 "
        f"moved {engine.get('ring_remap_4_to_5', 0):.1%} of flows"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
