"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the corresponding rows/series next to the paper's numbers.  Two
scales are supported:

* ``quick`` (default): reduced epoch counts, minutes of total runtime —
  enough to reproduce every *shape* the paper reports;
* ``full``: the paper's epoch counts (500 arrivals, capacity-to-failure
  sweeps).  Select with ``REPRO_BENCH_SCALE=full``.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")

#: worker-process count for the sharded-engine benchmarks (the
#: ``--workers`` pytest option overrides this env default)
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "0"))

#: the canonical machine-readable performance record at the repo root
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"


def scaled(quick: int, full: int) -> int:
    return full if SCALE == "full" else quick


def write_results(section: str, payload: dict) -> None:
    """Merge one section into ``BENCH_simulator.json``.

    Every benchmark that records numbers goes through this helper so a
    partial rerun (say, just the engine scaling bench) updates its own
    section without clobbering the others.
    """
    record = {}
    if RESULTS_PATH.exists():
        try:
            record = json.loads(RESULTS_PATH.read_text())
        except (ValueError, OSError):
            record = {}
    record[section] = payload
    record["meta"] = {
        "scale": SCALE,
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    RESULTS_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


def banner(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print(f"(scale: {SCALE}; set REPRO_BENCH_SCALE=full for paper-scale runs)")
    print("=" * 78)


def fmt_row(*cells, widths=None) -> str:
    widths = widths or [16] * len(cells)
    return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
