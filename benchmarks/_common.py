"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the corresponding rows/series next to the paper's numbers.  Two
scales are supported:

* ``quick`` (default): reduced epoch counts, minutes of total runtime —
  enough to reproduce every *shape* the paper reports;
* ``full``: the paper's epoch counts (500 arrivals, capacity-to-failure
  sweeps).  Select with ``REPRO_BENCH_SCALE=full``.
"""

from __future__ import annotations

import os

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")


def scaled(quick: int, full: int) -> int:
    return full if SCALE == "full" else quick


def banner(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print(f"(scale: {SCALE}; set REPRO_BENCH_SCALE=full for paper-scale runs)")
    print("=" * 78)


def fmt_row(*cells, widths=None) -> str:
    widths = widths or [16] * len(cells)
    return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
