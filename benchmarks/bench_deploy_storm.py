"""Deploy storm: the NDJSON thread-storm vs the binary batch fast path.

Two back-to-back passes over the same 15-program catalog:

* **ndjson** — N tenants concurrently deploying over the line protocol,
  one RPC per deploy (the baseline path).  Stresses the pipelined deploy
  path end to end through the TCP service: every tenant walks the full
  catalog (deploy, then revoke, so occupancy keeps churning), all
  tenants at once.  With the pipelined install enabled, tenant A's entry
  installation overlaps tenant B's solve; the relocatable allocation
  cache and warm-started solver serve the repeat shapes.
* **binary** — one connection speaking the length-prefixed binary codec,
  shipping the catalog as ``deploy_many`` batches: N deploys per frame,
  one admission ticket, one audit record, one response.  The measured
  wall covers the deploy phase only (the revoke churn between passes is
  untimed — it resets occupancy, it is not the operation under test),
  and the per-deploy latency is the amortized batch wall, which is what
  a batching caller actually experiences per operation.

The ``speedup`` in the results is binary batch throughput over the
NDJSON storm baseline — the win of framing + batching + amortized
round-trips, the deploy-path fast number the runtime-programmability
story rests on.  Cache counters from the ``metrics`` RPC prove both
passes exercised the warm path rather than cold solves.

Scale: quick = 4 tenants x 1 pass (NDJSON), 4 timed batches (binary);
full = 8 x 2 and 8 batches.  Binary batches carry 60 deploys per frame.
"""

import statistics
import threading
import time

from _common import banner, fmt_row, once, scaled, write_results

from repro.controlplane import Controller
from repro.programs import ALL_PROGRAM_NAMES, PROGRAMS
from repro.service import (
    ControlService,
    ServerThread,
    ServiceClient,
    TenantQuota,
    TenantRegistry,
)

MIX = tuple(ALL_PROGRAM_NAMES)
#: deploys per binary batch frame: two walks over the catalog.  30 ops is
#: the sweet spot — per-op control-plane cost grows with co-resident
#: programs (overlap detection, placement), so doubling the frame again
#: costs more in occupancy than it saves in round trips.
BATCH_PASSES_PER_FRAME = 2


def storm(port, tenant_index, passes, latencies, errors):
    """One tenant: deploy/revoke every program in the mix, offset by the
    tenant index so concurrent tenants hit different shapes at any
    instant (worst case for the caches, best case for install overlap)."""
    with ServiceClient(port=port, tenant=f"tenant{tenant_index}") as client:
        for round_index in range(passes * len(MIX)):
            name = MIX[(tenant_index + round_index) % len(MIX)]
            t0 = time.perf_counter()
            try:
                info = client.deploy(PROGRAMS[name].source)
            except Exception as exc:  # noqa: BLE001 - tally, don't crash the bench
                errors.append(f"{name}: {exc}")
                continue
            latencies.append((time.perf_counter() - t0) * 1e3)
            client.revoke(info["program_id"])


def run_storm(num_tenants, passes):
    """The NDJSON baseline: threaded per-deploy RPCs."""
    service = ControlService(
        Controller(),
        tenants=TenantRegistry(TenantQuota.unlimited()),
    )
    latencies: list[float] = []
    errors: list[str] = []
    with ServerThread(service) as server:
        threads = [
            threading.Thread(
                target=storm, args=(server.port, i, passes, latencies, errors)
            )
            for i in range(num_tenants)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        with ServiceClient(port=server.port, tenant="tenant0") as client:
            caches = client.metrics()["caches"]
    return {
        "elapsed_s": elapsed,
        "deploys": len(latencies),
        "deploys_per_s": len(latencies) / elapsed,
        "latencies_ms": latencies,
        "errors": errors,
        "caches": caches,
    }


def run_binary_batches(num_batches):
    """The binary fast path: ``deploy_many`` frames over the binary codec.

    Timed wall covers the deploy batches only; the revoke churn between
    batches (also batched, via the generic ``batch`` RPC) is untimed —
    it restores occupancy for the next round.  A full warm-up round runs
    first so the measured batches hit the same warm caches the NDJSON
    storm converges to.
    """
    service = ControlService(
        Controller(),
        tenants=TenantRegistry(TenantQuota.unlimited()),
    )
    sources = [
        PROGRAMS[MIX[i % len(MIX)]].source
        for i in range(len(MIX) * BATCH_PASSES_PER_FRAME)
    ]
    batch_walls: list[float] = []
    errors: list[str] = []
    with ServerThread(service) as server:
        with ServiceClient(port=server.port, codec="binary") as client:
            def deploy_and_revoke(timed):
                t0 = time.perf_counter()
                report = client.deploy_many(sources)
                wall = time.perf_counter() - t0
                if not report["committed"]:
                    errors.append(str(report.get("error")))
                    return
                if timed:
                    batch_walls.append(wall)
                client.batch(
                    [
                        {
                            "method": "revoke",
                            "params": {"program_id": sub["program_id"]},
                        }
                        for sub in reversed(report["results"])
                    ]
                )

            # Two warm-up rounds: the first makes the caches resident, the
            # second settles the allocator/solver onto the repeat shapes
            # (the same steady state the NDJSON storm converges to).
            deploy_and_revoke(timed=False)
            deploy_and_revoke(timed=False)
            for _ in range(num_batches):
                deploy_and_revoke(timed=True)
            caches = client.metrics()["caches"]
    ops = len(sources) * len(batch_walls)
    total_wall = sum(batch_walls)
    amortized_ms = [wall / len(sources) * 1e3 for wall in batch_walls]
    return {
        "deploys": ops,
        "batch_size": len(sources),
        "batches": len(batch_walls),
        "deploys_per_s": ops / total_wall if total_wall else 0.0,
        "amortized_ms": amortized_ms,
        "errors": errors,
        "caches": caches,
    }


def quantile(values, q):
    ordered = sorted(values)
    return ordered[min(int(q * len(ordered)), len(ordered) - 1)]


def test_deploy_storm(benchmark):
    num_tenants = scaled(4, 8)
    passes = scaled(1, 2)
    num_batches = scaled(4, 8)

    def run_both():
        return run_storm(num_tenants, passes), run_binary_batches(num_batches)

    report, binary = once(benchmark, run_both)
    lat = report["latencies_ms"]
    banner(
        f"Deploy storm: {num_tenants} concurrent tenants x "
        f"{passes} pass(es) over the {len(MIX)}-program catalog"
    )
    print(
        f"{report['deploys']} deploys in {report['elapsed_s']:.2f} s "
        f"-> {report['deploys_per_s']:,.1f} deploys/s aggregate (NDJSON)"
    )
    print(
        fmt_row(
            "deploy latency",
            f"mean {statistics.mean(lat):.2f} ms",
            f"p50 {quantile(lat, 0.50):.2f}",
            f"p99 {quantile(lat, 0.99):.2f}",
            f"max {max(lat):.2f}",
            widths=[16, 16, 12, 12, 12],
        )
    )
    cache = report["caches"]["deploy_cache"]
    print(
        fmt_row(
            "deploy cache",
            f"frontend {cache['frontend_hits']}h/{cache['frontend_misses']}m",
            f"shapes {cache['shape_hits']}h/{cache['shape_misses']}m",
            f"rebinds {cache['rebinds']} (+{cache['rebind_fallbacks']} fell back)",
            widths=[16, 20, 18, 30],
        )
    )
    speedup = (
        binary["deploys_per_s"] / report["deploys_per_s"]
        if report["deploys_per_s"]
        else 0.0
    )
    amortized = binary["amortized_ms"]
    print(
        f"{binary['deploys']} deploys in {binary['batches']} binary "
        f"deploy_many frames of {binary['batch_size']} "
        f"-> {binary['deploys_per_s']:,.1f} deploys/s "
        f"({speedup:.1f}x the NDJSON storm)"
    )
    print(
        fmt_row(
            "amortized/deploy",
            f"mean {statistics.mean(amortized):.3f} ms",
            f"p50 {quantile(amortized, 0.50):.3f}",
            f"max {max(amortized):.3f}",
            widths=[16, 18, 14, 14],
        )
    )
    if report["errors"] or binary["errors"]:
        print(
            f"NOTE: failures — ndjson {report['errors'][:3]} "
            f"binary {binary['errors'][:3]}"
        )
    write_results(
        "deploy_storm",
        {
            "tenants": num_tenants,
            "ndjson": {
                "deploys": report["deploys"],
                "deploys_per_s": round(report["deploys_per_s"], 1),
                "p50_ms": round(quantile(lat, 0.50), 3),
                "p99_ms": round(quantile(lat, 0.99), 3),
                "errors": len(report["errors"]),
                "deploy_cache": {
                    key: cache[key]
                    for key in (
                        "frontend_hits",
                        "shape_hits",
                        "rebinds",
                        "rebind_fallbacks",
                    )
                },
            },
            "binary": {
                "deploys": binary["deploys"],
                "batch_size": binary["batch_size"],
                "batches": binary["batches"],
                "deploys_per_s": round(binary["deploys_per_s"], 1),
                "p50_ms": round(quantile(amortized, 0.50), 4),
                "errors": len(binary["errors"]),
            },
            "speedup": round(speedup, 2),
        },
    )
    # Every deploy must succeed and both passes must actually hit the
    # cache: after the first walk over the catalog every shape is resident.
    assert not report["errors"] and not binary["errors"]
    assert report["deploys"] == num_tenants * passes * len(MIX)
    assert cache["shape_hits"] > 0 and cache["frontend_hits"] > 0
    assert binary["caches"]["deploy_cache"]["shape_hits"] > 0
