"""Deploy storm: N tenants concurrently deploying the 15-program mix.

Stresses the pipelined deploy path end to end through the TCP service:
every tenant walks the full program catalog (deploy, then revoke, so
occupancy keeps churning), all tenants at once.  With the pipelined
install enabled, tenant A's entry installation overlaps tenant B's
solve, so the aggregate rate should exceed what serialized deploys
would allow; the relocatable allocation cache and warm-started solver
serve the repeat shapes.

Reports aggregate deploys/s, client-observed deploy latency quantiles,
and the server's cache counters (deploy cache + process-wide solver
caches) from the ``metrics`` RPC — the counters prove the storm
actually exercised the fast path rather than falling back to cold
solves.

Scale: quick = 4 tenants x 1 pass over the catalog; full = 8 x 2.
"""

import statistics
import threading
import time

from _common import banner, fmt_row, once, scaled, write_results

from repro.controlplane import Controller
from repro.programs import ALL_PROGRAM_NAMES, PROGRAMS
from repro.service import (
    ControlService,
    ServerThread,
    ServiceClient,
    TenantQuota,
    TenantRegistry,
)

MIX = tuple(ALL_PROGRAM_NAMES)


def storm(port, tenant_index, passes, latencies, errors):
    """One tenant: deploy/revoke every program in the mix, offset by the
    tenant index so concurrent tenants hit different shapes at any
    instant (worst case for the caches, best case for install overlap)."""
    with ServiceClient(port=port, tenant=f"tenant{tenant_index}") as client:
        for round_index in range(passes * len(MIX)):
            name = MIX[(tenant_index + round_index) % len(MIX)]
            t0 = time.perf_counter()
            try:
                info = client.deploy(PROGRAMS[name].source)
            except Exception as exc:  # noqa: BLE001 - tally, don't crash the bench
                errors.append(f"{name}: {exc}")
                continue
            latencies.append((time.perf_counter() - t0) * 1e3)
            client.revoke(info["program_id"])


def run_storm(num_tenants, passes):
    service = ControlService(
        Controller(),
        tenants=TenantRegistry(TenantQuota.unlimited()),
    )
    latencies: list[float] = []
    errors: list[str] = []
    with ServerThread(service) as server:
        threads = [
            threading.Thread(
                target=storm, args=(server.port, i, passes, latencies, errors)
            )
            for i in range(num_tenants)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        with ServiceClient(port=server.port, tenant="tenant0") as client:
            caches = client.metrics()["caches"]
    return {
        "elapsed_s": elapsed,
        "deploys": len(latencies),
        "deploys_per_s": len(latencies) / elapsed,
        "latencies_ms": latencies,
        "errors": errors,
        "caches": caches,
    }


def quantile(values, q):
    ordered = sorted(values)
    return ordered[min(int(q * len(ordered)), len(ordered) - 1)]


def test_deploy_storm(benchmark):
    num_tenants = scaled(4, 8)
    passes = scaled(1, 2)
    report = once(benchmark, lambda: run_storm(num_tenants, passes))
    lat = report["latencies_ms"]
    banner(
        f"Deploy storm: {num_tenants} concurrent tenants x "
        f"{passes} pass(es) over the {len(MIX)}-program catalog"
    )
    print(
        f"{report['deploys']} deploys in {report['elapsed_s']:.2f} s "
        f"-> {report['deploys_per_s']:,.1f} deploys/s aggregate"
    )
    print(
        fmt_row(
            "deploy latency",
            f"mean {statistics.mean(lat):.2f} ms",
            f"p50 {quantile(lat, 0.50):.2f}",
            f"p99 {quantile(lat, 0.99):.2f}",
            f"max {max(lat):.2f}",
            widths=[16, 16, 12, 12, 12],
        )
    )
    cache = report["caches"]["deploy_cache"]
    print(
        fmt_row(
            "deploy cache",
            f"frontend {cache['frontend_hits']}h/{cache['frontend_misses']}m",
            f"shapes {cache['shape_hits']}h/{cache['shape_misses']}m",
            f"rebinds {cache['rebinds']} (+{cache['rebind_fallbacks']} fell back)",
            widths=[16, 20, 18, 30],
        )
    )
    if report["errors"]:
        print(f"NOTE: {len(report['errors'])} deploys failed: {report['errors'][:3]}")
    write_results(
        "deploy_storm",
        {
            "tenants": num_tenants,
            "deploys": report["deploys"],
            "deploys_per_s": round(report["deploys_per_s"], 1),
            "p50_ms": round(quantile(lat, 0.50), 3),
            "p99_ms": round(quantile(lat, 0.99), 3),
            "errors": len(report["errors"]),
            "deploy_cache": {
                key: cache[key]
                for key in (
                    "frontend_hits",
                    "shape_hits",
                    "rebinds",
                    "rebind_fallbacks",
                )
            },
        },
    )
    # Every deploy must succeed and the storm must actually hit the cache:
    # after the first pass over the catalog every shape is resident.
    assert not report["errors"]
    assert report["deploys"] == num_tenants * passes * len(MIX)
    assert cache["shape_hits"] > 0 and cache["frontend_hits"] > 0
