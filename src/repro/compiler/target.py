"""Compilation target description and the resource view the allocator uses.

The allocator never touches the simulator directly: it sees the target's
static shape (:class:`TargetSpec`) and a :class:`ResourceView` protocol
giving current free table entries and memory per physical RPB.  The control
plane's resource manager implements the protocol; tests can substitute
simple fakes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol


@dataclass(frozen=True)
class TargetSpec:
    """Static shape of the P4runpro data plane (paper §5 defaults)."""

    num_ingress_rpbs: int = 10  # N
    num_egress_rpbs: int = 12
    max_recirculations: int = 1  # R
    rpb_table_size: int = 2048
    rpb_memory_size: int = 65536  # 32-bit buckets per RPB
    hash_output_width: int = 16
    register_width: int = 32

    @property
    def num_rpbs(self) -> int:
        """M: total physical RPBs."""
        return self.num_ingress_rpbs + self.num_egress_rpbs

    @property
    def num_logic_rpbs(self) -> int:
        """M * (R + 1): the allocator's variable domain size."""
        return self.num_rpbs * (self.max_recirculations + 1)

    def physical_rpb(self, logic_rpb: int) -> int:
        """Map a 1-based logic RPB number to its 1-based physical RPB."""
        if not 1 <= logic_rpb <= self.num_logic_rpbs:
            raise ValueError(f"logic RPB {logic_rpb} out of range")
        return (logic_rpb - 1) % self.num_rpbs + 1

    def iteration(self, logic_rpb: int) -> int:
        """Recirculation iteration (0-based) a logic RPB belongs to."""
        if not 1 <= logic_rpb <= self.num_logic_rpbs:
            raise ValueError(f"logic RPB {logic_rpb} out of range")
        return (logic_rpb - 1) // self.num_rpbs

    def is_ingress(self, logic_rpb: int) -> bool:
        """True if the logic RPB maps to an ingress physical RPB."""
        return self.physical_rpb(logic_rpb) <= self.num_ingress_rpbs

    @property
    def uses_recirculation(self) -> bool:
        """Later iterations are recirculation passes (needing recirculation
        -block entries), as opposed to hops of a physical switch chain."""
        return True

    @property
    def memory_revisit_supported(self) -> bool:
        """Whether the same virtual memory can be accessed again at a later
        iteration (true for recirculation — same chip, same array; false
        for a switch chain — each hop has its own arrays)."""
        return True


@dataclass(frozen=True)
class ChainSpec(TargetSpec):
    """A chain of P4runpro switches on one path (paper §4.1.3 / §5).

    Each hop drops the recirculation block, freeing one more ingress RPB
    (11 ingress + 12 egress per switch by default).  Logic RPBs number the
    chain end to end; ``iteration`` is the hop index.  Constraint (4)
    relaxes — forwarding primitives may run in *any* hop's ingress — which
    the base implementation already expresses via :meth:`is_ingress`.
    Constraint (5) tightens: a later hop's register arrays are different
    silicon, so programs that revisit a virtual memory are rejected.
    """

    num_switches: int = 2
    num_ingress_rpbs: int = 11
    num_egress_rpbs: int = 12
    max_recirculations: int = 0  # unused; hops come from num_switches

    @property
    def rpbs_per_switch(self) -> int:
        return self.num_ingress_rpbs + self.num_egress_rpbs

    @property
    def num_rpbs(self) -> int:
        """Global physical RPB count across the whole chain."""
        return self.rpbs_per_switch * self.num_switches

    @property
    def num_logic_rpbs(self) -> int:
        return self.num_rpbs

    def physical_rpb(self, logic_rpb: int) -> int:
        if not 1 <= logic_rpb <= self.num_logic_rpbs:
            raise ValueError(f"logic RPB {logic_rpb} out of range")
        return logic_rpb  # every logic RPB is its own hardware in a chain

    def iteration(self, logic_rpb: int) -> int:
        """Hop index (0-based) along the chain."""
        if not 1 <= logic_rpb <= self.num_logic_rpbs:
            raise ValueError(f"logic RPB {logic_rpb} out of range")
        return (logic_rpb - 1) // self.rpbs_per_switch

    def is_ingress(self, logic_rpb: int) -> bool:
        within = (logic_rpb - 1) % self.rpbs_per_switch + 1
        return within <= self.num_ingress_rpbs

    def local_rpb(self, phys_rpb: int) -> tuple[int, int]:
        """(hop index, per-switch RPB number) of a global physical RPB."""
        return (phys_rpb - 1) // self.rpbs_per_switch, (
            phys_rpb - 1
        ) % self.rpbs_per_switch + 1

    @property
    def uses_recirculation(self) -> bool:
        return False

    @property
    def memory_revisit_supported(self) -> bool:
        return False


class ResourceView(Protocol):
    """Current free resources per physical RPB (1-based indices)."""

    def free_entries(self, phys_rpb: int) -> int:
        """Free table entries in the RPB's match-action table."""
        ...

    def can_allocate_memory(self, phys_rpb: int, sizes: list[int]) -> bool:
        """Whether contiguous blocks of the given sizes all fit in the RPB."""
        ...


class UnlimitedResources:
    """A resource view with everything free — for unit tests and dry runs."""

    def __init__(self, spec: TargetSpec | None = None):
        self._spec = spec or TargetSpec()

    def free_entries(self, phys_rpb: int) -> int:
        return self._spec.rpb_table_size

    def can_allocate_memory(self, phys_rpb: int, sizes: list[int]) -> bool:
        return sum(sizes) <= self._spec.rpb_memory_size
