"""The P4runpro compiler driver (paper §4.3, Fig. 5).

Pipeline: parse → syntax/semantic check → primitive translation →
allocation (SMT-style branch and bound) → table-entry generation.  The
driver measures each phase separately because the paper reports parsing
delay (~2 ms, negligible), allocation delay (Fig. 7/12) and update delay
(Table 1) as distinct quantities.

The compiler is stateless with respect to the switch: it reads resource
availability through a :class:`~repro.compiler.target.ResourceView` and
returns a :class:`CompiledProgram`; actually reserving resources and
pushing entries is the control plane's job.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..lang.ast import MemoryDecl, ProgramDecl, SourceUnit
from ..lang.errors import P4runproError
from ..lang.parser import parse_source
from ..lang.semantics import check_unit
from .allocation import AllocationProblem, build_problem
from .entries import EntryBatch, EntryGenerator
from .ir import ProgramIR
from .objectives import Objective, f1
from .solver import AllocationResult, AllocationSolver
from .target import ResourceView, TargetSpec, UnlimitedResources
from .translate import TranslationResult, translate


@dataclass
class CompileOptions:
    """Per-deployment knobs."""

    objective: Objective | None = None
    #: grow the designated BRANCH to this many case blocks before compiling
    elastic_cases: int | None = None
    elastic_branch: int = 0
    max_solver_nodes: int = 500_000
    #: SwitchVM-style direct mapping (paper §7): serve memory requests from
    #: power-of-two *fragments* of free memory instead of one contiguous
    #: run, at the cost of one address-translation entry per fragment
    direct_memory: bool = False


@dataclass
class CompiledProgram:
    """Everything the control plane needs to install one program."""

    unit: SourceUnit
    program: ProgramDecl
    translation: TranslationResult
    problem: AllocationProblem
    allocation: AllocationResult
    parse_time_s: float
    translate_time_s: float
    allocate_time_s: float
    direct_memory: bool = False

    @property
    def name(self) -> str:
        return self.program.name

    @property
    def ir(self) -> ProgramIR:
        return self.translation.ir

    def memory_requests(self) -> dict[str, tuple[int, int]]:
        """mid -> (physical RPB, size in buckets)."""
        return {
            mid: (self.allocation.memory_placement[mid], self.problem.memory_sizes[mid])
            for mid in self.problem.memory_sizes
        }

    def memory_decls(self) -> dict[str, MemoryDecl]:
        return {
            mid: decl
            for mid in self.problem.memory_sizes
            if (decl := self.unit.memory(mid)) is not None
        }

    def register_semantics(self):
        """Shard-parallel register semantics (cached), for the engine's
        placement decision — see :mod:`repro.compiler.register_semantics`."""
        cached = getattr(self, "_register_semantics", None)
        if cached is None:
            from .register_semantics import classify

            cached = classify(self.ir)
            self._register_semantics = cached
        return cached

    def emit_entries(
        self,
        spec: TargetSpec,
        program_id: int,
        memory_bases: dict[str, tuple[int, int]],
    ) -> EntryBatch:
        generator = EntryGenerator(spec)
        return generator.generate(
            self.ir,
            self.program.filters,
            self.allocation,
            program_id,
            memory_bases,
            self.memory_decls(),
        )


class _DirectMemoryView:
    """Resource-view wrapper: memory feasibility judged against fragmented
    (direct-mapped) allocation when the underlying view supports it."""

    def __init__(self, inner: ResourceView):
        self._inner = inner

    @property
    def generation(self):
        # Feasibility answers differ from the inner view's (fragmented vs
        # contiguous), but they change exactly when the inner view does.
        return getattr(self._inner, "generation", None)

    def free_entries(self, phys_rpb: int) -> int:
        return self._inner.free_entries(phys_rpb)

    def can_allocate_memory(self, phys_rpb: int, sizes: list[int]) -> bool:
        direct = getattr(self._inner, "can_allocate_memory_direct", None)
        if direct is not None:
            return direct(phys_rpb, sizes)
        return self._inner.can_allocate_memory(phys_rpb, sizes)


def parse_and_check(source: str) -> SourceUnit:
    """Front half of the compiler: source text to a checked AST."""
    unit = parse_source(source)
    check_unit(unit)
    return unit


def compile_program(
    unit: SourceUnit,
    program: ProgramDecl,
    *,
    spec: TargetSpec | None = None,
    view: ResourceView | None = None,
    options: CompileOptions | None = None,
) -> CompiledProgram:
    """Translate and allocate one checked program against a resource view."""
    spec = spec or TargetSpec()
    view = view if view is not None else UnlimitedResources(spec)
    options = options or CompileOptions()
    objective = options.objective or f1()
    if options.direct_memory:
        view = _DirectMemoryView(view)

    t0 = time.perf_counter()
    translation = translate(
        program,
        elastic_branch=options.elastic_branch,
        elastic_cases=options.elastic_cases,
    )
    problem = build_problem(unit, translation)
    t1 = time.perf_counter()
    solver = AllocationSolver(spec, view, max_nodes=options.max_solver_nodes)
    allocation = solver.solve(problem, objective)
    t2 = time.perf_counter()

    return CompiledProgram(
        unit=unit,
        program=program,
        translation=translation,
        problem=problem,
        allocation=allocation,
        parse_time_s=0.0,
        translate_time_s=t1 - t0,
        allocate_time_s=t2 - t1,
        direct_memory=options.direct_memory,
    )


def compile_source(
    source: str,
    *,
    program_name: str | None = None,
    spec: TargetSpec | None = None,
    view: ResourceView | None = None,
    options: CompileOptions | None = None,
) -> CompiledProgram:
    """Compile one program from source text (convenience wrapper)."""
    t0 = time.perf_counter()
    unit = parse_and_check(source)
    parse_time = time.perf_counter() - t0
    if program_name is None:
        if len(unit.programs) != 1:
            raise P4runproError(
                "source declares multiple programs; pass program_name to pick one"
            )
        program = unit.programs[0]
    else:
        matches = [p for p in unit.programs if p.name == program_name]
        if not matches:
            raise P4runproError(f"source has no program named {program_name!r}")
        program = matches[0]
    compiled = compile_program(unit, program, spec=spec, view=view, options=options)
    compiled.parse_time_s = parse_time
    return compiled
