"""The P4runpro compiler driver (paper §4.3, Fig. 5).

Pipeline: parse → syntax/semantic check → primitive translation →
allocation (SMT-style branch and bound) → table-entry generation.  The
driver measures each phase separately because the paper reports parsing
delay (~2 ms, negligible), allocation delay (Fig. 7/12) and update delay
(Table 1) as distinct quantities.

The compiler is stateless with respect to the switch: it reads resource
availability through a :class:`~repro.compiler.target.ResourceView` and
returns a :class:`CompiledProgram`; actually reserving resources and
pushing entries is the control plane's job.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass

from ..lang.ast import MemoryDecl, ProgramDecl, SourceUnit
from ..lang.errors import P4runproError
from ..lang.parser import parse_source
from ..lang.semantics import check_unit
from .allocation import AllocationProblem, build_problem
from .entries import EntryBatch, EntryGenerator
from .ir import ProgramIR
from .objectives import Objective, f1
from .solver import AllocationResult, AllocationSolver
from .target import ResourceView, TargetSpec, UnlimitedResources
from .translate import TranslationResult, translate


@dataclass
class CompileOptions:
    """Per-deployment knobs."""

    objective: Objective | None = None
    #: grow the designated BRANCH to this many case blocks before compiling
    elastic_cases: int | None = None
    elastic_branch: int = 0
    max_solver_nodes: int = 500_000
    #: SwitchVM-style direct mapping (paper §7): serve memory requests from
    #: power-of-two *fragments* of free memory instead of one contiguous
    #: run, at the cost of one address-translation entry per fragment
    direct_memory: bool = False


@dataclass
class CompiledProgram:
    """Everything the control plane needs to install one program."""

    unit: SourceUnit
    program: ProgramDecl
    translation: TranslationResult
    problem: AllocationProblem
    allocation: AllocationResult
    parse_time_s: float
    translate_time_s: float
    allocate_time_s: float
    direct_memory: bool = False

    @property
    def name(self) -> str:
        return self.program.name

    @property
    def ir(self) -> ProgramIR:
        return self.translation.ir

    def memory_requests(self) -> dict[str, tuple[int, int]]:
        """mid -> (physical RPB, size in buckets)."""
        return {
            mid: (self.allocation.memory_placement[mid], self.problem.memory_sizes[mid])
            for mid in self.problem.memory_sizes
        }

    def memory_decls(self) -> dict[str, MemoryDecl]:
        return {
            mid: decl
            for mid in self.problem.memory_sizes
            if (decl := self.unit.memory(mid)) is not None
        }

    def register_semantics(self):
        """Shard-parallel register semantics (cached), for the engine's
        placement decision — see :mod:`repro.compiler.register_semantics`."""
        cached = getattr(self, "_register_semantics", None)
        if cached is None:
            from .register_semantics import classify

            cached = classify(self.ir)
            self._register_semantics = cached
        return cached

    def emit_entries(
        self,
        spec: TargetSpec,
        program_id: int,
        memory_bases: dict[str, tuple[int, int]],
    ) -> EntryBatch:
        """Emit the program's entry batch for a concrete (id, bases) pair.

        Emission for one (translation, allocation-vector) pair differs
        between deployments only in the program id and the memory base
        addresses, so the canonical batch (id 0, zero bases) is cached on
        the translation — which the deploy cache's front end shares across
        deployments — and relocated per call.  Fragmented (direct-mapped)
        layouts change entry *structure* and fall back to full emission.
        """
        from .entries import relocate_batch

        templates = getattr(self.translation, "_entry_templates", None)
        if templates is None:
            templates = {}
            self.translation._entry_templates = templates
        key = (spec, tuple(self.allocation.x), self.allocation.max_iteration)
        template = templates.get(key)
        if isinstance(template, EntryBatch):
            batch = relocate_batch(template, program_id, memory_bases)
            if batch is not None:
                return batch
        generator = EntryGenerator(spec)
        # Build the canonical template only on the *second* emission of a
        # key: a one-shot deployment (or a cold run with the front-end
        # cache off, where every deploy gets a fresh translation) never
        # pays the extra emission.
        if template is None:
            if len(templates) >= 8:
                templates.clear()
            templates[key] = "seen"
        elif template == "seen" and all(
            not isinstance(layout, int) and len(layout) == 1 and layout[0][0] == 0
            for _phys, layout in memory_bases.values()
        ):
            canonical = generator.generate(
                self.ir,
                self.program.filters,
                self.allocation,
                0,
                {
                    mid: (phys, [(0, 0, layout[0][2])])
                    for mid, (phys, layout) in memory_bases.items()
                },
                self.memory_decls(),
            )
            templates[key] = canonical
            batch = relocate_batch(canonical, program_id, memory_bases)
            if batch is not None:
                return batch
        return generator.generate(
            self.ir,
            self.program.filters,
            self.allocation,
            program_id,
            memory_bases,
            self.memory_decls(),
        )


class _DirectMemoryView:
    """Resource-view wrapper: memory feasibility judged against fragmented
    (direct-mapped) allocation when the underlying view supports it."""

    def __init__(self, inner: ResourceView):
        self._inner = inner

    @property
    def generation(self):
        # Feasibility answers differ from the inner view's (fragmented vs
        # contiguous), but they change exactly when the inner view does.
        return getattr(self._inner, "generation", None)

    def free_entries(self, phys_rpb: int) -> int:
        return self._inner.free_entries(phys_rpb)

    def can_allocate_memory(self, phys_rpb: int, sizes: list[int]) -> bool:
        direct = getattr(self._inner, "can_allocate_memory_direct", None)
        if direct is not None:
            return direct(phys_rpb, sizes)
        return self._inner.can_allocate_memory(phys_rpb, sizes)


def parse_and_check(source: str) -> SourceUnit:
    """Front half of the compiler: source text to a checked AST."""
    unit = parse_source(source)
    check_unit(unit)
    return unit


def allocate_program(
    problem: AllocationProblem,
    objective: Objective,
    *,
    spec: TargetSpec,
    view: ResourceView,
    max_nodes: int = 500_000,
    direct_memory: bool = False,
    deploy_cache=None,
) -> AllocationResult:
    """Solve one allocation problem, through the deploy cache when given.

    On a shape-cache hit the recorded solve trace is replayed against the
    current view (:meth:`AllocationSolver.rebind`); a successful replay
    returns an allocation provably identical to a fresh solve (marked
    ``rebound=True``) without enumerating.  A refused replay — occupancy
    changed in a way the trace cannot vouch for — falls back to a full
    solve, whose fresh trace then replaces the cached shape.
    """
    avail_fn = None if direct_memory else getattr(view, "availability_digest", None)
    if direct_memory:
        view = _DirectMemoryView(view)
    solver = AllocationSolver(spec, view, max_nodes=max_nodes)
    digest = None
    availability = None
    if deploy_cache is not None and deploy_cache.enabled:
        from .alloc_cache import shape_digest

        digest = shape_digest(problem, spec, objective, direct_memory)
        if avail_fn is not None:
            # Availability memo: churn often returns the free lists and
            # entry reservations to a previously seen state, in which case
            # the recorded solver answer is provably what a fresh solve
            # would produce — skip even the trace replay.
            availability = avail_fn()
            memoized = deploy_cache.lookup_rebind(digest, availability)
            if memoized is not None:
                return memoized
        shape = deploy_cache.lookup_shape(digest)
        if shape is not None:
            rebound = solver.rebind(problem, objective, shape.trace)
            if rebound is not None:
                deploy_cache.rebinds += 1
                if availability is not None:
                    deploy_cache.store_rebind(digest, availability, rebound)
                return rebound
            deploy_cache.rebind_fallbacks += 1
    trace: list | None = [] if digest is not None else None
    allocation = solver.solve(problem, objective, trace=trace)
    if (
        digest is not None
        and not allocation.capped
        and trace
        and trace[-1][2] == "win"
    ):
        from .alloc_cache import AllocationShape

        deploy_cache.store_shape(
            digest,
            AllocationShape(
                trace=tuple(trace),
                x=tuple(allocation.x),
                objective_value=allocation.objective_value,
            ),
        )
        if availability is not None:
            memo_result = dataclasses.replace(allocation, rebound=True)
            memo_result.finalize(spec)
            deploy_cache.store_rebind(digest, availability, memo_result)
    return allocation


def compile_program(
    unit: SourceUnit,
    program: ProgramDecl,
    *,
    spec: TargetSpec | None = None,
    view: ResourceView | None = None,
    options: CompileOptions | None = None,
    deploy_cache=None,
) -> CompiledProgram:
    """Translate and allocate one checked program against a resource view."""
    spec = spec or TargetSpec()
    view = view if view is not None else UnlimitedResources(spec)
    options = options or CompileOptions()
    objective = options.objective or f1()

    t0 = time.perf_counter()
    translation = translate(
        program,
        elastic_branch=options.elastic_branch,
        elastic_cases=options.elastic_cases,
    )
    problem = build_problem(unit, translation)
    t1 = time.perf_counter()
    allocation = allocate_program(
        problem,
        objective,
        spec=spec,
        view=view,
        max_nodes=options.max_solver_nodes,
        direct_memory=options.direct_memory,
        deploy_cache=deploy_cache,
    )
    t2 = time.perf_counter()

    return CompiledProgram(
        unit=unit,
        program=program,
        translation=translation,
        problem=problem,
        allocation=allocation,
        parse_time_s=0.0,
        translate_time_s=t1 - t0,
        allocate_time_s=t2 - t1,
        direct_memory=options.direct_memory,
    )


def compile_source(
    source: str,
    *,
    program_name: str | None = None,
    spec: TargetSpec | None = None,
    view: ResourceView | None = None,
    options: CompileOptions | None = None,
) -> CompiledProgram:
    """Compile one program from source text (convenience wrapper)."""
    t0 = time.perf_counter()
    unit = parse_and_check(source)
    parse_time = time.perf_counter() - t0
    if program_name is None:
        if len(unit.programs) != 1:
            raise P4runproError(
                "source declares multiple programs; pass program_name to pick one"
            )
        program = unit.programs[0]
    else:
        matches = [p for p in unit.programs if p.name == program_name]
        if not matches:
            raise P4runproError(f"source has no program named {program_name!r}")
        program = matches[0]
    compiled = compile_program(unit, program, spec=spec, view=view, options=options)
    compiled.parse_time_s = parse_time
    return compiled
