"""Register lifetime analysis (paper §4.2).

Pseudo-primitive expansion sometimes needs a *supportive register* — a
register not named in the pseudo primitive's arguments.  Its original value
must be preserved with a backup/restore pair unless the register is no
longer "live" at that point.  This module computes, for every op in the IR,
the set of registers live *after* it (live-out), by a backward dataflow
pass over the branch-path tree.

The control-flow join at a BRANCH is the union of all case paths' live-in
sets plus the live-in of the no-case-matched continuation.
"""

from __future__ import annotations

from ..lang.ast import ArgKind, REGISTERS
from .ir import Op, Path, ProgramIR

ALL_REGISTERS = frozenset(REGISTERS)


def reads_writes(op: Op) -> tuple[frozenset[str], frozenset[str]]:
    """(registers read, registers written) by one op."""
    name = op.name
    regs = tuple(str(a.value) for a in op.args if a.kind is ArgKind.REGISTER)
    if name == "EXTRACT":
        return frozenset(), frozenset({regs[0]})
    if name == "MODIFY":
        return frozenset({regs[0]}), frozenset()
    if name == "HASH_5_TUPLE":
        return frozenset(), frozenset({"har"})
    if name == "HASH":
        return frozenset({"har"}), frozenset({"har"})
    if name == "HASH_5_TUPLE_MEM":
        return frozenset(), frozenset({"mar"})
    if name == "HASH_MEM":
        return frozenset({"har"}), frozenset({"mar"})
    if name == "BRANCH":
        read = {cond.register for case in op.cases or [] for cond in case.conditions}
        return frozenset(read), frozenset()
    if name == "MEMREAD":
        return frozenset({"mar"}), frozenset({"sar"})
    if name == "MEMWRITE":
        return frozenset({"mar", "sar"}), frozenset()
    if name in ("MEMADD", "MEMSUB", "MEMAND", "MEMOR", "MEMMAX"):
        return frozenset({"mar", "sar"}), frozenset({"sar"})
    if name == "LOADI":
        return frozenset(), frozenset({regs[0]})
    if name in ("ADD", "AND", "OR", "MAX", "MIN", "XOR"):
        return frozenset({regs[0], regs[1]}), frozenset({regs[0]})
    if name in ("FORWARD", "DROP", "RETURN", "REPORT", "MULTICAST", "NOP"):
        return frozenset(), frozenset()
    if name == "OFFSET":
        return frozenset({"mar"}), frozenset()
    if name == "BACKUP":
        return frozenset({regs[0]}), frozenset()
    if name == "RESTORE":
        return frozenset(), frozenset({regs[0]})
    # Pseudo primitives (analysed pre-expansion): conservative exact sets.
    if name == "MOVE":
        return frozenset({regs[1]}), frozenset({regs[0]})
    if name == "NOT":
        return frozenset({regs[0]}), frozenset({regs[0]})
    if name in ("SUB", "EQUAL", "SGT", "SLT"):
        return frozenset({regs[0], regs[1]}), frozenset({regs[0]})
    if name in ("ADDI", "ANDI", "XORI", "SUBI"):
        return frozenset({regs[0]}), frozenset({regs[0]})
    raise ValueError(f"no read/write model for primitive {name!r}")


def compute_live_out(ir: ProgramIR) -> dict[int, frozenset[str]]:
    """Map ``id(op)`` -> set of registers live immediately after the op."""
    live_out: dict[int, frozenset[str]] = {}

    def walk(path: Path) -> frozenset[str]:
        """Process a path backwards; returns the path's live-in set.

        Once a path's last op has executed, no further ops run for packets
        in that branch context (later RPBs hold no entries for its branch
        ID), so every path's live-out starts empty.
        """
        live: frozenset[str] = frozenset()
        for op in reversed(path.ops):
            if op.cases is not None:
                # `live` currently holds the live-in of the continuation
                # (no case matched); join with every case body.
                joined = live
                for case in op.cases:
                    joined |= walk(case.path)
                live_out[id(op)] = joined
                reads, writes = reads_writes(op)
                live = reads | (joined - writes)
            else:
                live_out[id(op)] = live
                reads, writes = reads_writes(op)
                live = reads | (live - writes)
        return live

    walk(ir.root)
    return live_out
