"""Primitive translation: pseudo-primitive expansion, address-translation
offset insertion, and cross-branch memory alignment (paper §4.2/§4.3).

The phases run on the path-tree IR in this order:

1. **Elastic expansion** (optional, AST-level, in :func:`expand_elastic`):
   replicate the pattern case of a designated BRANCH to the requested
   number of case blocks, as an operator would when adding lookup keys.
2. **Pseudo expansion**: rewrite each pseudo primitive into real primitives
   (Fig. 14), choosing a supportive register and wrapping the expansion in
   BACKUP/RESTORE only when the register is live (register-lifetime
   optimization, §4.2).
3. **Offset insertion**: place the internal OFFSET op (virtual→physical
   address add + SALU-flag set) immediately before every memory primitive.
4. **Depth assignment + alignment**: number ops by execution dependency and
   insert NOPs so that memory primitives on the same virtual memory in
   *parallel* branches land at the same depth (the hardware cannot access
   one register array from two stages).

Erratum note: Fig. 14's SUB sequence computes ``A + ~B + m`` which is
``A - B - 2`` (mod 2^32); the correct two's-complement sequence needs a
final ``+1``, so our expansion is LOADI(C,m); XOR(B,C); ADD(A,B); XOR(B,C);
LOADI(C,1); ADD(A,C).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from ..lang.ast import (
    Arg,
    ArgKind,
    Branch,
    ProgramDecl,
    REGISTERS,
    imm,
    mem,
    reg,
)
from ..lang.errors import SemanticError
from ..lang.primitives import MEMORY_PRIMITIVES, PSEUDO_PRIMITIVES
from .ir import Op, Path, ProgramIR, assign_depths, build_ir
from .liveness import compute_live_out

REGISTER_MAX = 0xFFFFFFFF

#: Safety cap for the alignment fixpoint loop.
_MAX_ALIGN_ROUNDS = 100


class AlignmentError(SemanticError):
    """Memory alignment did not converge (pathological program)."""


# ---------------------------------------------------------------------------
# Elastic case expansion
# ---------------------------------------------------------------------------
def expand_elastic(program: ProgramDecl, branch_index: int, total_cases: int) -> ProgramDecl:
    """Return a copy of ``program`` whose ``branch_index``-th BRANCH
    (pre-order) is grown to ``total_cases`` case blocks.

    New cases replicate the pattern of the existing cases round-robin, with
    the ``sar`` condition value varied so entries stay distinct — modelling
    an operator adding lookup keys (more cache keys, more routes, ...).
    """
    program = copy.deepcopy(program)
    branches: list[Branch] = []

    def collect(body) -> None:
        for stmt in body:
            if isinstance(stmt, Branch):
                branches.append(stmt)
                for case in stmt.cases:
                    collect(case.body)

    collect(program.body)
    if branch_index >= len(branches):
        raise SemanticError(
            f"program {program.name!r} has no BRANCH #{branch_index} to make elastic"
        )
    branch = branches[branch_index]
    patterns = branch.cases
    serial = 0
    while len(branch.cases) < total_cases:
        pattern = patterns[len(branch.cases) % len(patterns)]
        serial += 1
        clone = copy.deepcopy(pattern)
        varied = False
        for cond in clone.conditions:
            if cond.register == "sar":
                cond.value = (cond.value + serial) & REGISTER_MAX
                varied = True
                break
        if not varied and clone.conditions:
            cond = clone.conditions[0]
            cond.value = (cond.value + serial) & REGISTER_MAX
        branch.cases.append(clone)
    if len(branch.cases) > total_cases:
        branch.cases = branch.cases[:total_cases]
        if not branch.cases:
            raise SemanticError("elastic expansion cannot remove all case blocks")
    return program


# ---------------------------------------------------------------------------
# Pseudo-primitive expansion
# ---------------------------------------------------------------------------
@dataclass
class ExpansionStats:
    """How much the pseudo expansion grew the program."""

    pseudo_ops: int = 0
    emitted_ops: int = 0
    backups_needed: int = 0
    backups_elided: int = 0


def _supportive_register(args: tuple[Arg, ...]) -> str:
    used = {str(a.value) for a in args if a.kind is ArgKind.REGISTER}
    for candidate in REGISTERS:
        if candidate not in used:
            return candidate
    raise SemanticError("no supportive register available")


def _expand_one(op: Op, support: str) -> tuple[list[tuple[str, tuple[Arg, ...]]], bool]:
    """Expand one pseudo op; returns (primitive list, uses_support)."""
    name = op.name
    regs = [str(a.value) for a in op.args if a.kind is ArgKind.REGISTER]
    imms = [int(a.value) for a in op.args if a.kind is ArgKind.IMMEDIATE]
    c = reg(support)
    if name == "MOVE":
        a, b = op.args
        return [("LOADI", (a, imm(0))), ("ADD", (a, b))], False
    if name == "EQUAL":
        return [("XOR", op.args)], False
    if name == "SGT":
        return [("MIN", op.args), ("XOR", op.args)], False
    if name == "SLT":
        return [("MAX", op.args), ("XOR", op.args)], False
    if name == "ADDI":
        a = reg(regs[0])
        return [("LOADI", (c, imm(imms[0]))), ("ADD", (a, c))], True
    if name == "ANDI":
        a = reg(regs[0])
        return [("LOADI", (c, imm(imms[0]))), ("AND", (a, c))], True
    if name == "XORI":
        a = reg(regs[0])
        return [("LOADI", (c, imm(imms[0]))), ("XOR", (a, c))], True
    if name == "SUBI":
        a = reg(regs[0])
        complement = (REGISTER_MAX - imms[0] + 1) & REGISTER_MAX
        return [("LOADI", (c, imm(complement))), ("ADD", (a, c))], True
    if name == "NOT":
        a = reg(regs[0])
        return [("LOADI", (c, imm(REGISTER_MAX))), ("XOR", (a, c))], True
    if name == "SUB":
        a, b = reg(regs[0]), reg(regs[1])
        return [
            ("LOADI", (c, imm(REGISTER_MAX))),
            ("XOR", (b, c)),
            ("ADD", (a, b)),
            ("XOR", (b, c)),
            ("LOADI", (c, imm(1))),
            ("ADD", (a, c)),
        ], True
    raise ValueError(f"not a pseudo primitive: {name}")


def expand_pseudo(ir: ProgramIR, *, use_liveness: bool = True) -> ExpansionStats:
    """Expand all pseudo primitives in place, with lifetime-aware backups.

    ``use_liveness=False`` disables the register-lifetime optimization
    (§4.2): every supportive register is then backed up and restored,
    which is what the ablation benchmark measures.
    """
    stats = ExpansionStats()
    live_out = compute_live_out(ir)
    for path in ir.walk_paths():
        new_ops: list[Op] = []
        for op in path.ops:
            if op.name not in PSEUDO_PRIMITIVES:
                new_ops.append(op)
                continue
            stats.pseudo_ops += 1
            support = _supportive_register(op.args)
            seq, uses_support = _expand_one(op, support)
            needs_backup = uses_support and (
                not use_liveness or support in live_out[id(op)]
            )
            if uses_support and not needs_backup:
                stats.backups_elided += 1
            if needs_backup:
                stats.backups_needed += 1
                new_ops.append(Op("BACKUP", (reg(support),), path.branch_id, line=op.line))
            for prim_name, prim_args in seq:
                new_ops.append(Op(prim_name, prim_args, path.branch_id, line=op.line))
                stats.emitted_ops += 1
            if needs_backup:
                new_ops.append(Op("RESTORE", (reg(support),), path.branch_id, line=op.line))
        path.ops = new_ops
    return stats


# ---------------------------------------------------------------------------
# Offset insertion
# ---------------------------------------------------------------------------
def insert_offsets(ir: ProgramIR) -> int:
    """Insert the OFFSET internal op before every memory primitive.

    Returns the number of OFFSET ops inserted.  The offset step performs
    the virtual→physical address addition into a scratch PHV field and sets
    the SALU flag, one RPB ahead of the SALU access (§4.1.2).
    """
    inserted = 0
    for path in ir.walk_paths():
        new_ops: list[Op] = []
        for op in path.ops:
            if op.name in MEMORY_PRIMITIVES:
                mid = op.memory_id()
                assert mid is not None
                new_ops.append(Op("OFFSET", (mem(mid),), path.branch_id, line=op.line))
                inserted += 1
            new_ops.append(op)
        path.ops = new_ops
    return inserted


# ---------------------------------------------------------------------------
# Depth alignment
# ---------------------------------------------------------------------------
def _dominance_index(ir: ProgramIR) -> dict[int, set[int]]:
    """Map ``id(op)`` -> set of ``id`` of ops that *dominate* it.

    Op A dominates op B when every packet reaching B has executed A first:
    A precedes B in the same path, or A precedes (in an ancestor path) the
    BRANCH chain that opens B's path.  Ops in sibling cases — or in a
    case vs. the no-match continuation — are parallel (mutually exclusive).
    """
    dominators: dict[int, set[int]] = {}

    def walk(path: Path, prefix: list[int]) -> None:
        chain = list(prefix)
        for op in path.ops:
            dominators[id(op)] = set(chain)
            if op.cases:
                for case in op.cases:
                    walk(case.path, chain + [id(op)])
            chain.append(id(op))

    walk(ir.root, [])
    return dominators


def sequential_memory_pairs(ir: ProgramIR) -> list[tuple[Op, Op]]:
    """Pairs of same-memory ops where the first dominates the second.

    These become the allocator's constraint (5): the later access must hit
    the same physical RPB in a later recirculation iteration.
    """
    dominators = _dominance_index(ir)
    mem_ops = [op for op in ir.walk_ops() if op.name in MEMORY_PRIMITIVES]
    pairs = []
    for i, first in enumerate(mem_ops):
        for second in mem_ops[i + 1 :]:
            if first.memory_id() != second.memory_id():
                continue
            if id(first) in dominators[id(second)]:
                pairs.append((first, second))
            elif id(second) in dominators[id(first)]:
                pairs.append((second, first))
    return pairs


def align_memory_depths(ir: ProgramIR) -> int:
    """Align parallel same-memory ops to a common depth by inserting NOPs.

    Returns the number of NOPs inserted.  Runs to a fixpoint: inserting a
    NOP shifts later ops in that path, which can disturb other groups.
    """
    total_nops = 0
    for _ in range(_MAX_ALIGN_ROUNDS):
        assign_depths(ir)
        dominators = _dominance_index(ir)
        # Group parallel memory ops by memory id.
        groups: dict[str, list[Op]] = {}
        for op in ir.walk_ops():
            if op.name in MEMORY_PRIMITIVES:
                groups.setdefault(op.memory_id() or "", []).append(op)
        adjusted = False
        for ops in groups.values():
            for component in _parallel_components(ops, dominators):
                target = max(op.depth for op in component)
                for op in component:
                    if op.depth < target:
                        total_nops += _delay_op(ir, op, target - op.depth)
                        adjusted = True
                if adjusted:
                    break
            if adjusted:
                break  # depths are stale; restart the round
        if not adjusted:
            return total_nops
    raise AlignmentError("memory depth alignment did not converge")


def _parallel_components(ops: list[Op], dominators: dict[int, set[int]]) -> list[list[Op]]:
    """Connected components of the mutual-parallelism graph over same-memory
    ops, skipping components that contain a dominance relation (those can
    never share a depth — the allocator's same-physical-RPB constraint
    still covers them, via recirculation iterations)."""

    def related(a: Op, b: Op) -> bool:
        return id(a) in dominators[id(b)] or id(b) in dominators[id(a)]

    parent = list(range(len(ops)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i, a in enumerate(ops):
        for j in range(i + 1, len(ops)):
            if not related(a, ops[j]):
                parent[find(i)] = find(j)
    components: dict[int, list[Op]] = {}
    for i, op in enumerate(ops):
        components.setdefault(find(i), []).append(op)
    result = []
    for members in components.values():
        if len(members) < 2:
            continue
        has_dominance = any(
            related(a, b)
            for i, a in enumerate(members)
            for b in members[i + 1 :]
        )
        if not has_dominance:
            result.append(members)
    return result


def _delay_op(ir: ProgramIR, op: Op, slots: int) -> int:
    """Insert ``slots`` NOPs before ``op``'s OFFSET in its path."""
    for path in ir.walk_paths():
        if op in path.ops:
            index = path.ops.index(op)
            # The OFFSET op immediately precedes the memory op; pad before it.
            if index > 0 and path.ops[index - 1].name == "OFFSET":
                index -= 1
            nops = [Op("NOP", (), path.branch_id, line=op.line) for _ in range(slots)]
            path.ops[index:index] = nops
            return slots
    raise ValueError("op not found in any path")


# ---------------------------------------------------------------------------
# Full translation entry point
# ---------------------------------------------------------------------------
@dataclass
class TranslationResult:
    ir: ProgramIR
    stats: ExpansionStats
    offsets_inserted: int
    nops_inserted: int
    sequential_pairs: list[tuple[Op, Op]]
    #: False when cross-ordered memory accesses made NOP alignment
    #: impossible and the unaligned fallback was used
    aligned: bool = True


def translate(
    program: ProgramDecl,
    *,
    elastic_branch: int | None = None,
    elastic_cases: int | None = None,
) -> TranslationResult:
    """Run the full translation pipeline on a checked program AST.

    NOP alignment is an optimization (it lets parallel same-memory
    accesses share one RPB instead of costing recirculation iterations).
    When two branches access a set of memories in *opposite orders* the
    alignment fixpoint cannot converge — aligning one memory un-aligns
    the other forever — so translation falls back to the unaligned IR and
    leaves placement to the allocator's same-physical-RPB constraints.
    """
    if elastic_cases is not None:
        program = expand_elastic(program, elastic_branch or 0, elastic_cases)

    def build(aligned: bool) -> tuple[ProgramIR, ExpansionStats, int, int]:
        ir = build_ir(program)
        stats = expand_pseudo(ir)
        offsets = insert_offsets(ir)
        nops = align_memory_depths(ir) if aligned else 0
        assign_depths(ir)
        return ir, stats, offsets, nops

    aligned = True
    try:
        ir, stats, offsets, nops = build(aligned=True)
    except AlignmentError:
        ir, stats, offsets, nops = build(aligned=False)
        aligned = False
    pairs = sequential_memory_pairs(ir)
    return TranslationResult(ir, stats, offsets, nops, pairs, aligned)
