"""Table-entry generation for allocated programs (paper §4.3, Fig. 5(c)).

Given a translated IR and an allocation vector, emit the table entries that
realize the program on the P4runpro data plane:

* one initialization-block entry per program, matching the parsing bitmap
  plus the program's filter tuples and setting the program ID;
* per-op entries in each RPB's table, keyed on (program ID, branch ID,
  recirculation ID) — ternary with redundant register keys, as all
  P4runpro tables are;
* per-case entries for BRANCH ops, additionally keyed on the registers and
  setting the new branch ID;
* recirculation-block entries when the allocation spans iterations.

Entries are grouped into an ordered :class:`EntryBatch` whose sequence
encodes the consistent-update order of Fig. 6: all program components
first, the initialization entry last (and the reverse for deletion).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.ast import Filter, MemoryDecl
from ..rmt import fields as field_registry
from ..rmt.parser import DEFAULT_BITMAP_BITS
from ..dataplane import constants as dp
from .ir import Op, ProgramIR
from .solver import AllocationResult
from .target import TargetSpec


@dataclass(frozen=True)
class KeySpec:
    field: str
    value: int
    mask: int

    def matches(self, phv) -> bool:
        """Ternary match against a PHV — the same protocol as the RMT
        layer's ``TernaryKey``, so bindings can install ``EntryConfig``
        keys directly without re-wrapping each one."""
        if not phv.has(self.field):
            return False
        return (phv.get(self.field) & self.mask) == (self.value & self.mask)


@dataclass(frozen=True)
class EntryConfig:
    """One table entry to install (target-independent description)."""

    table: str
    keys: tuple[KeySpec, ...]
    action: str
    action_data: tuple[tuple[str, object], ...]
    priority: int = 0

    def data(self) -> dict:
        return dict(self.action_data)


@dataclass
class EntryBatch:
    """All entries of one program, in consistent-update install order."""

    program: str
    program_id: int
    body_entries: list[EntryConfig] = field(default_factory=list)
    recirc_entries: list[EntryConfig] = field(default_factory=list)
    init_entries: list[EntryConfig] = field(default_factory=list)

    #: per-table entry counts, computed lazily (admission bookkeeping)
    _table_counts: dict | None = field(default=None, repr=False, compare=False)

    def install_order(self) -> list[EntryConfig]:
        """Components first, init last (Fig. 6 add order)."""
        return [*self.body_entries, *self.recirc_entries, *self.init_entries]

    def table_counts(self) -> dict[str, int]:
        """``{table: entries}`` over the whole batch, cached per batch
        (relocation copies it from the template — relocating never moves
        an entry between tables)."""
        counts = self._table_counts
        if counts is None:
            counts = {}
            for entry in self.install_order():
                counts[entry.table] = counts.get(entry.table, 0) + 1
            self._table_counts = counts
        return counts

    def delete_order(self) -> list[EntryConfig]:
        """Init first — disables the program atomically — then the rest."""
        return [*self.init_entries, *self.recirc_entries, *self.body_entries]

    def __len__(self) -> int:
        return len(self.body_entries) + len(self.recirc_entries) + len(self.init_entries)


def _data(**kwargs) -> tuple[tuple[str, object], ...]:
    return tuple(sorted(kwargs.items()))


def relocate_batch(
    template: EntryBatch, program_id: int, memory_bases: dict
) -> EntryBatch | None:
    """Rebind a canonical entry batch (program id 0, zero bases) to a
    concrete deployment — the emission-side half of the relocatable
    allocation cache.

    Only the program-id keys, the init entry's program-id action datum,
    and each OFFSET entry's base change between deployments of one
    (translation, allocation) pair; everything else — tables, branch keys,
    priorities, order — is structural.  Returns ``None`` when a memory
    block is fragmented (direct-mapped layouts add per-fragment keys, so
    the structure itself differs) and the caller must re-emit.
    """
    base_of: dict[str, int] = {}
    for mid, (_phys, base_or_layout) in memory_bases.items():
        if isinstance(base_or_layout, int):
            base_of[mid] = base_or_layout & dp.REGISTER_MASK
        else:
            if len(base_or_layout) != 1 or base_or_layout[0][0] != 0:
                return None
            base_of[mid] = base_or_layout[0][1] & dp.REGISTER_MASK

    def rekey(keys: tuple[KeySpec, ...]) -> tuple[KeySpec, ...]:
        if keys and keys[0].field == "ud.program_id":
            return (KeySpec("ud.program_id", program_id, keys[0].mask),) + keys[1:]
        return keys

    body = []
    for entry in template.body_entries:
        data = entry.action_data
        if entry.action == "OFFSET":
            patched = dict(data)
            patched["base"] = base_of[patched["mid"]]
            data = tuple(sorted(patched.items()))
        body.append(
            EntryConfig(entry.table, rekey(entry.keys), entry.action, data, entry.priority)
        )
    recirc = [
        EntryConfig(e.table, rekey(e.keys), e.action, e.action_data, e.priority)
        for e in template.recirc_entries
    ]
    init = []
    for entry in template.init_entries:
        patched = dict(entry.action_data)
        patched["program_id"] = program_id
        init.append(
            EntryConfig(
                entry.table,
                entry.keys,
                entry.action,
                tuple(sorted(patched.items())),
                entry.priority,
            )
        )
    relocated = EntryBatch(template.program, program_id, body, recirc, init)
    relocated._table_counts = template.table_counts()
    return relocated


def _flag_keys(program_id: int, branch_id: int, recirc_id: int) -> list[KeySpec]:
    return [
        KeySpec("ud.program_id", program_id, dp.PROGRAM_ID_MASK),
        KeySpec("ud.branch_id", branch_id, dp.BRANCH_ID_MASK),
        KeySpec("ud.recirc_count", recirc_id, dp.RECIRC_ID_MASK),
    ]


def required_bitmap(filters: list[Filter]) -> int:
    """Parsing-bitmap bits implied by the headers the filters reference."""
    bitmap = 1 << DEFAULT_BITMAP_BITS["eth"]  # every packet parses Ethernet
    for flt in filters:
        spec = field_registry.lookup(flt.field)
        header = spec.header
        if header is None:
            continue  # metadata filter: no parsing requirement
        bit = DEFAULT_BITMAP_BITS.get(header)
        if bit is not None:
            bitmap |= 1 << bit
        # Parsing prerequisites: L4 implies IPv4.
        if header in ("tcp", "udp", "nc", "calc"):
            bitmap |= 1 << DEFAULT_BITMAP_BITS["ipv4"]
        if header in ("nc", "calc"):
            bitmap |= 1 << DEFAULT_BITMAP_BITS["udp"]
    return bitmap


class EntryGenerator:
    """Emits the entry batch for one allocated program."""

    def __init__(self, spec: TargetSpec):
        self.spec = spec

    def generate(
        self,
        ir: ProgramIR,
        filters: list[Filter],
        allocation: AllocationResult,
        program_id: int,
        memory_bases: dict,  # mid -> (phys, base) or (phys, [(voff, pbase, fsize)])
        memory_decls: dict[str, MemoryDecl],
    ) -> EntryBatch:
        # Normalize: a bare base address means one contiguous fragment.
        layouts: dict[str, list[tuple[int, int, int]]] = {}
        for mid, (phys, base_or_layout) in memory_bases.items():
            if isinstance(base_or_layout, int):
                size = memory_decls[mid].size if mid in memory_decls else 0
                layouts[mid] = [(0, base_or_layout, size)]
            else:
                layouts[mid] = list(base_or_layout)
        batch = EntryBatch(ir.name, program_id)
        x = allocation.x
        # One hash unit per *depth*: parallel branches at the same depth
        # share the stage's unit (and therefore its CRC), while hash ops at
        # different depths cycle through the chip's CRC variants — the
        # four-CRC layout of the paper's heavy-hitter study (§6.4).
        hash_depths = sorted(
            {
                op.depth
                for op in ir.walk_ops()
                if op.name in ("HASH", "HASH_5_TUPLE", "HASH_MEM", "HASH_5_TUPLE_MEM")
            }
        )
        algorithm_for_depth = {
            depth: dp.HASH_ALGORITHM_CYCLE[i % len(dp.HASH_ALGORITHM_CYCLE)]
            for i, depth in enumerate(hash_depths)
        }
        for op in sorted(ir.walk_ops(), key=lambda o: (o.depth, o.branch_id)):
            logic = x[op.depth - 1]
            phys = self.spec.physical_rpb(logic)
            recirc_id = self.spec.iteration(logic)
            table = dp.rpb_table(phys)
            if op.name == "NOP":
                continue
            if op.is_branch:
                self._emit_branch(batch, table, op, program_id, recirc_id)
                continue
            if op.name in ("HASH", "HASH_5_TUPLE", "HASH_MEM", "HASH_5_TUPLE_MEM"):
                algorithm = algorithm_for_depth[op.depth]
                self._emit_hash(
                    batch, table, op, program_id, recirc_id, algorithm, memory_decls
                )
                continue
            if op.name == "OFFSET":
                self._emit_offset(batch, table, op, program_id, recirc_id, layouts)
                continue
            keys = _flag_keys(program_id, op.branch_id, recirc_id)
            action, data = self._action_for(op, memory_decls)
            batch.body_entries.append(
                EntryConfig(table, tuple(keys), action, data)
            )
        self._emit_recirc(batch, allocation, program_id)
        self._emit_init(batch, filters, program_id)
        return batch

    # -- op-specific emission -------------------------------------------------
    def _emit_branch(
        self, batch: EntryBatch, table: str, op: Op, program_id: int, recirc_id: int
    ) -> None:
        for index, case in enumerate(op.cases or []):
            keys = _flag_keys(program_id, op.branch_id, recirc_id)
            for cond in case.conditions:
                keys.append(
                    KeySpec(dp.REGISTER_FIELDS[cond.register], cond.value, cond.mask)
                )
            batch.body_entries.append(
                EntryConfig(
                    table,
                    tuple(keys),
                    dp.ACTION_SET_BRANCH,
                    _data(branch_id=case.target_branch),
                    priority=index,
                )
            )

    def _emit_hash(
        self,
        batch: EntryBatch,
        table: str,
        op: Op,
        program_id: int,
        recirc_id: int,
        algorithm: str,
        memory_decls: dict[str, MemoryDecl],
    ) -> None:
        keys = _flag_keys(program_id, op.branch_id, recirc_id)
        data: dict[str, object] = {"algorithm": algorithm}
        if op.name in ("HASH_MEM", "HASH_5_TUPLE_MEM"):
            mid = op.memory_id()
            assert mid is not None
            # The mask step, merged with the hash action (§4.1.2): clip the
            # hash output to the virtual memory size.
            data["mask"] = memory_decls[mid].size - 1
        batch.body_entries.append(
            EntryConfig(table, tuple(keys), op.name, _data(**data))
        )

    def _emit_offset(
        self,
        batch: EntryBatch,
        table: str,
        op: Op,
        program_id: int,
        recirc_id: int,
        layouts: dict[str, list[tuple[int, int, int]]],
    ) -> None:
        """One OFFSET entry per memory fragment.

        Contiguous blocks get the classic single entry.  Direct-mapped
        blocks (paper §7) add a ternary prefix key on ``mar`` selecting the
        fragment, with a per-fragment base of ``(pbase - voff) mod 2^32``
        so ``phys = mar + base`` lands inside that fragment.
        """
        mid = op.memory_id()
        assert mid is not None
        layout = layouts[mid]
        for index, (voff, pbase, fsize) in enumerate(layout):
            keys = _flag_keys(program_id, op.branch_id, recirc_id)
            if len(layout) > 1:
                prefix_mask = (~(fsize - 1)) & dp.REGISTER_MASK
                keys.append(KeySpec("ud.mar", voff, prefix_mask))
            base = (pbase - voff) & dp.REGISTER_MASK
            batch.body_entries.append(
                EntryConfig(
                    table,
                    tuple(keys),
                    "OFFSET",
                    _data(base=base, mid=mid),
                    priority=index,
                )
            )

    def _action_for(
        self,
        op: Op,
        memory_decls: dict[str, MemoryDecl],
    ) -> tuple[str, tuple[tuple[str, object], ...]]:
        name = op.name
        if name in ("EXTRACT", "MODIFY"):
            field_arg, reg_arg = op.args
            return name, _data(field=str(field_arg.value), reg=str(reg_arg.value))
        if name in (
            "MEMADD",
            "MEMSUB",
            "MEMAND",
            "MEMOR",
            "MEMREAD",
            "MEMWRITE",
            "MEMMAX",
        ):
            mid = op.memory_id()
            assert mid is not None
            return name, _data(mid=mid)
        if name == "LOADI":
            reg_arg, imm_arg = op.args
            return name, _data(reg=str(reg_arg.value), value=int(imm_arg.value))
        if name in ("ADD", "AND", "OR", "MAX", "MIN", "XOR"):
            reg0, reg1 = op.args
            return name, _data(reg0=str(reg0.value), reg1=str(reg1.value))
        if name == "FORWARD":
            return name, _data(port=int(op.args[0].value))
        if name == "MULTICAST":
            return name, _data(group=int(op.args[0].value))
        if name in ("DROP", "RETURN", "REPORT"):
            return name, _data()
        if name in ("BACKUP", "RESTORE"):
            return name, _data(reg=str(op.args[0].value))
        raise ValueError(f"cannot generate an entry for op {name!r}")

    # -- block entries -----------------------------------------------------------
    def _emit_recirc(
        self, batch: EntryBatch, allocation: AllocationResult, program_id: int
    ) -> None:
        if not self.spec.uses_recirculation:
            return  # chain hops are physical; no recirculation entries
        for iteration in range(allocation.max_iteration):
            batch.recirc_entries.append(
                EntryConfig(
                    dp.RECIRC_TABLE,
                    (
                        KeySpec("ud.program_id", program_id, dp.PROGRAM_ID_MASK),
                        KeySpec("ud.recirc_count", iteration, dp.RECIRC_ID_MASK),
                    ),
                    dp.ACTION_RECIRCULATE,
                    _data(),
                )
            )

    def _emit_init(self, batch: EntryBatch, filters: list[Filter], program_id: int) -> None:
        bitmap = required_bitmap(filters)
        keys = [KeySpec("ud.parse_bitmap", bitmap, bitmap)]
        for flt in filters:
            keys.append(KeySpec(flt.field, flt.value, flt.mask))
        batch.init_entries.append(
            EntryConfig(
                dp.INIT_TABLE,
                tuple(keys),
                dp.ACTION_SET_PROGRAM,
                _data(program_id=program_id),
            )
        )
