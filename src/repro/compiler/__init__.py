"""P4runpro compiler: translation, allocation, and entry generation."""

from .allocation import AllocationProblem, build_problem, op_entry_cost
from .compiler import (
    CompileOptions,
    CompiledProgram,
    compile_program,
    compile_source,
    parse_and_check,
)
from .entries import EntryBatch, EntryConfig, EntryGenerator, KeySpec, required_bitmap
from .ir import CaseInfo, Op, Path, ProgramIR, assign_depths, build_ir
from .liveness import compute_live_out, reads_writes
from .objectives import (
    OBJECTIVES,
    Hierarchical,
    Objective,
    RatioEndpoints,
    WeightedEndpoints,
    f1,
    f2,
    f3,
    hierarchical,
    make_objective,
)
from .p4gen import check_structure, emit_p4, p4_loc
from .solver import AllocationResult, AllocationSolver
from .target import ChainSpec, ResourceView, TargetSpec, UnlimitedResources
from .translate import (
    ExpansionStats,
    TranslationResult,
    align_memory_depths,
    expand_elastic,
    expand_pseudo,
    insert_offsets,
    sequential_memory_pairs,
    translate,
)

__all__ = [
    "AllocationProblem",
    "AllocationResult",
    "AllocationSolver",
    "CaseInfo",
    "ChainSpec",
    "CompileOptions",
    "CompiledProgram",
    "EntryBatch",
    "EntryConfig",
    "EntryGenerator",
    "ExpansionStats",
    "Hierarchical",
    "KeySpec",
    "OBJECTIVES",
    "Objective",
    "Op",
    "Path",
    "ProgramIR",
    "RatioEndpoints",
    "ResourceView",
    "TargetSpec",
    "TranslationResult",
    "UnlimitedResources",
    "WeightedEndpoints",
    "align_memory_depths",
    "assign_depths",
    "build_ir",
    "build_problem",
    "check_structure",
    "emit_p4",
    "compile_program",
    "compile_source",
    "compute_live_out",
    "expand_elastic",
    "expand_pseudo",
    "f1",
    "f2",
    "f3",
    "hierarchical",
    "insert_offsets",
    "make_objective",
    "op_entry_cost",
    "p4_loc",
    "parse_and_check",
    "reads_writes",
    "required_bitmap",
    "sequential_memory_pairs",
    "translate",
]
