"""Building the resource-allocation problem from translated IR (paper §4.3).

The allocator's view of a program is per-depth aggregate demand:

* ``te_req[d]`` — table entries needed by the ops at depth ``d`` (a BRANCH
  needs one entry per case block, every other op one entry, a NOP none);
* which depths contain forwarding primitives (must land on ingress RPBs);
* which virtual memories are touched at which depths, and their sizes;
* sequential same-memory depth pairs (cross-iteration constraint (5)).

The paper forces "the same primitives at the same AST depth executed in the
same RPB to reduce complexity" — our depth levels already are that
aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.ast import SourceUnit
from ..lang.errors import AllocationError
from ..lang.primitives import FORWARDING_PRIMITIVES, MEMORY_PRIMITIVES
from .ir import ProgramIR
from .translate import TranslationResult


@dataclass
class AllocationProblem:
    """Per-depth demand vectors; depths are 1-based."""

    program: str
    num_depths: int
    te_req: dict[int, int]
    forwarding_depths: set[int]
    #: mid -> size in buckets
    memory_sizes: dict[str, int]
    #: mid -> sorted depths at which its buckets are accessed
    memory_depths: dict[str, list[int]]
    #: (earlier depth, later depth) pairs needing the same physical RPB
    sequential_pairs: list[tuple[int, int]] = field(default_factory=list)

    def entries_total(self) -> int:
        return sum(self.te_req.values())


def op_entry_cost(op) -> int:
    """Table entries one op consumes in its RPB."""
    if op.name == "NOP":
        return 0
    if op.is_branch:
        return len(op.cases or [])
    return 1


def build_problem(
    unit: SourceUnit, translation: TranslationResult
) -> AllocationProblem:
    """Aggregate a translated program into an allocation problem."""
    ir: ProgramIR = translation.ir
    num_depths = ir.max_depth()
    if num_depths == 0:
        raise AllocationError(f"program {ir.name!r} has no operations")

    te_req: dict[int, int] = {d: 0 for d in range(1, num_depths + 1)}
    forwarding_depths: set[int] = set()
    memory_depths: dict[str, set[int]] = {}
    for op in ir.walk_ops():
        te_req[op.depth] += op_entry_cost(op)
        if op.name in FORWARDING_PRIMITIVES:
            forwarding_depths.add(op.depth)
        if op.name in MEMORY_PRIMITIVES:
            mid = op.memory_id()
            assert mid is not None
            memory_depths.setdefault(mid, set()).add(op.depth)

    memory_sizes: dict[str, int] = {}
    for mid in memory_depths:
        decl = unit.memory(mid)
        if decl is None:
            raise AllocationError(f"memory {mid!r} is not declared")
        memory_sizes[mid] = decl.size

    pairs = sorted(
        {(first.depth, second.depth) for first, second in translation.sequential_pairs}
    )
    return AllocationProblem(
        program=ir.name,
        num_depths=num_depths,
        te_req=te_req,
        forwarding_depths=forwarding_depths,
        memory_sizes=memory_sizes,
        memory_depths={mid: sorted(depths) for mid, depths in memory_depths.items()},
        sequential_pairs=pairs,
    )
