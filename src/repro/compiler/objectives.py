"""Allocation objective functions (paper §6.2.4 and Appendix C).

Four schemes are reproduced:

* ``f1 = alpha*x_L - beta*x_1`` (default, alpha=0.7 / beta=0.3) — linear,
  balances avoiding recirculation against pushing work toward egress RPBs;
* ``f2 = x_L`` — linear, only avoids recirculation;
* ``f3 = x_L / x_1`` — nonlinear; best capacity/utilization in the paper
  but much slower to optimize;
* hierarchical — minimize ``x_L`` first, then maximize ``x_1`` with the
  optimal ``x_L`` fixed (two solver passes).

Every objective in the paper depends only on the endpoints (x_1, x_L); the
solver exploits this for *linear* objectives by enumerating endpoint pairs
best-first (an optimization an SMT solver performs internally for linear
terms), while nonlinear objectives fall back to generic branch-and-bound —
which is why f3's allocation delay is an order of magnitude worse (§6.2.4).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Objective:
    """A (possibly weighted) endpoint objective to *minimize*."""

    name: str
    linear: bool

    def value(self, x1: int, xl: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class WeightedEndpoints(Objective):
    """``alpha * x_L - beta * x_1`` (covers f1 and, with beta=0, f2)."""

    alpha: float = 0.7
    beta: float = 0.3

    def value(self, x1: int, xl: int) -> float:
        return self.alpha * xl - self.beta * x1


@dataclass(frozen=True)
class RatioEndpoints(Objective):
    """``x_L / x_1`` (f3): nonlinear."""

    def value(self, x1: int, xl: int) -> float:
        return xl / x1


@dataclass(frozen=True)
class Hierarchical(Objective):
    """Two-phase: min x_L, then max x_1 given the optimal x_L."""

    def value(self, x1: int, xl: int) -> float:
        # Lexicographic encoding: x_L dominates, then smaller -x_1.
        return xl * 1_000.0 - x1


def f1(alpha: float = 0.7, beta: float = 0.3) -> WeightedEndpoints:
    return WeightedEndpoints(name="f1", linear=True, alpha=alpha, beta=beta)


def f2() -> WeightedEndpoints:
    return WeightedEndpoints(name="f2", linear=True, alpha=1.0, beta=0.0)


def f3() -> RatioEndpoints:
    return RatioEndpoints(name="f3", linear=False)


def hierarchical() -> Hierarchical:
    return Hierarchical(name="hierarchical", linear=True)


OBJECTIVES = {
    "f1": f1,
    "f2": f2,
    "f3": f3,
    "hierarchical": hierarchical,
}


def make_objective(name: str, **kwargs) -> Objective:
    try:
        factory = OBJECTIVES[name]
    except KeyError as exc:
        raise ValueError(f"unknown objective {name!r}") from exc
    return factory(**kwargs)
