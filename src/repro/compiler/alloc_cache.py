"""Relocatable allocation cache — the deploy fast path's front half.

P4runpro's mask/offset address translation (§4.2) makes an installed
program position-independent: the solved allocation depends only on the
program's *demand shape* (per-depth table entries, memory sizes and
access depths, forwarding/sequential constraints) and on current
occupancy, never on which program carries that shape.  This module
content-addresses each deployment by that shape — the normalized IR after
linearization, before address translation — and caches two
occupancy-independent artifacts:

* the **front end** (parsed unit, checked AST, translated IR, allocation
  problem) keyed by source text and elasticity options, so repeat deploys
  skip the parser and translator outright;
* the **allocation shape**: the endpoint-enumeration *trace* of the last
  successful solve of this shape.  A later deploy replays the trace
  against the live free lists (:meth:`AllocationSolver.rebind`), which
  either proves the cached decision still optimal — skipping the
  branch-and-bound enumeration — or refuses, falling back to a full
  solve.  Either way the resulting allocation is byte-identical to what a
  cold solve would produce *now* (rebinding re-derives x, memory
  placement, and entry addresses from current state; nothing stale is
  installed).

Both caches are LRU-bounded so a long-lived multi-tenant service cannot
grow them without bound under program churn.
"""

from __future__ import annotations

import hashlib
import json
import weakref
from collections import OrderedDict
from dataclasses import dataclass

from .allocation import AllocationProblem
from .objectives import Objective
from .target import TargetSpec


@dataclass(frozen=True)
class AllocationShape:
    """The reusable residue of one successful linear solve."""

    #: endpoint pairs examined, in enumeration order: (x1, xl, reason),
    #: the winner last with reason "win" — see AllocationSolver.rebind
    trace: tuple
    #: the winning vector and value at record time (diagnostics only;
    #: rebinding recomputes both from the live view)
    x: tuple
    objective_value: float


#: id(problem) -> (weakref to the problem, {(spec, objective, direct): digest})
#: — the front-end cache shares problem objects across deploys, so the
#: digest (a pure function of the problem) is computed once per object.
#: The weakref guards against id reuse after garbage collection.
_DIGEST_MEMO: dict[int, tuple] = {}


def shape_digest(
    problem: AllocationProblem,
    spec: TargetSpec,
    objective: Objective,
    direct_memory: bool = False,
) -> str:
    """Content address of a deployment's demand shape.

    Covers every input the solver's decision depends on *except*
    occupancy: the full allocation problem (minus the program name — two
    programs with identical demand share one line), the target geometry,
    the objective, and the memory-mapping mode.
    """
    pid = id(problem)
    memo = _DIGEST_MEMO.get(pid)
    if memo is None or memo[0]() is not problem:
        if len(_DIGEST_MEMO) >= 512:
            for dead in [k for k, (ref, _) in _DIGEST_MEMO.items() if ref() is None]:
                del _DIGEST_MEMO[dead]
        memo = (weakref.ref(problem), {})
        _DIGEST_MEMO[pid] = memo
    subkey = (spec, objective, bool(direct_memory))
    cached = memo[1].get(subkey)
    if cached is not None:
        return cached
    payload = {
        "num_depths": problem.num_depths,
        "te_req": sorted(problem.te_req.items()),
        "forwarding": sorted(problem.forwarding_depths),
        "memory_sizes": sorted(problem.memory_sizes.items()),
        "memory_depths": sorted(
            (mid, list(depths)) for mid, depths in problem.memory_depths.items()
        ),
        "sequential_pairs": sorted(problem.sequential_pairs),
        "spec": [
            spec.num_ingress_rpbs,
            spec.num_egress_rpbs,
            spec.max_recirculations,
            spec.rpb_table_size,
            spec.rpb_memory_size,
        ],
        "objective": repr(objective),
        "direct_memory": bool(direct_memory),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha1(blob.encode()).hexdigest()
    memo[1][subkey] = digest
    return digest


class DeployCache:
    """Per-controller deploy fast-path cache (front end + shapes)."""

    def __init__(
        self, *, frontend_cap: int = 256, shape_cap: int = 256, rebind_memo_cap: int = 512
    ):
        self.enabled = True
        self.frontend_cap = frontend_cap
        self.shape_cap = shape_cap
        self.rebind_memo_cap = rebind_memo_cap
        #: (source, program name, options fingerprint) ->
        #: (unit, program, translation, problem)
        self._frontend: OrderedDict = OrderedDict()
        #: shape digest -> AllocationShape
        self._shapes: OrderedDict[str, AllocationShape] = OrderedDict()
        #: (shape digest, availability digest) -> AllocationResult — the
        #: solver's answer at exactly that availability state.  Sound
        #: because the solve (and the rebind replay) is a pure function of
        #: the demand shape and current availability: when churn returns
        #: the free lists and entry reservations to a previously seen
        #: state, the recorded result IS what a fresh solve would produce,
        #: so even the trace replay can be skipped.  Stale states simply
        #: never match again and age out of the LRU.
        self._rebind_memo: OrderedDict = OrderedDict()
        self.frontend_hits = 0
        self.frontend_misses = 0
        self.shape_hits = 0
        self.shape_misses = 0
        #: shape hits whose trace replay succeeded (solve skipped) —
        #: memo hits count here too (a memoized replay is still a rebind)
        self.rebinds = 0
        #: shape hits whose replay refused (full solve ran instead)
        self.rebind_fallbacks = 0
        #: rebinds served straight from the availability memo (no replay)
        self.rebind_memo_hits = 0

    # -- front end -----------------------------------------------------------
    def lookup_frontend(self, key):
        if not self.enabled:
            return None
        hit = self._frontend.get(key)
        if hit is None:
            self.frontend_misses += 1
            return None
        self.frontend_hits += 1
        self._frontend.move_to_end(key)
        return hit

    def store_frontend(self, key, value) -> None:
        if not self.enabled:
            return
        self._frontend[key] = value
        self._frontend.move_to_end(key)
        while len(self._frontend) > self.frontend_cap:
            self._frontend.popitem(last=False)

    # -- allocation shapes ----------------------------------------------------
    def lookup_shape(self, digest: str) -> AllocationShape | None:
        if not self.enabled:
            return None
        shape = self._shapes.get(digest)
        if shape is None:
            self.shape_misses += 1
            return None
        self.shape_hits += 1
        self._shapes.move_to_end(digest)
        return shape

    def store_shape(self, digest: str, shape: AllocationShape) -> None:
        if not self.enabled:
            return
        self._shapes[digest] = shape
        self._shapes.move_to_end(digest)
        while len(self._shapes) > self.shape_cap:
            self._shapes.popitem(last=False)

    # -- rebind memo -----------------------------------------------------------
    def lookup_rebind(self, digest: str, availability: int):
        """A previously solved/rebound allocation for this exact
        (shape, availability) state, or None."""
        if not self.enabled:
            return None
        key = (digest, availability)
        result = self._rebind_memo.get(key)
        if result is None:
            return None
        self._rebind_memo.move_to_end(key)
        self.rebinds += 1
        self.rebind_memo_hits += 1
        return result

    def store_rebind(self, digest: str, availability: int, result) -> None:
        if not self.enabled:
            return
        key = (digest, availability)
        self._rebind_memo[key] = result
        self._rebind_memo.move_to_end(key)
        while len(self._rebind_memo) > self.rebind_memo_cap:
            self._rebind_memo.popitem(last=False)

    # -- management ------------------------------------------------------------
    def clear(self) -> None:
        self._frontend.clear()
        self._shapes.clear()
        self._rebind_memo.clear()

    def stats(self) -> dict:
        return {
            "enabled": self.enabled,
            "frontend_entries": len(self._frontend),
            "frontend_cap": self.frontend_cap,
            "frontend_hits": self.frontend_hits,
            "frontend_misses": self.frontend_misses,
            "shape_entries": len(self._shapes),
            "shape_cap": self.shape_cap,
            "shape_hits": self.shape_hits,
            "shape_misses": self.shape_misses,
            "rebinds": self.rebinds,
            "rebind_fallbacks": self.rebind_fallbacks,
            "rebind_memo_entries": len(self._rebind_memo),
            "rebind_memo_hits": self.rebind_memo_hits,
        }
