"""Finite-domain branch-and-bound allocator (the paper's SMT model, §4.3).

The paper hands its allocation model to Z3; no SMT solver is available in
this environment, so this module implements an exact optimizer specialized
to the model's structure:

* variables ``x_1 < x_2 < ... < x_L`` over logic RPBs ``1..M*(R+1)``;
* per-depth table-entry demand, cumulative per *physical* RPB;
* contiguous memory demand per physical RPB (checked via the resource
  view's free lists);
* forwarding depths restricted to ingress physical RPBs (constraint (4));
* sequential same-memory depths pinned to one physical RPB across
  recirculation iterations (constraint (5)).

Every paper objective depends only on the endpoints ``(x_1, x_L)``.  For
*linear* objectives the solver enumerates endpoint pairs in best-first
order and searches only for a feasible interior completion — the first
feasible pair is optimal.  Nonlinear objectives (f3) cannot be enumerated
that way and run generic branch-and-bound over the full space with a bound
from the partial assignment, which is genuinely much slower — reproducing
the f3 allocation delays of §6.2.4.

Deploy fast path (three cache layers, all exactness-preserving):

* **Sorted pair orders** (:data:`_SORTED_PAIRS`): the best-first endpoint
  order depends only on (domain, length, objective) — never on occupancy —
  so it is computed once per process and shared by every solve.
* **Warm-start** (:data:`_LAST_SUCCESS`): when the order is not cached yet
  the enumeration is seeded with the last successful endpoint pair for the
  class: only pairs at-or-below that objective value are sorted up front,
  the (usually never reached) tail lazily.
* **Incremental static feasibility**: for views exposing per-physical-RPB
  version counters (``phys_versions()``), the per-depth feasible sets are
  refreshed from allocate/revoke deltas — only RPBs whose version moved
  are re-evaluated, and the expensive per-value rebuild is skipped
  entirely when no feasibility bit actually flipped — instead of being
  invalidated wholesale on every ``generation`` bump.
* **Trace replay** (:meth:`AllocationSolver.rebind`): a linear solve can
  record which endpoint pairs it rejected (and why) before winning; a
  later solve of the same problem shape replays that prefix with cheap
  rechecks and returns a result *provably identical* to a fresh solve, or
  refuses (returns ``None``) so the caller re-solves.
"""

from __future__ import annotations

import bisect
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field

from ..lang.errors import AllocationError
from .allocation import AllocationProblem
from .objectives import Hierarchical, Objective, f2
from .target import ResourceView, TargetSpec


@dataclass
class AllocationResult:
    """A feasible (and optimal, unless ``capped``) allocation."""

    x: list[int]  # x[d-1] = logic RPB of depth d
    objective_value: float
    objective_name: str
    nodes_explored: int
    solve_time_s: float
    capped: bool = False
    #: mid -> 1-based physical RPB hosting its buckets
    memory_placement: dict[str, int] = field(default_factory=dict)
    #: True when produced by :meth:`AllocationSolver.rebind` (trace replay
    #: against a cached shape) rather than a fresh enumeration
    rebound: bool = False

    @property
    def max_iteration(self) -> int:
        return self._max_iteration

    def finalize(self, spec: TargetSpec) -> None:
        self.memory_placement = dict(self.memory_placement)
        self._max_iteration = max(spec.iteration(v) for v in self.x)


class _SearchState:
    """Mutable DFS bookkeeping: cumulative per-physical-RPB demand."""

    def __init__(self, spec: TargetSpec, view: ResourceView, problem: AllocationProblem):
        self.spec = spec
        self.view = view
        self.problem = problem
        self.acc_te: dict[int, int] = {}
        self.mem_at: dict[int, dict[str, int]] = {}  # phys -> {mid: size}
        self.mid_phys: dict[str, int] = {}
        # mids accessed per depth, precomputed
        self.mids_at_depth: dict[int, list[str]] = {}
        for mid, depths in problem.memory_depths.items():
            for d in depths:
                self.mids_at_depth.setdefault(d, []).append(mid)
        # sequential pairs indexed by the later depth
        self.pairs_by_later: dict[int, list[int]] = {}
        for i, j in problem.sequential_pairs:
            self.pairs_by_later.setdefault(j, []).append(i)
        # ...and by the earlier depth, for forward-checking
        self.pairs_by_earlier: dict[int, list[int]] = {}
        for i, j in problem.sequential_pairs:
            self.pairs_by_earlier.setdefault(i, []).append(j)

    def pair_forward_ok(self, depth: int, value: int, length: int, xl: int | None) -> bool:
        """Forward check: assigning ``x_depth = value``, can every later
        same-memory partner still land on the same physical RPB?

        A partner at depth ``j`` must take ``value + M*k`` (k >= 1) within
        its own window — and exactly ``xl`` when ``j`` is the last depth of
        an endpoint-pinned search.  Without this check, infeasible endpoint
        pairs explore the interior combinatorially.
        """
        spec = self.spec
        period = spec.num_rpbs
        domain = spec.num_logic_rpbs
        for j in self.pairs_by_earlier.get(depth, ()):
            upper = domain - (length - j)
            if xl is not None:
                upper = min(upper, xl if j == length else xl - (length - j))
            lower = value + (j - depth)
            ok = False
            candidate = value + period
            while candidate <= upper:
                if candidate >= lower and (
                    xl is None or j != length or candidate == xl
                ):
                    ok = True
                    break
                candidate += period
            if not ok:
                return False
        return True

    def try_assign(self, depth: int, value: int, x: list[int]) -> list | None:
        """Check feasibility of ``x_depth = value``; returns an undo token
        (to pass to :meth:`undo`) or ``None`` if infeasible."""
        spec = self.spec
        phys = spec.physical_rpb(value)
        if depth in self.problem.forwarding_depths and not spec.is_ingress(value):
            return None
        for earlier in self.pairs_by_later.get(depth, ()):
            if spec.physical_rpb(x[earlier - 1]) != phys:
                return None
        te = self.problem.te_req.get(depth, 0)
        new_te = self.acc_te.get(phys, 0) + te
        if te and new_te > self.view.free_entries(phys):
            return None
        undo: list = [("te", phys, te)]
        placed_mids: list[str] = []
        for mid in self.mids_at_depth.get(depth, ()):
            if mid in self.mid_phys:
                if self.mid_phys[mid] != phys:
                    self._rollback(undo, placed_mids)
                    return None
                continue
            sizes = dict(self.mem_at.get(phys, {}))
            sizes[mid] = self.problem.memory_sizes[mid]
            if not self.view.can_allocate_memory(phys, list(sizes.values())):
                self._rollback(undo, placed_mids)
                return None
            self.mem_at.setdefault(phys, {})[mid] = self.problem.memory_sizes[mid]
            self.mid_phys[mid] = phys
            placed_mids.append(mid)
        self.acc_te[phys] = new_te
        undo.append(("mids", phys, placed_mids))
        return undo

    def _rollback(self, undo: list, placed_mids: list[str]) -> None:
        for mid in placed_mids:
            phys = self.mid_phys.pop(mid)
            del self.mem_at[phys][mid]

    def undo(self, undo_token: list) -> None:
        for item in undo_token:
            if item[0] == "te":
                _, phys, te = item
                self.acc_te[phys] -= te
            else:
                _, phys, mids = item
                for mid in mids:
                    del self.mem_at[phys][mid]
                    del self.mid_phys[mid]


class SearchBudgetExceeded(Exception):
    """Internal: the node cap was hit."""


class _ShapeEntry:
    """One problem shape's cached static-feasibility state."""

    __slots__ = ("feasible", "versions", "sig_ok")

    def __init__(self, feasible, versions=None, sig_ok=None):
        self.feasible = feasible
        #: per-physical-RPB version tuple at computation time (views with
        #: ``phys_versions()``), or None for generation-keyed entries
        self.versions = versions
        #: (te, sizes) signature -> per-phys feasibility booleans, kept so
        #: a delta refresh re-evaluates only the RPBs that changed
        self.sig_ok = sig_ok


class _FeasibleCache:
    """Static-feasibility sets for one resource view, by problem shape.

    ``by_shape`` is LRU-ordered and capped at :data:`FEASIBLE_SHAPE_CAP`
    lines so tenant churn over many distinct program shapes cannot grow a
    long-lived service's memory unboundedly."""

    __slots__ = ("generation", "by_shape")

    def __init__(self):
        self.generation: object = None
        self.by_shape: OrderedDict = OrderedDict()


#: Process-wide default for new solvers (per-solver ``cache_enabled``
#: overrides it).  Benchmarks flip this to measure the cache's effect
#: through the full compile path, where each compile builds its own solver.
CACHING_ENABLED = True

#: LRU cap on cached problem shapes per view (see :class:`_FeasibleCache`).
FEASIBLE_SHAPE_CAP = 128

#: LRU caps on the process-wide pair-order and warm-start-hint caches.
SORTED_PAIRS_CAP = 64
LAST_SUCCESS_CAP = 256

#: Shared caches, keyed by view identity.  Solvers are constructed fresh
#: per compile, so cross-deploy reuse only works if the cache outlives the
#: solver; the weak keying makes the cache die with its view.  Only views
#: exposing a ``generation`` counter participate — without one there is no
#: invalidation signal to trust across solves.
_VIEW_CACHES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

#: (domain, length, objective) -> endpoint pairs in canonical best-first
#: order.  Occupancy-independent, so shared process-wide.
_SORTED_PAIRS: OrderedDict = OrderedDict()

#: (domain, length, objective) -> last winning (x1, xl) — the warm-start
#: seed for solves whose pair order is not cached yet.
_LAST_SUCCESS: OrderedDict = OrderedDict()

#: (spec, length, forwarding depths) -> static per-depth position bounds
_MAX_POSITIONS: dict = {}


def _shared_cache_for(view) -> _FeasibleCache | None:
    try:
        cache = _VIEW_CACHES.get(view)
        if cache is None:
            cache = _FeasibleCache()
            _VIEW_CACHES[view] = cache
        return cache
    except TypeError:  # view not hashable or not weak-referenceable
        return None


def _shape_key(problem: AllocationProblem) -> tuple:
    """Hashable key covering every problem field that feeds the static
    feasibility computation (not the program name — two programs with
    identical demand share cache lines)."""
    return (
        problem.num_depths,
        tuple(sorted(problem.te_req.items())),
        tuple(sorted(problem.forwarding_depths)),
        tuple(sorted(problem.memory_sizes.items())),
        tuple(sorted((m, tuple(d)) for m, d in problem.memory_depths.items())),
    )


def evict_problem_shape(view, problem: AllocationProblem) -> bool:
    """Drop one problem shape's feasibility line from a view's shared
    cache (the controller calls this when the program is revoked, so a
    churning service only caches shapes that are actually live or hot)."""
    try:
        cache = _VIEW_CACHES.get(view)
    except TypeError:
        return False
    if cache is None:
        return False
    return cache.by_shape.pop(_shape_key(problem), None) is not None


def cache_stats() -> dict:
    """Current sizes of every solver-side cache (the service's ``metrics``
    RPC reports this so operators can watch cache growth vs the caps)."""
    views = list(_VIEW_CACHES.values())
    return {
        "views": len(views),
        "feasibility_shapes": sum(len(c.by_shape) for c in views),
        "feasibility_shape_cap": FEASIBLE_SHAPE_CAP,
        "sorted_pair_orders": len(_SORTED_PAIRS),
        "sorted_pair_orders_cap": SORTED_PAIRS_CAP,
        "warm_start_hints": len(_LAST_SUCCESS),
        "warm_start_hints_cap": LAST_SUCCESS_CAP,
    }


def clear_global_caches() -> None:
    """Reset every process-wide solver cache (benchmarks' cold runs)."""
    _VIEW_CACHES.clear()
    _SORTED_PAIRS.clear()
    _LAST_SUCCESS.clear()
    _MAX_POSITIONS.clear()


class AllocationSolver:
    """Solves allocation problems against a resource view."""

    def __init__(
        self,
        spec: TargetSpec | None = None,
        view: ResourceView | None = None,
        *,
        max_nodes: int = 500_000,
    ):
        from .target import UnlimitedResources

        self.spec = spec or TargetSpec()
        self.view = view if view is not None else UnlimitedResources(self.spec)
        self.max_nodes = max_nodes
        self._nodes = 0
        #: cache of per-depth static feasibility sets, keyed by problem
        #: shape; refreshed incrementally for views with per-phys version
        #: counters, invalidated wholesale on ``generation`` bumps for the
        #: rest (views without either get a per-solve serial, so the cache
        #: still shares work between a hierarchical solve's phases)
        self.cache_enabled = CACHING_ENABLED
        self.cache_hits = 0
        self.cache_misses = 0
        #: delta refreshes: the cached line was reused after re-evaluating
        #: only the physical RPBs whose version counters moved
        self.cache_refreshes = 0
        self._local_cache = _FeasibleCache()
        self._solve_serial = 0
        #: endpoint-pair lists depend only on (domain, length)
        self._pair_cache: dict[tuple[int, int], list] = {}
        # value -> physical RPB / is-ingress lookup tables (spec constants)
        self._phys_of: list[int] | None = None
        self._ingress: list[bool] | None = None

    # -- public API -----------------------------------------------------------
    def solve(
        self,
        problem: AllocationProblem,
        objective: Objective,
        *,
        trace: list | None = None,
    ) -> AllocationResult:
        """Find the optimal allocation.  When ``trace`` is a list and the
        objective is plain linear, every endpoint pair examined is appended
        as ``(x1, xl, reason)`` — the winner last with reason ``"win"`` —
        forming the replayable record :meth:`rebind` consumes."""
        start = time.perf_counter()
        self._nodes = 0
        self._solve_serial += 1
        domain = self.spec.num_logic_rpbs
        if problem.num_depths > domain:
            raise AllocationError(
                f"program {problem.program!r} needs {problem.num_depths} logic RPBs, "
                f"target offers {domain} (raise R or shorten the program)"
            )
        if problem.sequential_pairs and not self.spec.memory_revisit_supported:
            raise AllocationError(
                f"program {problem.program!r} accesses the same virtual "
                "memory at multiple execution steps; a switch chain cannot "
                "host it (each hop has its own register arrays) — deploy on "
                "a recirculating single switch instead"
            )
        capped = False
        try:
            if isinstance(objective, Hierarchical):
                result = self._solve_hierarchical(problem)
            elif objective.linear:
                result = self._solve_linear(problem, objective, trace)
            else:
                result = self._solve_nonlinear(problem, objective)
        except SearchBudgetExceeded:
            result = None
            capped = True
        elapsed = time.perf_counter() - start
        if result is None:
            raise AllocationError(
                f"no feasible allocation for program {problem.program!r}"
                + (" (search budget exceeded)" if capped else "")
            )
        x, value, placement = result
        alloc = AllocationResult(
            x=x,
            objective_value=value,
            objective_name=objective.name,
            nodes_explored=self._nodes,
            solve_time_s=elapsed,
            capped=capped,
            memory_placement=placement,
        )
        alloc.finalize(self.spec)
        return alloc

    def rebind(
        self, problem: AllocationProblem, objective: Objective, trace
    ) -> AllocationResult | None:
        """Replay a recorded solve trace against the *current* view state.

        Returns an :class:`AllocationResult` guaranteed identical (same x,
        objective value, and memory placement) to what :meth:`solve` would
        produce right now, or ``None`` when the trace cannot prove that —
        the caller then falls back to a full solve.  The replay invariant:

        * ``"chain"``/``"bounds"`` rejections are occupancy-independent,
          so they are skipped without any recheck;
        * a ``"window"`` rejection is re-checked cheaply; if the pair is
          *still* window-infeasible a fresh solve would reject it at the
          same point, and if it resurrected (resources were freed) the
          replay conservatively bails out;
        * ``"dfs"`` rejections and the recorded winner re-run the real
          interior completion, so the first success during replay is the
          first success a fresh enumeration would find.
        """
        if isinstance(objective, Hierarchical) or not objective.linear:
            return None
        if not trace or trace[-1][2] != "win":
            return None
        domain = self.spec.num_logic_rpbs
        if problem.num_depths > domain:
            return None
        if problem.sequential_pairs and not self.spec.memory_revisit_supported:
            return None
        start = time.perf_counter()
        self._nodes = 0
        self._solve_serial += 1
        try:
            feasible = self._static_feasible_values(problem)
            if any(not feasible[d] for d in range(1, problem.num_depths + 1)):
                # A fresh solve would fail too; let it raise the real error.
                return None
            max_x = self._max_positions(problem)
            solution = None
            win_pair = None
            for x1, xl, reason in trace:
                if reason in ("chain", "bounds"):
                    continue
                if reason == "window":
                    if self._window_feasible(problem, x1, xl, feasible):
                        return None  # pair resurrected: full solve required
                    continue
                # "dfs" rejections and the winner need the real search.
                candidate, _reason = self._try_pair(problem, x1, xl, feasible, max_x)
                if candidate is not None:
                    solution, win_pair = candidate, (x1, xl)
                    break
                if reason == "win":
                    return None  # winner gone: pairs beyond the trace may win
        except SearchBudgetExceeded:
            return None
        if solution is None:
            return None
        x, placement = solution
        x1, xl = win_pair
        self._note_success(problem, objective, x1, xl)
        alloc = AllocationResult(
            x=x,
            objective_value=objective.value(x1, xl),
            objective_name=objective.name,
            nodes_explored=self._nodes,
            solve_time_s=time.perf_counter() - start,
            capped=False,
            memory_placement=placement,
            rebound=True,
        )
        alloc.finalize(self.spec)
        return alloc

    # -- linear objectives: best-first endpoint enumeration ------------------
    def _endpoint_pairs(self, problem: AllocationProblem):
        domain = self.spec.num_logic_rpbs
        length = problem.num_depths
        cached = self._pair_cache.get((domain, length))
        if cached is not None:
            # Copy: callers re-sort the list per objective.
            return list(cached)
        pairs = []
        if length == 1:
            pairs = [(v, v) for v in range(1, domain + 1)]
        else:
            for x1 in range(1, domain - length + 2):
                for xl in range(x1 + length - 1, domain + 1):
                    pairs.append((x1, xl))
        self._pair_cache[(domain, length)] = pairs
        return list(pairs)

    @staticmethod
    def _store_pair_order(key, pairs: tuple) -> None:
        _SORTED_PAIRS[key] = pairs
        while len(_SORTED_PAIRS) > SORTED_PAIRS_CAP:
            _SORTED_PAIRS.popitem(last=False)

    def _pair_iter(self, problem: AllocationProblem, objective: Objective):
        """Endpoint pairs in canonical best-first order, cheaply.

        The order — sort by ``(objective value, xl, -x1)`` — is a total
        order independent of occupancy, so it is cached process-wide per
        (domain, length, objective).  On a cache miss with a warm-start
        hint, only the head (pairs at-or-below the hint's objective value)
        is sorted eagerly; the tail is sorted lazily if ever reached, and
        head+tail — which *is* the canonical order — is then cached."""
        key = (self.spec.num_logic_rpbs, problem.num_depths, objective)
        cached = _SORTED_PAIRS.get(key)
        if cached is not None:
            _SORTED_PAIRS.move_to_end(key)
            return cached

        def sort_key(p):
            return (objective.value(p[0], p[1]), p[1], -p[0])

        base = self._endpoint_pairs(problem)
        hint = _LAST_SUCCESS.get(key)
        if hint is None:
            base.sort(key=sort_key)
            pairs = tuple(base)
            self._store_pair_order(key, pairs)
            return pairs
        return self._warm_pair_iter(key, base, sort_key, objective, hint)

    def _warm_pair_iter(self, key, base, sort_key, objective, hint):
        bound = objective.value(*hint)
        value = objective.value
        head = [p for p in base if value(p[0], p[1]) <= bound]
        head.sort(key=sort_key)
        yield from head
        tail = [p for p in base if value(p[0], p[1]) > bound]
        tail.sort(key=sort_key)
        self._store_pair_order(key, tuple(head + tail))
        yield from tail

    def _note_success(self, problem, objective, x1: int, xl: int) -> None:
        key = (self.spec.num_logic_rpbs, problem.num_depths, objective)
        _LAST_SUCCESS[key] = (x1, xl)
        _LAST_SUCCESS.move_to_end(key)
        while len(_LAST_SUCCESS) > LAST_SUCCESS_CAP:
            _LAST_SUCCESS.popitem(last=False)

    def _solve_linear(
        self,
        problem: AllocationProblem,
        objective: Objective,
        trace: list | None = None,
    ):
        feasible = self._static_feasible_values(problem)
        if any(not feasible[d] for d in range(1, problem.num_depths + 1)):
            return None  # some depth has no feasible RPB at all
        max_x = self._max_positions(problem)
        for x1, xl in self._pair_iter(problem, objective):
            solution, reason = self._try_pair(problem, x1, xl, feasible, max_x)
            if solution is not None:
                if trace is not None:
                    trace.append((x1, xl, "win"))
                self._note_success(problem, objective, x1, xl)
                return solution[0], objective.value(x1, xl), solution[1]
            if trace is not None:
                trace.append((x1, xl, reason))
        return None

    def _solve_hierarchical(self, problem: AllocationProblem):
        # Phase 1: minimize x_L.
        first = self._solve_linear(problem, f2())
        if first is None:
            return None
        xl_opt = first[0][-1]
        # Phase 2: maximize x_1 with x_L fixed at the phase-1 optimum.
        length = problem.num_depths
        best = None
        feasible = self._static_feasible_values(problem)
        for x1 in range(xl_opt - length + 1, 0, -1):
            solution = self._complete(problem, x1, xl_opt, feasible)
            if solution is not None:
                best = (solution[0], float(xl_opt * 1_000 - x1), solution[1])
                break
        return best

    def _max_positions(self, problem: AllocationProblem) -> list[int]:
        """Static per-depth upper bound on x, from the domain tail and the
        forwarding-on-ingress constraint, propagated backwards so that a
        capped later depth caps every earlier one too.

        Depends only on the (frozen, hashable) spec and the problem's
        length/forwarding shape, so the result is cached process-wide;
        callers treat the returned list as read-only."""
        key = (
            self.spec,
            problem.num_depths,
            tuple(sorted(problem.forwarding_depths)),
        )
        cached = _MAX_POSITIONS.get(key)
        if cached is not None:
            return cached
        domain = self.spec.num_logic_rpbs
        length = problem.num_depths
        max_x = [domain - (length - d) for d in range(1, length + 1)]
        largest_ingress = max(
            v for v in range(1, domain + 1) if self.spec.is_ingress(v)
        )
        for d in problem.forwarding_depths:
            max_x[d - 1] = min(max_x[d - 1], largest_ingress)
        for d in range(length - 1, 0, -1):
            max_x[d - 1] = min(max_x[d - 1], max_x[d] - 1)
        if len(_MAX_POSITIONS) >= 256:
            _MAX_POSITIONS.clear()
        _MAX_POSITIONS[key] = max_x
        return max_x

    # -- nonlinear objectives: generic branch and bound -----------------------
    def _solve_nonlinear(self, problem: AllocationProblem, objective: Objective):
        domain = self.spec.num_logic_rpbs
        length = problem.num_depths
        state = _SearchState(self.spec, self.view, problem)
        max_x = self._max_positions(problem)
        # Dominance pruning: a value whose physical RPB cannot host the
        # depth's static demand is dominated at *every* stage position it
        # could occupy, so the DFS never branches on it.  try_assign would
        # reject each such value anyway (its checks subsume the static
        # ones), so filtering keeps the search exact while skipping the
        # symmetric re-discovery of the same per-RPB infeasibility.
        feasible = self._static_feasible_values(problem)
        if any(not feasible[d] for d in range(1, length + 1)):
            return None
        best: list | None = None
        best_value = float("inf")
        x = [0] * length

        def candidates_for(depth: int, lo: int, hi: int) -> list[int]:
            values = feasible[depth]
            i = bisect.bisect_left(values, lo)
            j = bisect.bisect_right(values, hi)
            return values[i:j]

        def dfs(depth: int) -> None:
            nonlocal best, best_value
            if depth > length:
                value = objective.value(x[0], x[-1])
                if value < best_value - 1e-12:
                    best_value = value
                    best = list(x)
                return
            lo = x[depth - 2] + 1 if depth > 1 else 1
            hi = min(domain - (length - depth), max_x[depth - 1])
            # Depth 1 iterates descending: for ratio-style objectives a
            # large x_1 gives a strong incumbent immediately, so the bound
            # prunes most of the space (the search stays exact).
            span = candidates_for(depth, lo, hi)
            candidates = reversed(span) if depth == 1 else span
            for value in candidates:
                self._count_node()
                # Bound: x_L >= value + remaining depths; x_1 is fixed once
                # depth 1 is assigned.
                x1_bound = x[0] if depth > 1 else value
                xl_bound = value + (length - depth)
                if objective.value(x1_bound, xl_bound) >= best_value - 1e-12:
                    # The bound is monotone along each iteration direction,
                    # so no later candidate at this depth can do better.
                    break
                token = state.try_assign(depth, value, x)
                if token is None:
                    continue
                if not state.pair_forward_ok(depth, value, length, None):
                    state.undo(token)
                    continue
                x[depth - 1] = value
                dfs(depth + 1)
                state.undo(token)
                x[depth - 1] = 0

        dfs(1)
        if best is None:
            return None
        # Re-derive the memory placement for the winning vector.
        placement = self._placement_for(problem, best)
        return best, best_value, placement

    # -- static feasibility ----------------------------------------------------
    def _problem_shape(self, problem: AllocationProblem) -> tuple:
        return _shape_key(problem)

    def _value_tables(self) -> tuple[list[int], list[bool]]:
        if self._phys_of is None:
            domain = self.spec.num_logic_rpbs
            self._phys_of = [0] + [
                self.spec.physical_rpb(v) for v in range(1, domain + 1)
            ]
            self._ingress = [False] + [
                self.spec.is_ingress(v) for v in range(1, domain + 1)
            ]
        return self._phys_of, self._ingress

    def _depth_signatures(self, problem: AllocationProblem) -> list:
        """Per-depth (table-entry demand, memory sizes) signatures: the
        only inputs to per-physical-RPB feasibility.  Distinct depths with
        equal signatures share one per-RPB evaluation."""
        mids_at_depth: dict[int, list[str]] = {}
        for mid, depths in problem.memory_depths.items():
            for d in depths:
                mids_at_depth.setdefault(d, []).append(mid)
        sigs: list = [None]
        for depth in range(1, problem.num_depths + 1):
            sizes = tuple(
                sorted(problem.memory_sizes[mid] for mid in mids_at_depth.get(depth, ()))
            )
            sigs.append((problem.te_req.get(depth, 0), sizes))
        return sigs

    def _sig_phys_ok(self, sig) -> list[bool]:
        te, sizes = sig
        sizes_list = list(sizes)
        ok = [False] * (self.spec.num_rpbs + 1)
        for phys in range(1, self.spec.num_rpbs + 1):
            if te and te > self.view.free_entries(phys):
                continue
            if sizes_list and not self.view.can_allocate_memory(phys, sizes_list):
                continue
            ok[phys] = True
        return ok

    def _feasible_from_sigs(
        self, problem: AllocationProblem, sigs: list, sig_ok: dict
    ) -> list[list[int]]:
        domain = self.spec.num_logic_rpbs
        length = problem.num_depths
        phys_of, ingress = self._value_tables()
        forwarding_depths = problem.forwarding_depths
        feasible: list[list[int]] = [[] for _ in range(length + 1)]
        for depth in range(1, length + 1):
            ok = sig_ok[sigs[depth]]
            forwarding = depth in forwarding_depths
            row = feasible[depth]
            for value in range(depth, domain - (length - depth) + 1):
                if forwarding and not ingress[value]:
                    continue
                if ok[phys_of[value]]:
                    row.append(value)
        return feasible

    def _static_feasible_values(self, problem: AllocationProblem) -> list[list[int]]:
        """Per-depth sorted lists of logic RPBs passing the static
        (non-cumulative) constraints: forwarding-on-ingress, per-depth
        entry demand vs current free entries, and single-memory fit.
        Cached per problem shape.  Views exposing ``phys_versions()`` get
        delta refreshes — only changed physical RPBs are re-evaluated, and
        the lists are rebuilt only when a feasibility bit flipped; other
        generation-carrying views are invalidated wholesale on generation
        change (views with neither get a per-solve serial, so the cache
        still collapses a hierarchical solve's two phases).  Callers must
        not mutate the returned lists."""
        if not self.cache_enabled:
            return self._compute_static_feasible(problem)
        versions = None
        versions_of = getattr(self.view, "phys_versions", None)
        if versions_of is not None:
            versions = versions_of()
        generation = getattr(self.view, "generation", None)
        cache = (
            _shared_cache_for(self.view)
            if (generation is not None or versions is not None)
            else None
        )
        if cache is None:
            cache = self._local_cache
            versions = None
            generation = ("solve", self._solve_serial)
        key = _shape_key(problem)
        if versions is not None:
            entry = cache.by_shape.get(key)
            if entry is not None and entry.versions is not None:
                cache.by_shape.move_to_end(key)
                if entry.versions == versions:
                    self.cache_hits += 1
                    return entry.feasible
                self.cache_refreshes += 1
                return self._refresh_entry(problem, entry, versions)
            self.cache_misses += 1
            sigs = self._depth_signatures(problem)
            sig_ok = {sig: self._sig_phys_ok(sig) for sig in set(sigs[1:])}
            feasible = self._feasible_from_sigs(problem, sigs, sig_ok)
            cache.by_shape[key] = _ShapeEntry(feasible, versions, sig_ok)
            self._trim_shapes(cache)
            return feasible
        if cache.generation != generation:
            cache.by_shape.clear()
            cache.generation = generation
        entry = cache.by_shape.get(key)
        if entry is not None:
            self.cache_hits += 1
            cache.by_shape.move_to_end(key)
            return entry.feasible
        self.cache_misses += 1
        feasible = self._compute_static_feasible(problem)
        cache.by_shape[key] = _ShapeEntry(feasible)
        self._trim_shapes(cache)
        return feasible

    @staticmethod
    def _trim_shapes(cache: _FeasibleCache) -> None:
        while len(cache.by_shape) > FEASIBLE_SHAPE_CAP:
            cache.by_shape.popitem(last=False)

    def _refresh_entry(
        self, problem: AllocationProblem, entry: _ShapeEntry, versions: tuple
    ) -> list[list[int]]:
        """Delta refresh: re-evaluate only physical RPBs whose version
        moved; rebuild the per-depth lists only if a bit actually flipped
        (the common allocate path leaves plenty of slack, so most deltas
        change no feasibility bit and the lists are reused as-is)."""
        old = entry.versions
        changed = [
            phys
            for phys in range(1, self.spec.num_rpbs + 1)
            if old[phys] != versions[phys]
        ]
        dirty = False
        for sig, ok in entry.sig_ok.items():
            te, sizes = sig
            sizes_list = list(sizes)
            for phys in changed:
                new_ok = True
                if te and te > self.view.free_entries(phys):
                    new_ok = False
                elif sizes_list and not self.view.can_allocate_memory(phys, sizes_list):
                    new_ok = False
                if ok[phys] != new_ok:
                    ok[phys] = new_ok
                    dirty = True
        entry.versions = versions
        if dirty:
            sigs = self._depth_signatures(problem)
            entry.feasible = self._feasible_from_sigs(problem, sigs, entry.sig_ok)
        return entry.feasible

    def _compute_static_feasible(self, problem: AllocationProblem) -> list[list[int]]:
        sigs = self._depth_signatures(problem)
        sig_ok = {sig: self._sig_phys_ok(sig) for sig in set(sigs[1:])}
        return self._feasible_from_sigs(problem, sigs, sig_ok)

    def _window_feasible(
        self,
        problem: AllocationProblem,
        x1: int,
        xl: int,
        feasible: list[list[int]] | None = None,
    ) -> bool:
        """Cheap per-pair precheck: every depth's value window must contain
        at least one statically feasible logic RPB."""
        length = problem.num_depths
        if feasible is None:
            feasible = self._static_feasible_values(problem)
        for depth in range(1, length + 1):
            lo = x1 + depth - 1
            hi = xl - (length - depth)
            values = feasible[depth]
            index = bisect.bisect_left(values, lo)
            if index >= len(values) or values[index] > hi:
                return False
        return True

    def _pair_windows_feasible(self, problem: AllocationProblem, x1: int, xl: int) -> bool:
        """Endpoint pre-check for sequential same-memory pairs: for each
        (i, j), some ``x_i`` in depth i's window must admit an ``x_j`` at
        ``x_i + M*k`` inside depth j's window (== ``xl`` when j is last).
        Occupancy-independent: depends only on the problem and the spec."""
        period = self.spec.num_rpbs
        length = problem.num_depths
        max_k = self.spec.num_logic_rpbs // period
        # Chain bound: every depth touching one memory maps to the same
        # physical RPB, and distinct depths mean distinct logic RPBs —
        # i.e. distinct iterations — so m distinct access depths span at
        # least (m-1) full periods.  Pairwise checks miss this joint bound.
        for mid, depths in problem.memory_depths.items():
            chain = sorted(set(depths))
            if len(chain) < 2:
                continue
            first, last = chain[0], chain[-1]
            span = period * (len(chain) - 1)
            upper = xl if last == length else xl - (length - last)
            if x1 + first - 1 + span > upper:
                return False
        for i, j in problem.sequential_pairs:
            i_lo, i_hi = x1 + i - 1, xl - (length - i)
            j_lo = x1 + j - 1
            j_hi = xl if j == length else xl - (length - j)
            ok = False
            for k in range(1, max_k + 1):
                lo = max(i_lo + k * period, j_lo)
                hi = min(i_hi + k * period, j_hi)
                if j == length:
                    if lo <= xl <= hi:
                        ok = True
                        break
                elif lo <= hi:
                    ok = True
                    break
            if not ok:
                return False
        return True

    #: Interior-search budget per endpoint pair.  Pairs that pass the cheap
    #: prechecks can still be infeasible on *cumulative* per-RPB entry
    #: pressure, which only the DFS discovers; without a per-pair cap such
    #: pairs explore the interior combinatorially near saturation.  A
    #: capped pair is treated as infeasible and the enumeration moves to
    #: the next-best pair, so the solver stays complete-in-practice while
    #: each allocation stays sub-second.
    MAX_NODES_PER_PAIR = 2_000

    def _complete(
        self,
        problem: AllocationProblem,
        x1: int,
        xl: int,
        feasible: list[list[int]] | None = None,
    ):
        """Search for a feasible x with fixed endpoints; returns (x, placement)."""
        solution, _reason = self._try_pair(problem, x1, xl, feasible)
        return solution

    def _try_pair(
        self,
        problem: AllocationProblem,
        x1: int,
        xl: int,
        feasible: list[list[int]] | None = None,
        max_x: list[int] | None = None,
    ):
        """One endpoint pair's full decision: ``(solution, reason)``.

        ``solution`` is ``(x, placement)`` or ``None``; the rejection
        ``reason`` classifies what replay must re-verify: ``"window"`` and
        ``"dfs"`` depend on occupancy, ``"chain"`` and ``"bounds"`` only on
        the problem shape and the spec."""
        if feasible is None:
            feasible = self._static_feasible_values(problem)
        if not self._window_feasible(problem, x1, xl, feasible):
            return None, "window"
        if problem.sequential_pairs and not self._pair_windows_feasible(
            problem, x1, xl
        ):
            return None, "chain"
        length = problem.num_depths
        if max_x is None:
            max_x = self._max_positions(problem)
        if any(x1 + d - 1 > max_x[d - 1] for d in range(1, length + 1)):
            return None, "bounds"
        state = _SearchState(self.spec, self.view, problem)
        x = [0] * length
        pair_budget = [self.MAX_NODES_PER_PAIR]

        class _PairBudgetExceeded(Exception):
            pass

        def dfs(depth: int) -> bool:
            if depth > length:
                return True
            if depth == 1:
                candidates: range | tuple = (x1,) if x1 <= max_x[0] else ()
            elif depth == length:
                candidates = (xl,) if xl > x[depth - 2] else ()
            else:
                hi = min(xl - (length - depth), max_x[depth - 1])
                candidates = range(x[depth - 2] + 1, hi + 1)
            for value in candidates:
                self._count_node()
                pair_budget[0] -= 1
                if pair_budget[0] <= 0:
                    raise _PairBudgetExceeded
                token = state.try_assign(depth, value, x)
                if token is None:
                    continue
                if not state.pair_forward_ok(depth, value, length, xl):
                    state.undo(token)
                    continue
                x[depth - 1] = value
                if dfs(depth + 1):
                    return True
                state.undo(token)
                x[depth - 1] = 0
            return False

        try:
            if dfs(1):
                return (list(x), dict(state.mid_phys)), "win"
        except _PairBudgetExceeded:
            return None, "dfs"
        return None, "dfs"

    def _placement_for(self, problem: AllocationProblem, x: list[int]) -> dict[str, int]:
        placement: dict[str, int] = {}
        for mid, depths in problem.memory_depths.items():
            placement[mid] = self.spec.physical_rpb(x[depths[0] - 1])
        return placement

    def _count_node(self) -> None:
        self._nodes += 1
        if self._nodes > self.max_nodes:
            raise SearchBudgetExceeded
