"""Register-semantics classification for the flow-sharded engine.

The sharded engine (:mod:`repro.engine`) runs N full switch replicas and
routes packets to them by flow hash.  Whether a deployed program may run
*data-parallel* across shards hinges on its stateful ALU usage: a memory
op whose bucket updates commute (MEMADD, MEMSUB, MEMOR, MEMAND, MEMMAX —
see :data:`repro.rmt.salu.MERGE_SEMANTICS`) leaves each shard holding a
partial aggregate that a cross-shard merge can fold back into the exact
single-process value.  Two things break that:

* a **non-commutative** op (MEMWRITE's blind store — last-writer-wins
  order across shards is undefined);
* an **observed output**: every mergeable op also returns a value to the
  PHV (``sar``).  On a shard that value reflects only the shard's partial
  state, so if any downstream op *reads* it (a BRANCH on ``sar``, a
  MODIFY into a header, a MIN against a threshold...) the program's
  visible behaviour would diverge from single-process execution.  The
  compiler's register-lifetime analysis (:mod:`repro.compiler.liveness`)
  already computes exactly this: the op is safe iff ``sar`` is not
  live-out at it.

Programs classify into three tiers:

* ``stateless`` — no memory ops at all; trivially data-parallel;
* ``mergeable`` — every memory op commutes and is unobserved, and each
  memory block is touched by ops of one merge kind only;
* ``pinned`` — anything else; the engine's placement map assigns the
  whole program to a single owning shard so its read-modify-write state
  stays sequential.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.ast import ArgKind
from ..rmt.salu import MEMORY_OPS, MERGE_SEMANTICS
from .ir import ProgramIR
from .liveness import compute_live_out

#: Merge kinds that never mutate the bucket: observing their output is
#: safe because replicas stay identical (all writes arrive via the
#: control plane, which fans out to every shard).
_PURE_READ_KINDS = frozenset({"read"})

STATELESS = "stateless"
MERGEABLE = "mergeable"
PINNED = "pinned"


@dataclass(frozen=True)
class MemoryOpInfo:
    """One memory op's shard-parallel safety verdict."""

    op: str
    mid: str
    #: the op's PHV output (``sar``) is read downstream
    observed: bool
    #: merge kind if the op is shard-safe, else None
    merge_kind: str | None


@dataclass(frozen=True)
class RegisterSemantics:
    """Whole-program register semantics, derived from the translated IR."""

    tier: str
    #: mid -> merge kind; a mid maps to None when any op on it is unsafe
    memories: dict[str, str | None]
    ops: tuple[MemoryOpInfo, ...]

    @property
    def data_parallel(self) -> bool:
        return self.tier in (STATELESS, MERGEABLE)


def _memory_arg(op) -> str:
    for arg in op.args:
        if arg.kind is ArgKind.MEMORY:
            return str(arg.value)
    raise ValueError(f"memory op {op.name!r} has no memory argument")


def classify(ir: ProgramIR) -> RegisterSemantics:
    """Classify a translated program's stateful-register semantics.

    Must run on the *post-translation* IR (pseudo primitives expanded,
    OFFSET/BACKUP/RESTORE inserted) — that is the op sequence the data
    plane executes, and the liveness model covers exactly those ops.
    """
    live_out = compute_live_out(ir)
    ops: list[MemoryOpInfo] = []
    memories: dict[str, str | None] = {}
    for op in ir.walk_ops():
        if op.name not in MEMORY_OPS:
            continue
        mid = _memory_arg(op)
        kind = MERGE_SEMANTICS[op.name]
        observed = "sar" in live_out[id(op)]
        safe_kind = kind
        if kind is None or (observed and kind not in _PURE_READ_KINDS):
            safe_kind = None
        ops.append(MemoryOpInfo(op.name, mid, observed, safe_kind))
        if mid not in memories:
            memories[mid] = safe_kind
        elif memories[mid] != safe_kind:
            # Mixed kinds on one block (e.g. MEMADD + MEMREAD): the merge
            # would need to reconcile two different monoids — give up.
            memories[mid] = None

    if not ops:
        return RegisterSemantics(STATELESS, {}, ())
    tier = (
        MERGEABLE
        if all(kind is not None for kind in memories.values())
        else PINNED
    )
    return RegisterSemantics(tier, memories, tuple(ops))
