"""Compiler intermediate representation: branch-path trees of operations.

A parsed program becomes a tree of :class:`Path` objects — one per branch
context — whose operations carry *depths*: the execution-dependency index of
Fig. 5 ("the depth of the AST node refers to the primitive execution
dependency").  Primitives from different branches may share a depth; the
allocator later maps each depth to one logic RPB.

Branch IDs reproduce the data plane's program-local branch flag (§4.1.2):
the root path is branch 0, and each case block of each BRANCH gets a fresh
branch ID that its body's operations carry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.ast import (
    Arg,
    ArgKind,
    Branch,
    Condition,
    Primitive,
    ProgramDecl,
    Stmt,
)
from ..lang.primitives import Category, get as get_spec


@dataclass
class CaseInfo:
    """One case of a BRANCH op: conditions plus the child path it opens."""

    conditions: list[Condition]
    target_branch: int
    path: "Path"


@dataclass
class Op:
    """One primitive instance placed in a branch context."""

    name: str
    args: tuple[Arg, ...] = ()
    branch_id: int = 0
    depth: int = 0
    cases: list[CaseInfo] | None = None  # BRANCH only
    line: int = 0

    @property
    def is_branch(self) -> bool:
        return self.cases is not None

    @property
    def category(self) -> Category:
        return get_spec(self.name).category

    def memory_id(self) -> str | None:
        """The memory identifier this op references, if any."""
        for arg in self.args:
            if arg.kind is ArgKind.MEMORY:
                return str(arg.value)
        return None

    def __str__(self) -> str:
        if self.is_branch:
            return f"BRANCH[{len(self.cases or [])} cases]@{self.depth}"
        args = ", ".join(str(a) for a in self.args)
        return f"{self.name}({args})@{self.depth}b{self.branch_id}"


@dataclass
class Path:
    """A linear sequence of ops executed under one branch ID."""

    branch_id: int
    ops: list[Op] = field(default_factory=list)


@dataclass
class ProgramIR:
    """The whole program as a path tree plus bookkeeping."""

    name: str
    root: Path
    num_branches: int  # total branch IDs assigned (root included)

    def walk_paths(self):
        """Yield every path, parents before children."""
        stack = [self.root]
        while stack:
            path = stack.pop()
            yield path
            for op in path.ops:
                if op.cases:
                    stack.extend(case.path for case in op.cases)

    def walk_ops(self):
        """Yield every op across all paths."""
        for path in self.walk_paths():
            yield from path.ops

    def max_depth(self) -> int:
        return max((op.depth for op in self.walk_ops()), default=0)

    def levels(self) -> dict[int, list[Op]]:
        """Ops grouped by depth, 1-based contiguous."""
        by_depth: dict[int, list[Op]] = {}
        for op in self.walk_ops():
            by_depth.setdefault(op.depth, []).append(op)
        return dict(sorted(by_depth.items()))


def build_ir(program: ProgramDecl) -> ProgramIR:
    """Lower a checked AST into the path-tree IR (no depths yet)."""
    counter = _BranchCounter()
    root = _build_path(program.body, branch_id=0, counter=counter)
    return ProgramIR(program.name, root, counter.next_id)


class _BranchCounter:
    def __init__(self) -> None:
        self.next_id = 1

    def fresh(self) -> int:
        bid = self.next_id
        self.next_id += 1
        return bid


def _build_path(body: list[Stmt], branch_id: int, counter: _BranchCounter) -> Path:
    path = Path(branch_id)
    for stmt in body:
        if isinstance(stmt, Branch):
            cases = []
            for case in stmt.cases:
                child_id = counter.fresh()
                child = _build_path(case.body, child_id, counter)
                cases.append(CaseInfo(case.conditions, child_id, child))
            path.ops.append(Op("BRANCH", (), branch_id, cases=cases, line=stmt.line))
        else:
            assert isinstance(stmt, Primitive)
            path.ops.append(Op(stmt.name, stmt.args, branch_id, line=stmt.line))
    return path


def assign_depths(ir: ProgramIR) -> None:
    """Assign consecutive depths along each path.

    A path's first op executes one step after the BRANCH that opened it;
    ops following a BRANCH in the *same* path also continue one step after
    it (they are the no-case-matched continuation, e.g. the cache-miss
    FORWARD of Fig. 2).
    """

    def walk(path: Path, start_depth: int) -> None:
        depth = start_depth
        for op in path.ops:
            op.depth = depth
            if op.cases:
                for case in op.cases:
                    walk(case.path, depth + 1)
            depth += 1

    walk(ir.root, 1)
