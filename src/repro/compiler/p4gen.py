"""Emit standalone P4₁₆ for a P4runpro program.

Table 1 compares each P4runpro program's LoC with the control block of a
conventional P4 implementation.  This module makes that comparison
*measurable* in the reproduction: it compiles a checked P4runpro AST into
the equivalent conventional-P4 control block — match-action tables for
each BRANCH, actions for each primitive sequence, `Register` externs plus
`RegisterAction`s for each declared memory, hash externs, and an apply
block mirroring the control flow.

The output targets the v1model-ish dialect the paper's references use.
No P4 compiler exists in this environment, so the emitter's contract is
structural: balanced and well-formed code whose LoC ratio against the
P4runpro source reproduces Table 1's expansion factor (roughly 2-5x).
That contract is enforced by tests with a small structural checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.ast import (
    Branch,
    Primitive,
    ProgramDecl,
    SourceUnit,
    Stmt,
)

_HEADER_TYPES = {
    "eth": "ethernet_t",
    "ipv4": "ipv4_t",
    "tcp": "tcp_t",
    "udp": "udp_t",
    "nc": "nc_t",
    "calc": "calc_t",
    "tun": "tun_t",
}


@dataclass
class _Emitter:
    unit: SourceUnit
    program: ProgramDecl
    lines: list[str] = field(default_factory=list)
    indent: int = 0
    _table_counter: int = 0
    _action_counter: int = 0

    def emit(self, text: str = "") -> None:
        self.lines.append(("    " * self.indent + text).rstrip())

    def block(self, header: str):
        emitter = self

        class _Block:
            def __enter__(self):
                emitter.emit(header + " {")
                emitter.indent += 1

            def __exit__(self, *exc):
                emitter.indent -= 1
                emitter.emit("}")

        return _Block()

    def fresh(self, kind: str) -> str:
        if kind == "table":
            self._table_counter += 1
            return f"{self.program.name}_branch_{self._table_counter}"
        self._action_counter += 1
        return f"{self.program.name}_act_{self._action_counter}"


def _field_ref(name: str) -> str:
    """hdr.ipv4.dst -> hdr.ipv4.dst; meta.x -> ig_md.x (P4 style)."""
    if name.startswith("meta."):
        return "ig_md." + name.split(".", 1)[1]
    return name


def _reg_ref(reg: str) -> str:
    return f"ig_md.{reg}"


def _emit_memory_externs(emitter: _Emitter) -> None:
    for decl in emitter.unit.memories:
        emitter.emit(f"Register<bit<32>, bit<32>>({decl.size}) {decl.name};")
        for op, body in (
            ("read", ["value = stored;"]),
            ("write", ["stored = value;"]),
            ("add", ["stored = stored + value;", "value = stored;"]),
            ("max", ["stored = max(stored, value);", "value = stored;"]),
            (
                "or",
                ["bit<32> old = stored;", "stored = stored | value;", "value = old;"],
            ),
        ):
            emitter.emit(
                f"RegisterAction<bit<32>, bit<32>, bit<32>>({decl.name}) "
                f"{decl.name}_{op} = {{"
            )
            emitter.indent += 1
            emitter.emit("void apply(inout bit<32> stored, out bit<32> value) {")
            emitter.indent += 1
            for stmt in body:
                emitter.emit(stmt)
            emitter.indent -= 1
            emitter.emit("}")
            emitter.indent -= 1
            emitter.emit("};")
        emitter.emit()


def _emit_primitive(emitter: _Emitter, prim: Primitive) -> None:
    name = prim.name
    args = prim.args
    if name == "EXTRACT":
        emitter.emit(f"{_reg_ref(str(args[1].value))} = (bit<32>){_field_ref(str(args[0].value))};")
    elif name == "MODIFY":
        field_name = _field_ref(str(args[0].value))
        emitter.emit(f"{field_name} = (bit<32>){_reg_ref(str(args[1].value))};")
    elif name == "HASH_5_TUPLE":
        emitter.emit(
            "ig_md.har = (bit<32>)hash_unit.get({hdr.ipv4.src, hdr.ipv4.dst, "
            "hdr.ipv4.proto, ig_md.l4_sport, ig_md.l4_dport});"
        )
    elif name == "HASH":
        emitter.emit("ig_md.har = (bit<32>)hash_unit.get({ig_md.har});")
    elif name in ("HASH_5_TUPLE_MEM", "HASH_MEM"):
        mid = str(args[0].value)
        decl = emitter.unit.memory(mid)
        mask = (decl.size - 1) if decl else 0
        source = (
            "{hdr.ipv4.src, hdr.ipv4.dst, hdr.ipv4.proto, ig_md.l4_sport, ig_md.l4_dport}"
            if name == "HASH_5_TUPLE_MEM"
            else "{ig_md.har}"
        )
        emitter.emit(f"ig_md.mar = (bit<32>)hash_unit.get({source}) & 32w{mask};")
    elif name in ("MEMREAD", "MEMWRITE", "MEMADD", "MEMMAX", "MEMOR", "MEMAND", "MEMSUB"):
        mid = str(args[0].value)
        op = {
            "MEMREAD": "read",
            "MEMWRITE": "write",
            "MEMADD": "add",
            "MEMMAX": "max",
            "MEMOR": "or",
            "MEMAND": "add",  # modelled via the generic RMW form
            "MEMSUB": "add",
        }[name]
        emitter.emit(f"ig_md.sar = {mid}_{op}.execute(ig_md.mar);")
    elif name == "LOADI":
        emitter.emit(f"{_reg_ref(str(args[0].value))} = 32w{int(args[1].value)};")
    elif name in ("ADD", "AND", "OR", "XOR", "MAX", "MIN"):
        op = {"ADD": "+", "AND": "&", "OR": "|", "XOR": "^"}.get(name)
        reg0 = _reg_ref(str(args[0].value))
        reg1 = _reg_ref(str(args[1].value))
        if op:
            emitter.emit(f"{reg0} = {reg0} {op} {reg1};")
        else:
            emitter.emit(f"{reg0} = {name.lower()}({reg0}, {reg1});")
    elif name in ("MOVE", "NOT", "SUB", "EQUAL", "SGT", "SLT", "ADDI", "ANDI", "XORI", "SUBI"):
        # Pseudo primitives map 1:1 onto conventional P4 expressions.
        reg0 = _reg_ref(str(args[0].value))
        if name == "MOVE":
            emitter.emit(f"{reg0} = {_reg_ref(str(args[1].value))};")
        elif name == "NOT":
            emitter.emit(f"{reg0} = ~{reg0};")
        elif name in ("SUB", "EQUAL", "SGT", "SLT"):
            reg1 = _reg_ref(str(args[1].value))
            expr = {
                "SUB": f"{reg0} - {reg1}",
                "EQUAL": f"{reg0} ^ {reg1}",
                "SGT": f"({reg0} >= {reg1}) ? 32w0 : 32w1",
                "SLT": f"({reg0} <= {reg1}) ? 32w0 : 32w1",
            }[name]
            emitter.emit(f"{reg0} = {expr};")
        else:
            imm = int(args[1].value)
            op = {"ADDI": "+", "ANDI": "&", "XORI": "^", "SUBI": "-"}[name]
            emitter.emit(f"{reg0} = {reg0} {op} 32w{imm};")
    elif name == "FORWARD":
        emitter.emit(f"ig_intr_tm_md.ucast_egress_port = 9w{int(args[0].value)};")
    elif name == "DROP":
        emitter.emit("ig_intr_dprsr_md.drop_ctl = 1;")
    elif name == "RETURN":
        emitter.emit("ig_intr_tm_md.ucast_egress_port = ig_intr_md.ingress_port;")
    elif name == "REPORT":
        emitter.emit("ig_intr_tm_md.copy_to_cpu = 1;")
    elif name == "MULTICAST":
        emitter.emit(f"ig_intr_tm_md.mcast_grp_a = 16w{int(args[0].value)};")
    else:  # pragma: no cover - registry guards this
        raise ValueError(f"cannot emit P4 for {name!r}")


def _emit_branch(emitter: _Emitter, branch: Branch, tables: list[str]) -> None:
    """A BRANCH becomes a ternary table over the three registers whose
    actions set a branch result, plus an if/else ladder in apply()."""
    table = emitter.fresh("table")
    tables.append(table)
    actions = []
    for index, case in enumerate(branch.cases):
        action = emitter.fresh("action")
        actions.append(action)
        with emitter.block(f"action {action}()"):
            emitter.emit(f"ig_md.branch_result = 8w{index + 1};")
    with emitter.block(f"table {table}"):
        with emitter.block("key ="):
            emitter.emit("ig_md.har : ternary;")
            emitter.emit("ig_md.sar : ternary;")
            emitter.emit("ig_md.mar : ternary;")
        with emitter.block("actions ="):
            for action in actions:
                emitter.emit(f"{action};")
            emitter.emit("NoAction;")
        emitter.emit("const default_action = NoAction;")
        emitter.emit(f"size = {max(len(branch.cases) * 2, 16)};")


def _collect_branches(emitter: _Emitter, body: list[Stmt], tables: list[str]) -> None:
    for stmt in body:
        if isinstance(stmt, Branch):
            _emit_branch(emitter, stmt, tables)
            for case in stmt.cases:
                _collect_branches(emitter, case.body, tables)


def _emit_apply_body(emitter: _Emitter, body: list[Stmt], table_iter) -> None:
    for stmt in body:
        if isinstance(stmt, Branch):
            table = next(table_iter)
            emitter.emit(f"{table}.apply();")
            for index, case in enumerate(stmt.cases):
                keyword = "if" if index == 0 else "} else if"
                emitter.emit(f"{keyword} (ig_md.branch_result == 8w{index + 1}) {{")
                emitter.indent += 1
                _emit_apply_body(emitter, case.body, table_iter)
                emitter.indent -= 1
            emitter.emit("} else {")
            emitter.indent += 1
        else:
            assert isinstance(stmt, Primitive)
            _emit_primitive(emitter, stmt)
    # Close the dangling else-chains opened by branches in this body.
    for stmt in body:
        if isinstance(stmt, Branch):
            emitter.indent -= 1
            emitter.emit("}")


def emit_p4(unit: SourceUnit, program: ProgramDecl) -> str:
    """Generate the conventional-P4 control block for one program."""
    emitter = _Emitter(unit, program)
    emitter.emit(f"// conventional P4 equivalent of P4runpro program '{program.name}'")
    emitter.emit("// generated by repro.compiler.p4gen")
    emitter.emit()
    with emitter.block(
        f"control {program.name.capitalize()}Ingress(inout header_t hdr, "
        "inout metadata_t ig_md,\n"
        "        in ingress_intrinsic_metadata_t ig_intr_md,\n"
        "        inout ingress_intrinsic_metadata_for_deparser_t ig_intr_dprsr_md,\n"
        "        inout ingress_intrinsic_metadata_for_tm_t ig_intr_tm_md)"
    ):
        emitter.emit("Hash<bit<16>>(HashAlgorithm_t.CRC16) hash_unit;")
        emitter.emit()
        _emit_memory_externs(emitter)
        tables: list[str] = []
        _collect_branches(emitter, program.body, tables)
        emitter.emit()
        with emitter.block("apply"):
            # The traffic filter becomes a guard over the whole block.
            conditions = " && ".join(
                f"({_field_ref(flt.field)} & {flt.mask:#x}) == {flt.value:#x}"
                for flt in program.filters
            )
            with emitter.block(f"if ({conditions})"):
                _emit_apply_body(emitter, program.body, iter(tables))
    return "\n".join(emitter.lines) + "\n"


def p4_loc(text: str) -> int:
    """LoC of generated P4 the way Table 1 counts: non-blank, non-comment,
    non-brace-only lines."""
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("//"):
            continue
        if stripped in ("{", "}", "};", "} else {"):
            continue
        count += 1
    return count


def check_structure(text: str) -> list[str]:
    """A small structural linter for emitted P4: balanced braces, every
    statement line terminated, tables/actions referenced before use.
    Returns a list of problems (empty = clean)."""
    problems = []
    depth = 0
    for number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        depth += line.count("{") - line.count("}")
        if depth < 0:
            problems.append(f"line {number}: unbalanced closing brace")
        if (
            stripped
            and not stripped.startswith("//")
            and not stripped.endswith(("{", "}", ";", "};", ","))
        ):
            problems.append(f"line {number}: unterminated statement: {stripped!r}")
    if depth != 0:
        problems.append(f"unbalanced braces at end of file (depth {depth})")
    return problems
