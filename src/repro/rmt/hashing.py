"""Hash units: table-driven CRC engines like Tofino's hash distribution units.

The case studies (paper §6.4) rely on standard CRC-16 variants —
``crc_16_buypass``, ``crc_16_mcrf4xx``, ``crc_aug_ccitt``,
``crc_16_dds_110`` — and on the property that *truncating* a uniform hash's
output (the paper's mask-based address translation) has the same collision
behaviour as a natively narrower hash.  We implement a generic parametric
CRC so all four variants (plus CRC-32 for wider needs) are bit-exact with
their published parameterizations.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache


def _reflect(value: int, width: int) -> int:
    out = 0
    for _ in range(width):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


@dataclass(frozen=True)
class CRCParams:
    """Rocksoft-model CRC parameterization."""

    name: str
    width: int
    poly: int
    init: int
    refin: bool
    refout: bool
    xorout: int


#: The CRC variants exposed as selectable hash units.
CRC_CATALOG: dict[str, CRCParams] = {
    "crc_16_buypass": CRCParams("crc_16_buypass", 16, 0x8005, 0x0000, False, False, 0x0000),
    "crc_16_mcrf4xx": CRCParams("crc_16_mcrf4xx", 16, 0x1021, 0xFFFF, True, True, 0x0000),
    "crc_aug_ccitt": CRCParams("crc_aug_ccitt", 16, 0x1021, 0x1D0F, False, False, 0x0000),
    "crc_16_dds_110": CRCParams("crc_16_dds_110", 16, 0x8005, 0x800D, False, False, 0x0000),
    "crc_32": CRCParams("crc_32", 32, 0x04C11DB7, 0xFFFFFFFF, True, True, 0xFFFFFFFF),
}


@lru_cache(maxsize=None)
def _crc_table(poly: int, width: int, refin: bool) -> tuple[int, ...]:
    """Byte-at-a-time CRC table for the given polynomial."""
    top = 1 << (width - 1)
    mask = (1 << width) - 1
    table = []
    for byte in range(256):
        if refin:
            byte = _reflect(byte, 8)
        crc = byte << (width - 8)
        for _ in range(8):
            crc = ((crc << 1) ^ poly) if crc & top else (crc << 1)
        crc &= mask
        if refin:
            crc = _reflect(crc, width)
        table.append(crc)
    return tuple(table)


def crc(data: bytes, params: CRCParams) -> int:
    """Compute a CRC over ``data`` with the given parameterization."""
    mask = (1 << params.width) - 1
    table = _crc_table(params.poly, params.width, params.refin)
    crc_val = params.init
    if params.refin:
        crc_val = _reflect(crc_val, params.width)
        for byte in data:
            crc_val = (crc_val >> 8) ^ table[(crc_val ^ byte) & 0xFF]
    else:
        shift = params.width - 8
        for byte in data:
            crc_val = ((crc_val << 8) & mask) ^ table[((crc_val >> shift) ^ byte) & 0xFF]
    if params.refin != params.refout:
        crc_val = _reflect(crc_val, params.width)
    return (crc_val ^ params.xorout) & mask


class HashUnit:
    """One hardware hash unit configured with a CRC variant.

    Inputs are integers (PHV field values); they are serialized big-endian
    into a fixed number of bytes per operand so the hash is deterministic.
    """

    def __init__(self, algorithm: str = "crc_16_buypass"):
        if algorithm not in CRC_CATALOG:
            raise ValueError(f"unknown hash algorithm {algorithm!r}")
        self.params = CRC_CATALOG[algorithm]

    @property
    def output_width(self) -> int:
        return self.params.width

    def hash_values(self, values: tuple[int, ...], widths: tuple[int, ...] | None = None) -> int:
        """Hash a tuple of integer operands."""
        if widths is None:
            widths = tuple(32 for _ in values)
        data = bytearray()
        for value, width in zip(values, widths):
            nbytes = (width + 7) // 8
            data += int(value).to_bytes(nbytes, "big")
        return crc(bytes(data), self.params)

    def hash_five_tuple(self, five_tuple: tuple[int, int, int, int, int]) -> int:
        return self.hash_values(five_tuple, (32, 32, 8, 16, 16))
