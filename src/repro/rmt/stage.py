"""Pipeline stages.

A stage is the unit of hardware the allocator reasons about: it hosts
logical tables (match-action units), register arrays behind SALUs, and hash
units, all drawing on the stage's fixed resource budget (SRAM/TCAM blocks,
VLIW instruction slots, SALUs, hash units, logical table IDs).

The data plane built on top (P4runpro blocks, or a baseline's tables)
attaches :class:`LogicalUnit` objects to stages; the pipeline applies each
stage's units in order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .hashing import HashUnit
from .phv import PHV
from .salu import RegisterArray


class StageResourceError(RuntimeError):
    """Raised when attaching hardware past the stage's budget."""


@dataclass
class StageBudget:
    """Per-stage hardware budget (Tofino-like defaults).

    ``vliw_slots`` counts VLIW action-instruction words; ``tcam_blocks`` and
    ``sram_blocks`` count memory blocks; a register array of N 32-bit
    buckets consumes ``ceil(N / sram_bucket_per_block)`` SRAM blocks.
    """

    sram_blocks: int = 80
    tcam_blocks: int = 24
    vliw_slots: int = 32
    salus: int = 4
    hash_units: int = 6
    ltids: int = 16
    sram_bucket_per_block: int = 4096  # 32-bit buckets per SRAM block
    tcam_entries_per_block: int = 512
    tcam_block_key_bits: int = 44  # wider keys gang blocks side by side


@dataclass
class StageUsage:
    sram_blocks: int = 0
    tcam_blocks: int = 0
    vliw_slots: int = 0
    salus: int = 0
    hash_units: int = 0
    ltids: int = 0


class LogicalUnit:
    """Base class for anything attached to a stage that processes packets."""

    name: str = "unit"

    def apply(self, phv: PHV, stage: "Stage") -> None:  # pragma: no cover
        raise NotImplementedError


@dataclass
class Stage:
    """One physical match-action stage."""

    index: int
    gress: str  # "ingress" | "egress"
    budget: StageBudget = field(default_factory=StageBudget)

    def __post_init__(self) -> None:
        self.units: list[LogicalUnit] = []
        self.register_arrays: dict[str, RegisterArray] = {}
        self.hash_units: dict[str, HashUnit] = {}
        self.usage = StageUsage()
        #: owning pipeline, set on pipeline construction; attaching a unit
        #: invalidates the pipeline's compiled unit program
        self.pipeline = None

    # -- attachment with resource accounting -------------------------------
    def attach_unit(
        self,
        unit: LogicalUnit,
        *,
        tcam_entries: int = 0,
        key_bits: int = 44,
        vliw_slots: int = 0,
        ltids: int = 1,
    ) -> None:
        if tcam_entries:
            rows = -(-tcam_entries // self.budget.tcam_entries_per_block)
            width = -(-key_bits // self.budget.tcam_block_key_bits)
            tcam_blocks = rows * width
        else:
            tcam_blocks = 0
        if self.usage.tcam_blocks + tcam_blocks > self.budget.tcam_blocks:
            raise StageResourceError(f"stage {self.gress}[{self.index}]: TCAM budget exceeded")
        if self.usage.vliw_slots + vliw_slots > self.budget.vliw_slots:
            raise StageResourceError(f"stage {self.gress}[{self.index}]: VLIW budget exceeded")
        if self.usage.ltids + ltids > self.budget.ltids:
            raise StageResourceError(f"stage {self.gress}[{self.index}]: LTID budget exceeded")
        self.usage.tcam_blocks += tcam_blocks
        self.usage.vliw_slots += vliw_slots
        self.usage.ltids += ltids
        self.units.append(unit)
        if self.pipeline is not None:
            self.pipeline.invalidate_compiled()

    def attach_register_array(self, array: RegisterArray) -> None:
        blocks = -(-array.size // self.budget.sram_bucket_per_block)
        if self.usage.sram_blocks + blocks > self.budget.sram_blocks:
            raise StageResourceError(f"stage {self.gress}[{self.index}]: SRAM budget exceeded")
        if self.usage.salus + 1 > self.budget.salus:
            raise StageResourceError(f"stage {self.gress}[{self.index}]: SALU budget exceeded")
        self.usage.sram_blocks += blocks
        self.usage.salus += 1
        self.register_arrays[array.name] = array

    def attach_hash_unit(self, name: str, unit: HashUnit) -> None:
        if self.usage.hash_units + 1 > self.budget.hash_units:
            raise StageResourceError(f"stage {self.gress}[{self.index}]: hash budget exceeded")
        self.usage.hash_units += 1
        self.hash_units[name] = unit

    # -- packet processing --------------------------------------------------
    def process(self, phv: PHV) -> None:
        for unit in self.units:
            unit.apply(phv, self)
