"""A pure-Python RMT programmable-switch ASIC simulator.

This package is the hardware substrate the P4runpro reproduction runs on:
PHV containers, a programmable parser, ternary match-action tables, VLIW
action slots, stateful ALUs over SRAM register arrays, CRC hash units, an
ingress/egress pipeline pair with a traffic manager, recirculation, and a
static resource/latency/power model.
"""

from .fields import FieldSpec, UnknownFieldError, lookup, register_header
from .hashing import CRC_CATALOG, HashUnit
from .packet import (
    NC_READ,
    NC_WRITE,
    Packet,
    make_cache,
    make_calc,
    make_ipv4,
    make_l2,
    make_tcp,
    make_udp,
)
from .parser import ParseMachine, ParseState, default_parse_machine
from .phv import PHV, PHVLayout, PHVOverflowError
from .pipeline import (
    CPU_PORT,
    RECIRC_PORT,
    Pipeline,
    RecirculationLimitError,
    Switch,
    SwitchConfig,
    SwitchResult,
    TrafficManager,
    Verdict,
)
from .queueing import CELL_BYTES, PortQueue, QueueModel
from .salu import MEMORY_OPS, MemoryOutOfRangeError, RegisterArray
from .stage import LogicalUnit, Stage, StageBudget, StageResourceError
from .wire import (
    WireFormatError,
    deserialize,
    load_pcap,
    save_pcap,
    serialize,
)
from .table import (
    EntryNotFoundError,
    MatchActionTable,
    TableEntry,
    TableFullError,
    TernaryKey,
)

__all__ = [
    "CELL_BYTES",
    "CPU_PORT",
    "CRC_CATALOG",
    "EntryNotFoundError",
    "FieldSpec",
    "HashUnit",
    "LogicalUnit",
    "MatchActionTable",
    "MEMORY_OPS",
    "MemoryOutOfRangeError",
    "NC_READ",
    "NC_WRITE",
    "Packet",
    "ParseMachine",
    "ParseState",
    "PHV",
    "PHVLayout",
    "PHVOverflowError",
    "Pipeline",
    "PortQueue",
    "QueueModel",
    "RECIRC_PORT",
    "RecirculationLimitError",
    "RegisterArray",
    "Stage",
    "StageBudget",
    "StageResourceError",
    "Switch",
    "SwitchConfig",
    "SwitchResult",
    "TableEntry",
    "TableFullError",
    "TernaryKey",
    "TrafficManager",
    "UnknownFieldError",
    "Verdict",
    "WireFormatError",
    "default_parse_machine",
    "deserialize",
    "load_pcap",
    "lookup",
    "make_cache",
    "make_calc",
    "make_ipv4",
    "make_l2",
    "make_tcp",
    "make_udp",
    "register_header",
    "save_pcap",
    "serialize",
]
