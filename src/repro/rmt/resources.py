"""Chip-level resource, latency, and power accounting.

This module reproduces what the paper obtains from P4C + P4 Insight (§6.3):
static usage of the seven headline resources (PHV, hash units, SRAM, TCAM,
VLIW, SALU, logical table IDs), per-pipeline latency in clock cycles, a
worst-case power estimate, and the resulting *traffic limit load* — the
fraction of maximum forwarding rate the chip allows itself when the power
estimate exceeds the budget (the mechanism behind ActiveRMT's 91% load in
Table 2).

All accounting is static: it depends only on what hardware the data plane
attaches to stages, never on traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dc_fields

from .phv import PHVLayout
from .pipeline import Switch
from .stage import StageBudget

#: Hardware power budget in watts; exceeding it causes forwarding-rate
#: limiting (paper Table 2 caption).
POWER_BUDGET_WATTS = 40.0

#: Per-stage pipeline latency model, in clock cycles.
INGRESS_BASE_CYCLES = 18  # parser
EGRESS_BASE_CYCLES = 28  # deparser + queueing interface
CYCLES_PER_ACTIVE_STAGE = 24

#: Worst-case power coefficients (watts per used resource unit).
POWER_COEFFS = {
    "base": 0.9,  # per active gress
    "sram_blocks": 0.0105,
    "tcam_blocks": 0.048,
    "vliw_slots": 0.0088,
    "salus": 0.265,
    "hash_units": 0.22,
    "ltids": 0.018,
}


@dataclass
class ResourceUsage:
    """Aggregate usage over one gress (or the whole chip when summed)."""

    sram_blocks: int = 0
    tcam_blocks: int = 0
    vliw_slots: int = 0
    salus: int = 0
    hash_units: int = 0
    ltids: int = 0
    phv_bits: int = 0
    active_stages: int = 0

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        merged = ResourceUsage()
        for f in dc_fields(ResourceUsage):
            setattr(merged, f.name, getattr(self, f.name) + getattr(other, f.name))
        return merged


@dataclass
class ChipBudget:
    """Total per-chip budgets: per-stage budget x stages x both gresses."""

    stages_per_gress: int = 12
    stage: StageBudget = field(default_factory=StageBudget)
    phv_bits: int = 4096

    def total(self, resource: str) -> int:
        if resource == "phv_bits":
            return self.phv_bits
        return getattr(self.stage, resource) * self.stages_per_gress * 2


def account_gress(switch: Switch, gress: str) -> ResourceUsage:
    """Sum stage usage over one gress of a built switch."""
    pipeline = switch.ingress if gress == "ingress" else switch.egress
    usage = ResourceUsage()
    for stage in pipeline.stages:
        usage.sram_blocks += stage.usage.sram_blocks
        usage.tcam_blocks += stage.usage.tcam_blocks
        usage.vliw_slots += stage.usage.vliw_slots
        usage.salus += stage.usage.salus
        usage.hash_units += stage.usage.hash_units
        usage.ltids += stage.usage.ltids
        if stage.units:
            usage.active_stages += 1
    return usage


def account_switch(switch: Switch) -> ResourceUsage:
    usage = account_gress(switch, "ingress") + account_gress(switch, "egress")
    usage.phv_bits = switch.layout.used_bits()
    usage.active_stages = (
        account_gress(switch, "ingress").active_stages
        + account_gress(switch, "egress").active_stages
    )
    return usage


def utilization_report(usage: ResourceUsage, budget: ChipBudget | None = None) -> dict[str, float]:
    """Percent utilization per headline resource (Fig. 10)."""
    budget = budget or ChipBudget()
    report = {}
    for resource in ("sram_blocks", "tcam_blocks", "vliw_slots", "salus", "hash_units", "ltids"):
        report[resource] = 100.0 * getattr(usage, resource) / budget.total(resource)
    report["phv_bits"] = 100.0 * usage.phv_bits / budget.phv_bits
    return report


def phv_utilization(layout: PHVLayout) -> float:
    return 100.0 * layout.utilization()


# -- latency -----------------------------------------------------------------
def latency_cycles(active_ingress_stages: int, active_egress_stages: int) -> tuple[int, int, int]:
    """(ingress, egress, total) pipeline latency in clock cycles."""
    ingress = INGRESS_BASE_CYCLES + CYCLES_PER_ACTIVE_STAGE * active_ingress_stages
    egress = EGRESS_BASE_CYCLES + CYCLES_PER_ACTIVE_STAGE * active_egress_stages
    return ingress, egress, ingress + egress


def switch_latency_cycles(switch: Switch) -> tuple[int, int, int]:
    return latency_cycles(
        account_gress(switch, "ingress").active_stages,
        account_gress(switch, "egress").active_stages,
    )


# -- power --------------------------------------------------------------------
def power_watts(usage: ResourceUsage, *, active: bool = True) -> float:
    """Worst-case power for one gress's usage."""
    total = POWER_COEFFS["base"] if active and usage.active_stages else 0.0
    for resource, coeff in POWER_COEFFS.items():
        if resource == "base":
            continue
        total += coeff * getattr(usage, resource)
    return total


def switch_power_watts(switch: Switch) -> tuple[float, float, float]:
    """(ingress, egress, total) worst-case power."""
    ing = power_watts(account_gress(switch, "ingress"))
    eg = power_watts(account_gress(switch, "egress"))
    return ing, eg, ing + eg


def traffic_limit_load(total_power: float, budget: float = POWER_BUDGET_WATTS) -> float:
    """Fraction of max forwarding rate permitted under the power budget.

    When the worst-case estimate exceeds the budget, the chip limits its
    forwarding rate proportionally (Table 2: 40.74 W -> 98%, 43.7 W -> 91%).
    """
    if total_power <= budget:
        return 1.0
    return budget / total_power
