"""Trace-to-source codegen: compile pipeline traversals to Python functions.

The third execution tier.  The flow cache (tier 1) serves flows it has
already recorded; everything else walks the interpreter (tier 3) through
per-stage/per-table/per-action closures.  This module sits in between:
for each wire-header composition it *emits an actual Python function* —
textual source + ``compile()`` — that inlines the parser state machine,
the pre-indexed match candidates of every table, and the compiled VLIW
action bodies into straight-line code with early exits.  A cache-disabled
switch (or an uncacheable flow routed through
:meth:`Switch._process_miss`) then pays one dict lookup and one function
call per packet instead of the full closure dispatch.

Specialization levers:

* **composition keying** — the cache key is ``tuple(packet.headers)``;
  header presence checks inside the parser fold away, and match keys on
  fields of headers the wire cannot carry prune their entries entirely;
* **program-ID folding** — ``ud.program_id`` is written exactly once (by
  the initialization block; ``MODIFY`` targeting it falls back), so the
  generated init chain dispatches into a per-program body in which every
  ``ud.program_id`` key test is folded at codegen time and each RPB's
  candidate pool is pre-narrowed to that program's index bucket;
* **constant folding** — slots that provably hold their template value at
  a given point (branch id before the first ``set_branch``-capable table,
  recirc count outside recirculation loops, forwarding flags no candidate
  action writes) fold their key tests; the traffic-manager decide chain
  only materializes branches for verdict flags some candidate can set.

Exactness contract: a generated function is bit-identical to the
interpreter — verdicts, egress ports, recirculation passes, bridge state,
deparsed headers, register-array contents and access counters, and every
table/entry lookup/hit counter.  Stateful SALU and hash ops execute live
against the register arrays (like the megaflow stateful-replay tier);
register-value-steered matching (BRANCH entries on har/sar/mar) is
re-evaluated per packet, which is why it is sound here although the flow
cache must refuse to cache it.  ``execute_action`` /
``lookup_reference_entry`` remain the oracle; the hypothesis churn suite
in tests/property/test_codegen_equivalence.py pins the contract.

Invalidation rides the same ``MatchActionTable.on_mutation`` hooks the
flow cache uses: the cache self-wires a generation bump onto every table
it compiles against, and each dispatch additionally pins the compiled
PHV layout and both pipelines' compiled unit programs by identity, so a
mid-batch ``add_case``/``remove_case``/``write_mem`` can never execute a
stale function.  Register-array *contents* need no invalidation — the
generated code reads and writes the live arrays.

Fallback taxonomy (reasons reported via :meth:`CodegenCache.stats`):

====================  ====================================================
``recording``         a flow-cache recording pass or bypass is active
``tracing``           execution tracing is observing the real traversal
``parser-unfrozen``   the switch is still being provisioned
``guard``             per-packet header field-set mismatch (slow-path PHV)
``init-shape``        no/misplaced initialization block
``init-action``       init default action is not ``set_program``
``recirc-action``     recirc-table action is not ``recirculate``
``unit:<cls>``        a pipeline unit outside the known block set
``action:<name>``     an action outside the closed atomic-operation set
``action-data:<a>``   malformed action data (bad register name)
``modify:<field>``    MODIFY targeting a specialization-bearing field
``key:<field>``       match key on a field outside the slot layout
``field:<name>``      action operand field outside the slot layout
``header:<name>``     wire header with no registered field layout
``parse-loop``        cyclic parse machine
``parse-select``      select on a field that may be unparsed
``parse-shape``       no start state / dangling transition target
====================  ====================================================

Everything in the table simply routes the packet to the interpreter,
which preserves the reference semantics (including its error behaviour).
"""

from __future__ import annotations

import sys

from . import flowcache
from .table import MatchActionTable, _entry_order

_M32 = 0xFFFFFFFF

#: MODIFY targets that would break codegen specialization: the program id
#: (bodies are specialized per program), and the recirculation fields
#: (pass structure is decided at codegen time).
_BANNED_MODIFY = frozenset(
    {"ud.program_id", "ud.recirc_count", "ud.recirc_flag"}
)

_REG_FIELDS = {"har": "ud.har", "sar": "ud.sar", "mar": "ud.mar"}

_ALU_EXPR = {
    "ADD": "(s[{a}] + s[{b}]) & 4294967295",
    "AND": "s[{a}] & s[{b}]",
    "OR": "s[{a}] | s[{b}]",
    "XOR": "s[{a}] ^ s[{b}]",
    "MAX": "s[{a}] if s[{a}] >= s[{b}] else s[{b}]",
    "MIN": "s[{a}] if s[{a}] <= s[{b}] else s[{b}]",
}

_MEMORY_OPS = frozenset(
    {"MEMADD", "MEMSUB", "MEMAND", "MEMOR", "MEMREAD", "MEMWRITE", "MEMMAX"}
)

#: sentinel distinguishing "entry can never match" from "no conditions"
_DEAD = object()


class _Unsupported(Exception):
    """Raised during emission when a construct cannot be compiled."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class _Entry:
    """One cache slot: a compiled function (or a negative record) plus the
    identity stamps that make staleness detectable at dispatch time."""

    __slots__ = ("fn", "reason", "gen", "cl", "ing", "eg", "source", "coalesce")


class CodegenCache:
    """Per-switch cache of generated per-composition functions."""

    def __init__(self, enabled: bool = True, capacity: int = 512):
        self.enabled = enabled
        self.capacity = capacity
        #: composition tuple -> _Entry (negative entries included, so an
        #: unsupported composition is not re-analyzed per packet)
        self.cache: dict[tuple, _Entry] = {}
        #: bumped by every structural table mutation (self-wired below)
        self.generation = 0
        self.compiled = 0
        self.hits = 0
        self.invalidations = 0
        self.fallbacks: dict[str, int] = {}
        #: id(table) -> table (strong refs: an id alone could be reused by
        #: a new table after GC, silently skipping the hook wiring)
        self._watched: dict[int, MatchActionTable] = {}

    # -- invalidation ------------------------------------------------------
    def _bump(self) -> None:
        self.generation += 1

    def invalidate(self) -> None:
        """Force all generated functions stale (lazy rejection)."""
        self.generation += 1

    def flush(self) -> None:
        self._flush_counters()
        self.cache.clear()

    # -- coalesced counters ------------------------------------------------
    # Straight-line bodies that provably cannot raise defer their
    # constant per-call counter bumps (table lookups, unconditional
    # hits, TM verdicts) into a per-body call cell, applied in bulk at
    # batch end — the same batch-scoped coalescing the flow cache uses
    # (nothing can observe counters mid-batch).
    def end_batch(self) -> None:
        self._flush_counters()

    def _flush_counters(self) -> None:
        for ent in self.cache.values():
            if ent.coalesce:
                self._flush_entry(ent)

    @staticmethod
    def _flush_entry(ent: _Entry) -> None:
        for cell, targets in ent.coalesce:
            n = cell[0]
            if n:
                cell[0] = 0
                for obj, attr, k in targets:
                    setattr(obj, attr, getattr(obj, attr) + k * n)

    def _watch(self, table: MatchActionTable) -> None:
        if id(table) not in self._watched:
            self._watched[id(table)] = table
            table.on_mutation.append(self._bump)

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict:
        return {
            "enabled": self.enabled,
            "functions": sum(
                1 for ent in self.cache.values() if ent.fn is not None
            ),
            "compiled": self.compiled,
            "hits": self.hits,
            "invalidations": self.invalidations,
            "fallbacks": dict(self.fallbacks),
            "generation": self.generation,
        }

    # -- dispatch ----------------------------------------------------------
    def _fallback(self, reason: str) -> None:
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1
        return None

    def run(self, switch, packet):
        """Serve one packet, or return ``None`` to defer to the interpreter."""
        if flowcache._RECORDER is not None or flowcache._BYPASS:
            return self._fallback("recording")
        tracing = sys.modules.get("repro.dataplane.tracing")
        if tracing is not None and tracing._ACTIVE is not None:
            return self._fallback("tracing")
        if not switch.parse_machine.frozen:
            # Provisioning still mutates the parser; freezing does not bump
            # any generation counter, so this must not be negative-cached.
            return self._fallback("parser-unfrozen")
        key = tuple(packet.headers)
        ent = self.cache.get(key)
        if (
            ent is None
            or ent.gen != self.generation
            or ent.cl is not switch.layout.compiled()
            or ent.ing is not switch.ingress._compiled
            or ent.eg is not switch.egress._compiled
        ):
            ent = self._compile(switch, key, ent)
        if ent.fn is None:
            return self._fallback(ent.reason)
        result = ent.fn(switch, packet)
        if result is None:
            return self._fallback("guard")
        self.hits += 1
        if ent.coalesce and not switch._pooling:
            # outside a batch the caller can observe counters right away
            self._flush_entry(ent)
        return result

    # -- compilation -------------------------------------------------------
    def _compile(self, switch, key: tuple, stale: _Entry | None) -> _Entry:
        if stale is not None:
            self.invalidations += 1
            if stale.coalesce:
                # pending deltas reference the old tables: settle them
                # before the entry is dropped from the dict
                self._flush_entry(stale)
        if len(self.cache) >= self.capacity:
            self._flush_counters()
            self.cache.clear()
        ent = _Entry()
        ent.gen = self.generation
        ent.cl = switch.layout.compiled()
        ent.ing = switch.ingress.compiled_units()
        ent.eg = switch.egress.compiled_units()
        ent.coalesce = ()
        try:
            emitter = _Emitter(self, switch, key, ent.cl)
            source, namespace = emitter.emit()
            code = compile(source, f"<codegen:{'/'.join(key) or 'bare'}>", "exec")
            exec(code, namespace)
            ent.fn = namespace["_run"]
            ent.reason = None
            ent.source = source
            ent.coalesce = tuple(emitter.coalesce)
            self.compiled += 1
        except _Unsupported as exc:
            ent.fn = None
            ent.reason = exc.reason
            ent.source = None
        self.cache[key] = ent
        return ent


class _Emitter:
    """Builds the generated module source for one header composition."""

    def __init__(self, cache: CodegenCache, switch, key: tuple, cl):
        from ..dataplane import constants as dp
        from ..dataplane.blocks import InitBlock, RecirculationBlock
        from ..dataplane.rpb import RPB, _hash_unit
        from .pipeline import (
            CPU_PORT,
            RECIRC_PORT,
            RecirculationLimitError,
            SwitchResult,
            UnknownMulticastGroupError,
            Verdict,
        )

        self.cache = cache
        self.switch = switch
        self.key = key
        self.cl = cl
        self.slot_of = cl.slot_of
        self.dp = dp
        self.InitBlock = InitBlock
        self.RecirculationBlock = RecirculationBlock
        self.RPB = RPB
        self._hash_unit = _hash_unit
        self.CPU_PORT = CPU_PORT
        self.RECIRC_PORT = RECIRC_PORT

        tm = switch.tm
        self.ns: dict = {
            "_T": cl.template,
            "_R": SwitchResult,
            "_VD": Verdict.DROP,
            "_VC": Verdict.TO_CPU,
            "_VR": Verdict.REFLECT,
            "_VM": Verdict.MULTICAST,
            "_VF": Verdict.FORWARD,
            "_RLE": RecirculationLimitError,
            "_UMG": UnknownMulticastGroupError,
            "_tm": tm,
            "_mg": tm.multicast_groups,
        }
        self._bound: dict = {}
        self.chunks: list[str] = []
        self._need_ft5 = False
        self._vh_leaves: dict = {}
        self._bodies: dict[int, str] = {}
        self._body_chunks: list[str] = []
        #: per-body (call-count cell, merged (obj, attr, k) targets)
        self.coalesce: list = []
        #: active divert list for constant counter bumps (None = inline)
        self._co_targets: list | None = None
        #: hdr slots any action may write — everything else skips the
        #: deparse write-back (the loaded value is already in the header)
        self.hdr_written: set[int] = set()
        #: a zero-size register array raises ZeroDivisionError per packet,
        #: which disqualifies the body from counter coalescing
        self._saw_zero_mem = False

        so = self.slot_of
        self.s_bm = so["ud.parse_bitmap"]
        self.s_rcf = so["ud.recirc_flag"]
        self.s_rc = so["ud.recirc_count"]
        self.s_drop = so["ud.drop_ctl"]
        self.s_cpu = so["ud.to_cpu"]
        self.s_refl = so["ud.reflect"]
        self.s_mc = so["ud.mcast_grp"]
        self.s_pid = so.get("ud.program_id")
        self.s_bid = so.get("ud.branch_id")
        self.s_eg = cl.slot_egress
        self.s_in = cl.slot_ingress
        self.intrinsics = {
            cl.slot_ingress,
            cl.slot_qdepth,
            cl.slot_pktlen,
            cl.slot_ts,
        }
        #: slots provably at their (non-None) template value before parse;
        #: the parse bitmap is excluded (written by _parse, leaf-dependent,
        #: and bridged across recirculation passes like any ud field)
        self.known0 = {
            i: v
            for i, v in enumerate(cl.template)
            if v is not None and i not in self.intrinsics and i != self.s_bm
        }
        self.bridge_pairs = switch._bridge_slot_pairs(cl)

    # -- namespace helpers -------------------------------------------------
    def bind(self, obj, prefix: str) -> str:
        handle = (prefix, id(obj))
        name = self._bound.get(handle)
        if name is None:
            name = f"_{prefix}{len(self._bound)}"
            self._bound[handle] = name
            self.ns[name] = obj
        return name

    def is_hdr_slot(self, slot: int) -> bool:
        return self.cl.template[slot] is None

    # -- top level ---------------------------------------------------------
    def emit(self) -> tuple[str, dict]:
        ing_units = self.switch.ingress.compiled_units()
        eg_units = self.switch.egress.compiled_units()
        ing_pairs = [(apply.__self__, stage) for apply, stage in ing_units]
        eg_pairs = [(apply.__self__, stage) for apply, stage in eg_units]
        if not ing_pairs or not isinstance(ing_pairs[0][0], self.InitBlock):
            raise _Unsupported("init-shape")
        for unit, _stage in ing_pairs[1:] + eg_pairs:
            if isinstance(unit, self.InitBlock):
                raise _Unsupported("init-shape")
            if not isinstance(unit, (self.RPB, self.RecirculationBlock)):
                raise _Unsupported(f"unit:{type(unit).__name__}")
        self.init_table = ing_pairs[0][0].table
        self.ing_pairs = ing_pairs[1:]
        self.eg_pairs = eg_pairs

        self._emit_parse()
        self._emit_run()
        # deparse last: only after every body is emitted do we know which
        # hdr slots can be written (and need the write-back) at all
        self._emit_deparse()
        if self._need_ft5:
            self._emit_ft5()
        source = "\n".join(self.chunks + self._body_chunks) + "\n"
        return source, self.ns

    # -- parser ------------------------------------------------------------
    def _emit_parse(self) -> None:
        machine = self.switch.parse_machine
        if machine.start is None:
            raise _Unsupported("parse-shape")
        composition = set(self.key)
        cl = self.cl
        lines = ["def _parse(s, hs):"]
        self.loadable: set[str] = set()
        bm_mask = cl.masks[self.s_bm]

        def leaf(bitmap: int, loaded: tuple, ind: str) -> None:
            sig = (bitmap, loaded)
            name = self._vh_leaves.get(sig)
            if name is None:
                vh = tuple(
                    (header, tuple(cl.header_slots[header])) for header in loaded
                )
                name = f"_vh{len(self._vh_leaves)}"
                self._vh_leaves[sig] = name
                self.ns[name] = vh
            lines.append(f"{ind}s[{self.s_bm}] = {bitmap & bm_mask}")
            lines.append(f"{ind}return {name}")

        def walk(state_name: str, bitmap: int, loaded: tuple, path: frozenset, ind: str) -> None:
            if state_name == machine.ACCEPT:
                leaf(bitmap, loaded, ind)
                return
            if state_name in path:
                raise _Unsupported("parse-loop")
            state = machine.states.get(state_name)
            if state is None:
                raise _Unsupported("parse-shape")
            path = path | {state_name}
            header = state.header
            if header is not None:
                if header not in composition:
                    # the wire doesn't carry it: hardware parser stops here
                    leaf(bitmap, loaded, ind)
                    return
                slots = cl.header_slots.get(header)
                if slots is None:
                    raise _Unsupported(f"header:{header}")
                self.loadable.add(header)
                lines.append(f"{ind}_x = hs[{header!r}]")
                for fname, index in slots:
                    lines.append(f"{ind}s[{index}] = _x[{fname!r}]")
                loaded = loaded + (header,)
                bit = machine.bitmap_bits.get(header)
                if bit is not None:
                    bitmap |= 1 << bit
            if state.select is None:
                leaf(bitmap, loaded, ind)
                return
            slot = self.slot_of.get(state.select)
            if slot is None:
                raise _Unsupported("parse-select")
            if self.is_hdr_slot(slot):
                sel_header = state.select.split(".", 2)[1]
                if sel_header not in loaded:
                    # the interpreter would raise KeyError per packet here
                    raise _Unsupported("parse-select")
            lines.append(f"{ind}_k = s[{slot}]")
            first = True
            for value, target in state.transitions.items():
                if value is None:
                    continue
                kw = "if" if first else "elif"
                first = False
                lines.append(f"{ind}{kw} _k == {value!r}:")
                walk(target, bitmap, loaded, path, ind + "    ")
            default = state.transitions.get(None, machine.ACCEPT)
            if first:
                walk(default, bitmap, loaded, path, ind)
            else:
                lines.append(f"{ind}else:")
                walk(default, bitmap, loaded, path, ind + "    ")

        walk(machine.start, 0, (), frozenset(), "    ")
        self.chunks.append("\n".join(lines))
        #: hdr slots that can never be populated for this composition
        self.never = {
            index
            for header, slots in cl.header_slots.items()
            if header not in self.loadable
            for _fname, index in slots
        }

    def _emit_deparse(self) -> None:
        # narrow the per-leaf field lists to slots some action may write:
        # an unwritten slot still holds the value loaded from the very
        # dict the write-back would target, so skipping it is identical
        written = self.hdr_written
        for name in self._vh_leaves.values():
            vh = self.ns[name]
            self.ns[name] = tuple(
                (header, kept)
                for header, pairs in vh
                if (kept := tuple(p for p in pairs if p[1] in written))
            )
        if not written:
            self.chunks.append("def _deparse(s, vh, hs):\n    pass")
            return
        self.chunks.append(
            "def _deparse(s, vh, hs):\n"
            "    for _h, _fields in vh:\n"
            "        _t = hs[_h]\n"
            "        for _f, _i in _fields:\n"
            "            _v = s[_i]\n"
            "            if _v is not None:\n"
            "                _t[_f] = _v"
        )

    def _emit_ft5(self) -> None:
        so = self.slot_of

        def present(name: str):
            slot = so.get(name)
            if slot is None or slot in self.never:
                return None
            return slot

        lines = ["def _ft5(s):"]
        t_sp, t_dp = present("hdr.tcp.src_port"), present("hdr.tcp.dst_port")
        u_sp, u_dp = present("hdr.udp.src_port"), present("hdr.udp.dst_port")
        if t_sp is not None and t_dp is None:
            raise _Unsupported("field:hdr.tcp.dst_port")
        if u_sp is not None and u_dp is None:
            raise _Unsupported("field:hdr.udp.dst_port")
        lines.append("    _sp = _dp = 0")
        branch = "if"
        if t_sp is not None:
            lines.append(f"    {branch} s[{t_sp}] is not None:")
            lines.append(f"        _sp = s[{t_sp}]; _dp = s[{t_dp}]")
            branch = "elif"
        if u_sp is not None:
            lines.append(f"    {branch} s[{u_sp}] is not None:")
            lines.append(f"        _sp = s[{u_sp}]; _dp = s[{u_dp}]")
        parts = []
        for name in ("hdr.ipv4.src", "hdr.ipv4.dst", "hdr.ipv4.proto"):
            slot = present(name)
            if slot is None:
                parts.append("0")
            else:
                parts.append(f"(s[{slot}] if s[{slot}] is not None else 0)")
        lines.append(f"    return ({parts[0]}, {parts[1]}, {parts[2]}, _sp, _dp)")
        self.chunks.append("\n".join(lines))

    # -- match folding -----------------------------------------------------
    def _fold_keys(self, entry, working: dict):
        """Fold one entry's compiled key triples against static facts.

        Returns ``_DEAD`` if the entry can never match here, else the list
        of runtime condition strings (empty = always matches)."""
        conds: list[str] = []
        cl = self.cl
        for fname, value, mask in entry.compiled_keys:
            slot = self.slot_of.get(fname)
            if slot is None:
                raise _Unsupported(f"key:{fname}")
            if slot in self.never:
                return _DEAD  # absent field fails even a mask-0 key
            if slot in working:
                if (working[slot] & mask) != value:
                    return _DEAD
                continue
            if self.is_hdr_slot(slot):
                if mask == 0:
                    conds.append(f"s[{slot}] is not None")
                else:
                    conds.append(
                        f"s[{slot}] is not None and (s[{slot}] & {mask}) == {value}"
                    )
            else:
                if mask == 0:
                    continue  # (pv & 0) == 0 on an always-present slot
                name = cl.slot_names[slot]
                if mask == cl.masks[slot] and name.startswith("ud."):
                    # ud slots are stored masked, so a full-mask test is
                    # plain equality; intrinsic meta slots are seeded raw
                    # and keep the masked compare.
                    conds.append(f"s[{slot}] == {value}")
                else:
                    conds.append(f"(s[{slot}] & {mask}) == {value}")
        return conds

    def _candidates(self, table: MatchActionTable, working: dict) -> list:
        """The (priority, handle)-ordered candidate list, pre-narrowed to
        the index bucket when the index slot's value is a static fact."""
        self.cache._watch(table)
        if table._index_field is not None:
            slot = self.slot_of.get(table._index_field)
            if slot is not None and slot in working:
                key = working[slot] & table._index_mask
                bucket = [e for e in table._index.get(key, ()) if e.live]
                unindexed = [e for e in table._unindexed if e.live]
                return sorted(bucket + unindexed, key=_entry_order)
        return sorted(table._entries.values(), key=_entry_order)

    # -- actions -----------------------------------------------------------
    def _reg_slot(self, action: str, data: dict, field: str = "reg") -> int:
        try:
            name = _REG_FIELDS[data[field]]
        except KeyError:
            raise _Unsupported(f"action-data:{action}")
        return self.slot_of[name]

    def _action_written(self, action: str, data: dict) -> list[int]:
        """Slots an action may write (for decide pruning / fact kills)."""
        so, cl = self.slot_of, self.cl
        if action == "set_branch":
            return [self.s_bid] if self.s_bid is not None else []
        if action in ("EXTRACT", "LOADI", "RESTORE"):
            return [self._reg_slot(action, data)]
        if action in _ALU_EXPR:
            return [self._reg_slot(action, data, "reg0")]
        if action == "MODIFY":
            fname = data["field"]
            if fname in _BANNED_MODIFY:
                raise _Unsupported(f"modify:{fname}")
            slot = so.get(fname)
            return [] if slot is None else [slot]
        if action in ("HASH", "HASH_5_TUPLE"):
            return [so["ud.har"]]
        if action in ("HASH_MEM", "HASH_5_TUPLE_MEM"):
            return [so["ud.mar"]]
        if action == "OFFSET":
            return [so["ud.phys_addr"]]
        if action in _MEMORY_OPS:
            return [] if action == "MEMWRITE" else [so["ud.sar"]]
        if action == "FORWARD":
            return [self.s_eg]
        if action == "MULTICAST":
            return [self.s_mc]
        if action == "DROP":
            return [self.s_drop]
        if action == "RETURN":
            return [self.s_refl]
        if action == "REPORT":
            return [self.s_cpu]
        if action == "BACKUP":
            return [so["ud.reg_backup"]]
        if action == "recirculate":
            return [self.s_rcf]
        raise _Unsupported(f"action:{action}")

    def _action_lines(self, unit, action: str, data: dict) -> list[str]:
        """Unindented statements replicating ``execute_action`` exactly."""
        so, cl = self.slot_of, self.cl
        if action == "set_branch":
            if self.s_bid is None:
                raise _Unsupported("field:ud.branch_id")
            return [f"s[{self.s_bid}] = {data['branch_id'] & cl.masks[self.s_bid]}"]
        if action == "EXTRACT":
            reg = self._reg_slot(action, data)
            slot = so.get(data["field"])
            if slot is None or slot in self.never:
                return [f"s[{reg}] = 0"]
            if self.is_hdr_slot(slot):
                return [
                    "_x = s[%d]" % slot,
                    f"s[{reg}] = (_x & 4294967295) if _x is not None else 0",
                ]
            return [f"s[{reg}] = s[{slot}] & 4294967295"]
        if action == "MODIFY":
            fname = data["field"]
            if fname in _BANNED_MODIFY:
                raise _Unsupported(f"modify:{fname}")
            reg = self._reg_slot(action, data)
            slot = so.get(fname)
            if slot is None or slot in self.never:
                return []  # writing an unparsed/unknown field is a no-op
            mask = cl.masks[slot]
            rhs = f"s[{reg}]" if mask >= _M32 else f"s[{reg}] & {mask}"
            if self.is_hdr_slot(slot):
                self.hdr_written.add(slot)
                return [f"if s[{slot}] is not None:", f"    s[{slot}] = {rhs}"]
            return [f"s[{slot}] = {rhs}"]
        if action in ("HASH", "HASH_5_TUPLE", "HASH_MEM", "HASH_5_TUPLE_MEM"):
            unit_var = self.bind(self._hash_unit(data["algorithm"]), "h")
            if action in ("HASH_5_TUPLE", "HASH_5_TUPLE_MEM"):
                self._need_ft5 = True
                digest = f"{unit_var}.hash_five_tuple(_ft5(s))"
            else:
                digest = f"{unit_var}.hash_values((s[{so['ud.har']}],))"
            if action in ("HASH", "HASH_5_TUPLE"):
                return [f"s[{so['ud.har']}] = {digest} & 4294967295"]
            return [f"s[{so['ud.mar']}] = {digest} & {data['mask'] & _M32}"]
        if action == "OFFSET":
            return [
                f"s[{so['ud.phys_addr']}] = "
                f"(s[{so['ud.mar']}] + {data['base']}) & 4294967295"
            ]
        if action in _MEMORY_OPS:
            return self._memory_lines(unit, action)
        if action == "LOADI":
            reg = self._reg_slot(action, data)
            return [f"s[{reg}] = {data['value'] & _M32}"]
        if action in _ALU_EXPR:
            a = self._reg_slot(action, data, "reg0")
            b = self._reg_slot(action, data, "reg1")
            return [f"s[{a}] = " + _ALU_EXPR[action].format(a=a, b=b)]
        if action == "FORWARD":
            return [f"s[{self.s_eg}] = {data['port'] & cl.masks[self.s_eg]}"]
        if action == "MULTICAST":
            return [f"s[{self.s_mc}] = {data['group'] & cl.masks[self.s_mc]}"]
        if action == "DROP":
            return [f"s[{self.s_drop}] = 1"]
        if action == "RETURN":
            return [f"s[{self.s_refl}] = 1"]
        if action == "REPORT":
            return [f"s[{self.s_cpu}] = 1"]
        if action == "BACKUP":
            reg = self._reg_slot(action, data)
            return [f"s[{so['ud.reg_backup']}] = s[{reg}]"]
        if action == "RESTORE":
            reg = self._reg_slot(action, data)
            return [f"s[{reg}] = s[{so['ud.reg_backup']}]"]
        if action == "recirculate":
            return [f"s[{self.s_rcf}] = 1"]
        raise _Unsupported(f"action:{action}")

    def _memory_lines(self, rpb, action: str) -> list[str]:
        stage = self._stage_of[id(rpb)]
        array = stage.register_arrays.get(rpb.memory_name)
        if array is None:
            raise _Unsupported("memory")
        if array.size == 0:
            self._saw_zero_mem = True
        avar = self.bind(array, "m")
        dvar = self.bind(array._data, "d")
        sar = self.slot_of["ud.sar"]
        pa = self.slot_of["ud.phys_addr"]
        wm = (1 << array.width) - 1
        operand = f"s[{sar}]" if wm >= _M32 else f"s[{sar}] & {wm}"
        out = "_o" if wm <= _M32 else f"_o & {_M32}"
        # address first (a zero-size array raises before the access count,
        # as RegisterArray.execute does), then the access counter, then the
        # SALU microprogram inlined per op
        lines = [f"_x = s[{pa}] % {array.size}", f"{avar}.accesses += 1"]
        if action == "MEMADD":
            lines += [
                f"_o = ({dvar}[_x] + {operand}) & {wm}",
                f"{dvar}[_x] = _o",
                f"s[{sar}] = {out}",
            ]
        elif action == "MEMSUB":
            lines += [
                f"_o = ({dvar}[_x] - {operand}) & {wm}",
                f"{dvar}[_x] = _o",
                f"s[{sar}] = {out}",
            ]
        elif action == "MEMAND":
            lines += [
                f"_o = {dvar}[_x] & s[{sar}]",
                f"{dvar}[_x] = _o",
                f"s[{sar}] = {out}",
            ]
        elif action == "MEMOR":
            store = f"(_o | {operand})" if wm >= _M32 else f"(_o | {operand}) & {wm}"
            lines += [
                f"_o = {dvar}[_x]",
                f"{dvar}[_x] = {store}",
                f"s[{sar}] = {out}",  # MEMOR returns the *old* value
            ]
        elif action == "MEMREAD":
            lines += [f"_o = {dvar}[_x]", f"s[{sar}] = {out}"]
        elif action == "MEMWRITE":
            lines += [f"{dvar}[_x] = {operand}"]
        elif action == "MEMMAX":
            lines += [
                f"_o = max({dvar}[_x], {operand})",
                f"{dvar}[_x] = _o",
                f"s[{sar}] = {out}",
            ]
        return lines

    # -- table applies -----------------------------------------------------
    def _emit_apply(self, unit, lines: list[str], ind: str, working: dict) -> None:
        """Emit one RPB/recirc-block table apply with candidate folding."""
        is_recirc = isinstance(unit, self.RecirculationBlock)
        table = unit.table
        tvar = self.bind(table, "t")
        co = self._co_targets
        if co is not None:
            co.append((table, "lookups", 1))
        else:
            lines.append(f"{ind}{tvar}.lookups += 1")
        branches = []
        for entry in self._candidates(table, working):
            conds = self._fold_keys(entry, working)
            if conds is _DEAD:
                continue
            if is_recirc and entry.action != "recirculate":
                raise _Unsupported("recirc-action")
            branches.append((conds, entry))
            if not conds:
                break  # unconditional: later candidates are unreachable
        terminal = bool(branches) and not branches[-1][0]
        default = table.default_action
        if is_recirc and default is not None and default != "recirculate":
            raise _Unsupported("recirc-action")

        def entry_stmts(entry) -> list[str]:
            evar = self.bind(entry, "e")
            return [
                f"{tvar}.hits += 1",
                f"{evar}.hits += 1",
            ] + self._action_lines(unit, entry.action, entry.action_data)

        if not branches:
            if default is not None:
                for stmt in self._action_lines(unit, default, table.default_action_data):
                    lines.append(ind + stmt)
        else:
            for i, (conds, entry) in enumerate(branches):
                if not conds:  # terminal always-match entry
                    if i == 0:
                        if co is not None:
                            # unconditional hit: coalesce the bumps, keep
                            # the action statements inline
                            co.append((table, "hits", 1))
                            co.append((entry, "hits", 1))
                            stmts = self._action_lines(
                                unit, entry.action, entry.action_data
                            )
                        else:
                            stmts = entry_stmts(entry)
                        for stmt in stmts:
                            lines.append(ind + stmt)
                    else:
                        lines.append(f"{ind}else:")
                        for stmt in entry_stmts(entry):
                            lines.append(ind + "    " + stmt)
                    break
                kw = "if" if i == 0 else "elif"
                lines.append(f"{ind}{kw} {' and '.join(conds)}:")
                for stmt in entry_stmts(entry):
                    lines.append(ind + "    " + stmt)
            if not terminal and default is not None:
                lines.append(f"{ind}else:")
                stmts = self._action_lines(unit, default, table.default_action_data)
                if stmts:
                    for stmt in stmts:
                        lines.append(ind + "    " + stmt)
                else:
                    lines.append(ind + "    pass")
        # any outcome may have written these slots: kill the static facts
        for conds, entry in branches:
            for slot in self._action_written(entry.action, entry.action_data):
                working.pop(slot, None)
        if default is not None and not terminal:
            for slot in self._action_written(default, table.default_action_data):
                working.pop(slot, None)

    def _apply_writes(self, unit, facts: dict) -> tuple[set, bool]:
        """Pre-scan: slots any candidate (or default) may write, and
        whether any candidate exists at all.  Validates every action."""
        written: set[int] = set()
        any_candidate = False
        table = unit.table
        is_recirc = isinstance(unit, self.RecirculationBlock)
        for entry in self._candidates(table, facts):
            if self._fold_keys(entry, facts) is _DEAD:
                continue
            if is_recirc and entry.action != "recirculate":
                raise _Unsupported("recirc-action")
            any_candidate = True
            self._action_lines(unit, entry.action, entry.action_data)  # validate
            written.update(self._action_written(entry.action, entry.action_data))
        if table.default_action is not None:
            if is_recirc and table.default_action != "recirculate":
                raise _Unsupported("recirc-action")
            any_candidate = True
            self._action_lines(unit, table.default_action, table.default_action_data)
            written.update(
                self._action_written(table.default_action, table.default_action_data)
            )
        return written, any_candidate

    # -- bodies ------------------------------------------------------------
    def _body_for(self, pid: int) -> str:
        name = self._bodies.get(pid)
        if name is None:
            name = f"_b_{pid}"
            self._bodies[pid] = name
            self._emit_body(pid, name)
        return name

    def _emit_body(self, pid: int, name: str) -> None:
        body_known = dict(self.known0)
        if self.s_pid is not None:
            body_known[self.s_pid] = pid
        if self.s_bid is not None:
            body_known[self.s_bid] = 0

        # pre-scan with the program id as the only durable fact: collect
        # the may-write set and validate every reachable action up front
        scan_facts = (
            {self.s_pid: pid} if self.s_pid is not None else {}
        )
        mw: set[int] = set()
        can_recirc = False
        self._saw_zero_mem = False
        for unit, stage in self.ing_pairs + self.eg_pairs:
            written, any_candidate = self._apply_writes(unit, scan_facts)
            mw.update(written)
            if isinstance(unit, self.RecirculationBlock) and any_candidate:
                can_recirc = True
        if self.s_pid is not None and self.s_pid in mw:
            raise _Unsupported("modify:ud.program_id")

        if can_recirc:
            # facts that survive every pass: never written by any action,
            # bridged back unchanged (or re-zeroed by the template copy)
            facts = {
                s: v
                for s, v in body_known.items()
                if s not in mw and s != self.s_rc
            }
        else:
            facts = {s: v for s, v in body_known.items() if s not in mw}

        # per-packet constant bumps: coalesced into a call-count cell when
        # the body provably cannot raise mid-flight (a raise would leave
        # the interpreter's partial bumps unaccounted), else inline
        lines = [f"def {name}(switch, packet, hs, s, vh):"]
        prologue = [
            f"    {self.bind(self.init_table, 't')}.lookups += 1",
            "    switch.packets_in += 1",
            "    switch.pipeline_passes += 1",
        ]
        if can_recirc:
            eg_name = None
            if self.eg_pairs:
                eg_name = f"_eg_{pid}"
                eg_lines = [f"def {eg_name}(s):"]
                eg_working = dict(facts)
                for unit, stage in self.eg_pairs:
                    self._emit_apply(unit, eg_lines, "    ", eg_working)
                self._body_chunks.append("\n".join(eg_lines))
            lines += prologue
            self._emit_recirc_body(pid, lines, body_known, facts, mw, eg_name)
        else:
            can_coalesce = self.s_mc not in mw and not self._saw_zero_mem
            if can_coalesce:
                targets = [
                    (self.switch, "packets_in", 1),
                    (self.switch, "pipeline_passes", 1),
                    (self.init_table, "lookups", 1),
                ]
                self._co_targets = targets
                cell = [0]
                self.ns[f"_nc{pid}"] = cell
                lines.append(f"    _nc{pid}[0] += 1")
            else:
                lines += prologue
            try:
                self._emit_straight_body(pid, lines, body_known, mw, facts)
            finally:
                self._co_targets = None
            if can_coalesce:
                merged: dict = {}
                for obj, attr, k in targets:
                    mk = (id(obj), attr)
                    if mk in merged:
                        merged[mk][2] += k
                    else:
                        merged[mk] = [obj, attr, k]
                self.coalesce.append(
                    (cell, tuple((o, a, k) for o, a, k in merged.values()))
                )
        self._body_chunks.append("\n".join(lines))

    def _emit_straight_body(self, pid, lines, body_known, mw, eg_facts) -> None:
        working = dict(body_known)
        for unit, stage in self.ing_pairs:
            self._emit_apply(unit, lines, "    ", working)
        self._emit_decide_and_finish(lines, "    ", mw, "0", None, eg_facts)

    def _emit_recirc_body(self, pid, lines, body_known, facts, mw, eg_name) -> None:
        lines.append("    recircs = 0")
        lines.append("    while 1:")
        ind = "        "
        working = dict(facts)
        for unit, stage in self.ing_pairs:
            self._emit_apply(unit, lines, ind, working)
        # recirculation branch: egress still runs, then the bridge carry
        lines.append(f"{ind}if s[{self.s_rcf}]:")
        t = ind + "    "
        if eg_name is not None:
            lines.append(f"{t}{eg_name}(s)")
        lines.append(f"{t}recircs += 1")
        lines.append(f"{t}if recircs > switch.config.max_recirculations:")
        lines.append(
            f"{t}    raise _RLE('packet exceeded %d recirculations'"
            " % switch.config.max_recirculations)"
        )
        # save only the bridge slots that are not static facts (a fact's
        # saved value would be its template zero, restored by the copy)
        carry = [
            (fname, slot)
            for fname, slot in self.bridge_pairs
            if slot not in facts and slot != self.s_rc
        ]
        if carry:
            saves = ", ".join(f"s[{slot}]" for _fname, slot in carry)
            lines.append(f"{t}_c = ({saves}{',' if len(carry) == 1 else ''})")
        lines.append(f"{t}_ep = s[{self.s_eg}]")
        lines.append(f"{t}_deparse(s, vh, hs)")
        lines.append(f"{t}packet.ingress_port = {self.RECIRC_PORT}")
        lines.append(f"{t}switch.pipeline_passes += 1")
        lines.append(f"{t}s = _T.copy()")
        cl = self.cl
        lines.append(f"{t}s[{cl.slot_ingress}] = {self.RECIRC_PORT}")
        lines.append(f"{t}s[{cl.slot_qdepth}] = packet.queue_depth")
        lines.append(f"{t}s[{cl.slot_pktlen}] = packet.size")
        lines.append(f"{t}s[{cl.slot_ts}] = int(packet.ts * 1000000) & 4294967295")
        lines.append(f"{t}vh = _parse(s, hs)")
        if carry:
            targets = ", ".join(f"s[{slot}]" for _fname, slot in carry)
            lines.append(f"{t}{targets}{',' if len(carry) == 1 else ''} = _c")
        if self.s_pid is not None and pid:
            # the program id is a static fact (never carried), but the
            # template copy zeroed it — re-establish the folded constant
            lines.append(f"{t}s[{self.s_pid}] = {pid}")
        rc_mask = cl.masks[self.s_rc]
        lines.append(f"{t}s[{self.s_rc}] = recircs & {rc_mask}")
        lines.append(f"{t}s[{self.s_eg}] = _ep")
        lines.append(f"{t}continue")
        self._emit_decide_and_finish(lines, ind, mw, "recircs", eg_name, None)

    def _emit_decide_and_finish(
        self, lines, ind, mw, recircs_expr, eg_name, eg_facts
    ) -> None:
        bridge = ", ".join(
            f"{fname!r}: s[{slot}]" for fname, slot in self.bridge_pairs
        )
        bridge = (
            "{" + bridge + (", " if bridge else "")
            + f"'meta.egress_port': s[{self.s_eg}]" + "}"
        )
        t = ind + "    "
        emitted_if = False
        if self.s_drop in mw:
            lines.append(f"{ind}if s[{self.s_drop}]:")
            lines.append(f"{t}_tm.dropped += 1")
            lines.append(f"{t}_deparse(s, vh, hs)")
            lines.append(f"{t}return _R(_VD, None, packet, {recircs_expr}, (), {bridge})")
            emitted_if = True
        branches = []
        if self.s_cpu in mw:
            branches.append(
                (f"s[{self.s_cpu}]", ["_tm.to_cpu += 1", f"_v = _VC; _p = {self.CPU_PORT}"])
            )
        if self.s_refl in mw:
            branches.append(
                (f"s[{self.s_refl}]", ["_tm.reflected += 1", f"_v = _VR; _p = s[{self.s_in}]"])
            )
        if self.s_mc in mw:
            branches.append(
                (
                    f"s[{self.s_mc}]",
                    [
                        f"if s[{self.s_mc}] not in _mg:",
                        f"    raise _UMG(s[{self.s_mc}])",
                        "_tm.multicast += 1",
                        "_v = _VM; _p = None",
                    ],
                )
            )
        forward = ["_tm.forwarded += 1", f"_v = _VF; _p = s[{self.s_eg}]"]
        if not branches:
            if self._co_targets is not None and not emitted_if:
                # statically FORWARD: the verdict bump is per-call constant
                self._co_targets.append((self.ns["_tm"], "forwarded", 1))
                forward = forward[1:]
            for stmt in forward:
                lines.append(ind + stmt)
        else:
            for i, (cond, stmts) in enumerate(branches):
                kw = "if" if i == 0 and not emitted_if else "elif"
                # after a DROP early return, the chain continues with elif
                # only syntactically if an if came first; otherwise restart
                if i == 0 and emitted_if:
                    kw = "elif"
                lines.append(f"{ind}{kw} {cond}:")
                for stmt in stmts:
                    lines.append(t + stmt)
            lines.append(f"{ind}else:")
            for stmt in forward:
                lines.append(t + stmt)
        if eg_name is not None:
            lines.append(f"{ind}{eg_name}(s)")
        elif eg_facts is not None and self.eg_pairs:
            # straight body: inline the egress applies (single call site)
            eg_working = dict(eg_facts)
            for unit, stage in self.eg_pairs:
                self._emit_apply(unit, lines, ind, eg_working)
        if self.s_mc in mw:
            lines.append(f"{ind}_ports = _mg[s[{self.s_mc}]] if _v is _VM else ()")
        else:
            lines.append(f"{ind}_ports = ()")
        lines.append(f"{ind}_deparse(s, vh, hs)")
        lines.append(
            f"{ind}return _R(_v, _p, packet, {recircs_expr}, _ports, {bridge})"
        )

    # -- _run --------------------------------------------------------------
    def _emit_run(self) -> None:
        cl = self.cl
        self._stage_of = {
            id(unit): stage for unit, stage in self.ing_pairs + self.eg_pairs
        }
        lines = ["def _run(switch, packet):", "    hs = packet.headers"]
        # field-set guards: any mismatch means the interpreter would take
        # the PHV slow path (partial slots + _extra), which the generated
        # code does not model — bail before ANY side effect
        for header in self.key:
            slots = cl.header_slots.get(header)
            if slots is None:
                continue  # never parseable: inert for this layout
            kvar = self.bind(frozenset(f for f, _i in slots), "k")
            lines.append(f"    if hs[{header!r}].keys() != {kvar}:")
            lines.append("        return None")
        # packets_in / pipeline_passes / init-table lookups are bumped (or
        # coalesced) inside the body — every dispatch path enters exactly
        # one body, and nothing between here and there can raise
        lines.append("    s = _T.copy()")
        lines.append(f"    s[{cl.slot_ingress}] = packet.ingress_port")
        lines.append(f"    s[{cl.slot_qdepth}] = packet.queue_depth")
        lines.append(f"    s[{cl.slot_pktlen}] = packet.size")
        lines.append(f"    s[{cl.slot_ts}] = int(packet.ts * 1000000) & 4294967295")
        lines.append("    vh = _parse(s, hs)")

        working = dict(self.known0)

        table = self.init_table
        tvar = self.bind(table, "t")
        self.cache._watch(table)
        if self.s_pid is None or self.s_bid is None:
            raise _Unsupported("init-shape")
        pid_mask = cl.masks[self.s_pid]

        def dispatch(pid_raw: int) -> list[str]:
            pid = pid_raw & pid_mask
            body = self._body_for(pid)
            stmts = []
            if pid != 0:
                stmts.append(f"s[{self.s_pid}] = {pid}")
            stmts.append(f"s[{self.s_bid}] = 0")
            stmts.append(f"return {body}(switch, packet, hs, s, vh)")
            return stmts

        branches = []
        for entry in self._candidates(table, working):
            conds = self._fold_keys(entry, working)
            if conds is _DEAD:
                continue
            if entry.action != self.dp.ACTION_SET_PROGRAM:
                raise _Unsupported("init-action")
            branches.append((conds, entry))
            if not conds:
                break
        terminal = bool(branches) and not branches[-1][0]
        for i, (conds, entry) in enumerate(branches):
            evar = self.bind(entry, "e")
            stmts = [f"{tvar}.hits += 1", f"{evar}.hits += 1"]
            stmts += dispatch(entry.action_data["program_id"])
            if not conds:
                if i == 0:
                    for stmt in stmts:
                        lines.append("    " + stmt)
                else:
                    lines.append("    else:")
                    for stmt in stmts:
                        lines.append("        " + stmt)
                break
            kw = "if" if i == 0 else "elif"
            lines.append(f"    {kw} {' and '.join(conds)}:")
            for stmt in stmts:
                lines.append("        " + stmt)
        if not terminal:
            default = table.default_action
            if default is not None and default != self.dp.ACTION_SET_PROGRAM:
                raise _Unsupported("init-action")
            if default is not None:
                stmts = dispatch(table.default_action_data["program_id"])
            else:
                stmts = [f"return {self._body_for(0)}(switch, packet, hs, s, vh)"]
            if branches:
                lines.append("    else:")
                for stmt in stmts:
                    lines.append("        " + stmt)
            else:
                for stmt in stmts:
                    lines.append("    " + stmt)
        self.chunks.append("\n".join(lines))
