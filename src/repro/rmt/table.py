"""Match-action tables.

The simulator supports exact and ternary matching with priorities, the two
kinds P4runpro's data plane uses (all P4runpro tables are ternary, paper
§7 "Entry Expansion").  Each entry binds a key to a named action plus
action data; the action implementation is resolved by the owning stage.

Hardware semantics preserved here:

* single-entry updates are atomic — a packet either sees an entry fully or
  not at all (the property P4runpro's consistent update builds on, §4.3);
* tables have a fixed capacity; inserting past it raises
  :class:`TableFullError` (the resource the allocator must budget);
* ternary matches are resolved by explicit priority (lower number wins),
  ties broken by insertion order, as TCAM entry ordering does.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from .phv import PHV


class TableFullError(RuntimeError):
    """Raised when an insert would exceed the table's capacity."""


class EntryNotFoundError(KeyError):
    """Raised when deleting or fetching an entry that does not exist."""


@dataclass(frozen=True)
class TernaryKey:
    """One match condition: ``phv[field] & mask == value & mask``."""

    field: str
    value: int
    mask: int

    def matches(self, phv: PHV) -> bool:
        if not phv.has(self.field):
            return False
        return (phv.get(self.field) & self.mask) == (self.value & self.mask)


@dataclass
class TableEntry:
    """A single installed match-action entry."""

    keys: tuple[TernaryKey, ...]
    action: str
    action_data: dict = field(default_factory=dict)
    priority: int = 0
    handle: int = -1  # assigned by the table on insert
    #: direct counter: packets that matched this entry
    hits: int = 0

    def matches(self, phv: PHV) -> bool:
        return all(key.matches(phv) for key in self.keys)


class MatchActionTable:
    """A fixed-capacity ternary match-action table."""

    _handle_counter = itertools.count(1)

    def __init__(
        self,
        name: str,
        capacity: int,
        *,
        default_action: str | None = None,
        default_action_data: dict | None = None,
        index_field: str | None = None,
        index_mask: int = 0,
    ):
        self.name = name
        self.capacity = capacity
        self.default_action = default_action
        self.default_action_data = default_action_data or {}
        self._entries: dict[int, TableEntry] = {}
        #: Optional lookup acceleration: entries carrying a key on
        #: ``index_field`` with exactly ``index_mask`` are bucketed by the
        #: masked value (models hardware key hashing; purely an
        #: optimization, match semantics unchanged).
        self._index_field = index_field
        self._index_mask = index_mask
        self._index: dict[int, list[TableEntry]] = {}
        self._unindexed: list[TableEntry] = []
        #: number of lookups / hits, for utilization reporting
        self.lookups = 0
        self.hits = 0

    def _index_value(self, entry: TableEntry) -> int | None:
        if self._index_field is None:
            return None
        for key in entry.keys:
            if key.field == self._index_field and key.mask == self._index_mask:
                return key.value & self._index_mask
        return None

    # -- management --------------------------------------------------------
    def insert(self, entry: TableEntry) -> int:
        """Atomically install ``entry``; returns its handle."""
        if len(self._entries) >= self.capacity:
            raise TableFullError(f"table {self.name} full ({self.capacity} entries)")
        handle = next(self._handle_counter)
        entry.handle = handle
        self._entries[handle] = entry
        bucket = self._index_value(entry)
        if bucket is None:
            self._unindexed.append(entry)
        else:
            self._index.setdefault(bucket, []).append(entry)
        return handle

    def delete(self, handle: int) -> None:
        """Atomically remove the entry with ``handle``."""
        if handle not in self._entries:
            raise EntryNotFoundError(f"table {self.name}: no entry {handle}")
        entry = self._entries.pop(handle)
        bucket = self._index_value(entry)
        if bucket is None:
            self._unindexed.remove(entry)
        else:
            self._index[bucket].remove(entry)
            if not self._index[bucket]:
                del self._index[bucket]

    def get(self, handle: int) -> TableEntry:
        if handle not in self._entries:
            raise EntryNotFoundError(f"table {self.name}: no entry {handle}")
        return self._entries[handle]

    def clear(self) -> None:
        self._entries.clear()
        self._index.clear()
        self._unindexed.clear()

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def free_entries(self) -> int:
        return self.capacity - len(self._entries)

    def utilization(self) -> float:
        return len(self._entries) / self.capacity if self.capacity else 0.0

    def entries(self) -> list[TableEntry]:
        return list(self._entries.values())

    # -- data plane ----------------------------------------------------------
    def lookup(self, phv: PHV) -> tuple[str, dict] | None:
        """Find the highest-priority matching entry.

        Returns ``(action, action_data)``; falls back to the default action
        if no entry matches, or ``None`` if there is no default either.
        """
        self.lookups += 1
        if self._index_field is not None and phv.has(self._index_field):
            bucket = phv.get(self._index_field) & self._index_mask
            candidates = self._index.get(bucket, ())
            pool = [*candidates, *self._unindexed]
        else:
            pool = list(self._entries.values())
        best: TableEntry | None = None
        for entry in pool:
            if entry.matches(phv):
                if best is None or entry.priority < best.priority:
                    best = entry
        if best is not None:
            self.hits += 1
            best.hits += 1
            return best.action, best.action_data
        if self.default_action is not None:
            return self.default_action, self.default_action_data
        return None
