"""Match-action tables.

The simulator supports exact and ternary matching with priorities, the two
kinds P4runpro's data plane uses (all P4runpro tables are ternary, paper
§7 "Entry Expansion").  Each entry binds a key to a named action plus
action data; the action implementation is resolved by the owning stage.

Hardware semantics preserved here:

* single-entry updates are atomic — a packet either sees an entry fully or
  not at all (the property P4runpro's consistent update builds on, §4.3);
* tables have a fixed capacity; inserting past it raises
  :class:`TableFullError` (the resource the allocator must budget);
* ternary matches are resolved by explicit priority (lower number wins),
  ties broken by insertion order, as TCAM entry ordering does.

Two lookup paths exist:

* the **compiled fast path** (:meth:`MatchActionTable.lookup`): entries are
  kept pre-sorted by ``(priority, handle)`` in per-bucket and unindexed
  pools so the scan early-exits on the first match; each entry's key tuple
  is compiled once into ``(slot, value & mask, mask)`` triples against the
  PHV's interned slot layout, so a key test is two list indexes and one
  masked compare;
* the **reference path** (:meth:`MatchActionTable.lookup_reference`): a
  naive full scan through :class:`TernaryKey.matches` used as the oracle by
  the equivalence property tests.

A ``generation`` counter increments on every structural update (insert,
delete, clear); all derived compiled state is keyed on it, so a packet in
flight either sees an entry fully or not at all — never a half-built index.
Deletes are tombstones (O(1) amortized): the entry is unlinked from the
handle map immediately and the sorted pools are compacted only once
tombstones pile up.
"""

from __future__ import annotations

import itertools
from bisect import insort
from dataclasses import dataclass, field

from . import flowcache
from .phv import PHV


class TableFullError(RuntimeError):
    """Raised when an insert would exceed the table's capacity."""


class EntryNotFoundError(KeyError):
    """Raised when deleting or fetching an entry that does not exist."""


@dataclass(frozen=True)
class TernaryKey:
    """One match condition: ``phv[field] & mask == value & mask``."""

    field: str
    value: int
    mask: int

    def matches(self, phv: PHV) -> bool:
        if not phv.has(self.field):
            return False
        return (phv.get(self.field) & self.mask) == (self.value & self.mask)


def _entry_order(entry: "TableEntry") -> tuple[int, int]:
    return (entry.priority, entry.handle)


@dataclass
class TableEntry:
    """A single installed match-action entry."""

    keys: tuple[TernaryKey, ...]
    action: str
    action_data: dict = field(default_factory=dict)
    priority: int = 0
    handle: int = -1  # assigned by the table on insert
    #: direct counter: packets that matched this entry
    hits: int = 0
    #: False once deleted; tombstones are skipped by the fast path and
    #: swept out of the sorted pools in bulk
    live: bool = field(default=True, repr=False, compare=False)
    #: compiled key triples ``(field, value & mask, mask)`` — set at insert
    compiled_keys: tuple = field(default=None, repr=False, compare=False)
    #: action closure bound by the owning execution unit (e.g. an RPB),
    #: resolved once per deploy rather than per packet
    compiled_op: object = field(default=None, repr=False, compare=False)

    def matches(self, phv: PHV) -> bool:
        return all(key.matches(phv) for key in self.keys)


class MatchActionTable:
    """A fixed-capacity ternary match-action table."""

    _handle_counter = itertools.count(1)

    def __init__(
        self,
        name: str,
        capacity: int,
        *,
        default_action: str | None = None,
        default_action_data: dict | None = None,
        index_field: str | None = None,
        index_mask: int = 0,
    ):
        self.name = name
        self.capacity = capacity
        self.default_action = default_action
        self.default_action_data = default_action_data or {}
        self._entries: dict[int, TableEntry] = {}
        #: Optional lookup acceleration: entries carrying a key on
        #: ``index_field`` with exactly ``index_mask`` are bucketed by the
        #: masked value (models hardware key hashing; purely an
        #: optimization, match semantics unchanged).
        self._index_field = index_field
        self._index_mask = index_mask
        self._index: dict[int, list[TableEntry]] = {}
        self._unindexed: list[TableEntry] = []
        #: structural-update counter: any insert/delete/clear bumps it,
        #: invalidating every cache derived from the entry set
        self.generation = 0
        self._tombstones = 0
        #: compiled candidate pools, keyed by masked index value (or "*"
        #: for lookups that cannot use the index): bucket + unindexed
        #: entries merged in (priority, handle) order, each as a
        #: ``(slot_triples_or_None, entry)`` pair.  Valid only for
        #: (_compiled_gen, _compiled_cl); any structural update or layout
        #: change drops the whole cache.
        self._compiled_pools: dict = {}
        self._compiled_gen = -1
        self._compiled_cl = None
        self._index_slot: int | None = None
        #: number of lookups / hits, for utilization reporting
        self.lookups = 0
        self.hits = 0
        #: zero-arg callbacks invoked after every structural update
        #: (insert/delete/clear) — the flow cache registers its
        #: generation bump here so direct table mutations invalidate it
        self.on_mutation: list = []

    def _index_value(self, entry: TableEntry) -> int | None:
        if self._index_field is None:
            return None
        for key in entry.keys:
            if key.field == self._index_field and key.mask == self._index_mask:
                return key.value & self._index_mask
        return None

    # -- management --------------------------------------------------------
    def insert(self, entry: TableEntry) -> int:
        """Atomically install ``entry``; returns its handle."""
        if len(self._entries) >= self.capacity:
            raise TableFullError(f"table {self.name} full ({self.capacity} entries)")
        handle = next(self._handle_counter)
        entry.handle = handle
        entry.live = True
        entry.compiled_keys = tuple(
            (key.field, key.value & key.mask, key.mask) for key in entry.keys
        )
        entry.compiled_op = None
        self._entries[handle] = entry
        bucket = self._index_value(entry)
        if bucket is None:
            insort(self._unindexed, entry, key=_entry_order)
        else:
            pool = self._index.get(bucket)
            if pool is None:
                self._index[bucket] = [entry]
            else:
                insort(pool, entry, key=_entry_order)
        self.generation += 1
        for hook in self.on_mutation:
            hook()
        return handle

    def insert_many(self, entries: list["TableEntry"]) -> list[int]:
        """Install a group of entries in one structural update.

        Equivalent to calling :meth:`insert` per entry (handles are
        assigned in order and the resulting pool order is identical —
        ``_entry_order`` is total, so one stable sort after appending
        matches repeated ``insort``), but the sorted pools are rebuilt
        once and the mutation hooks fire once for the whole group.  The
        capacity check happens up front, so a full table rejects the
        group before any entry lands.
        """
        if len(self._entries) + len(entries) > self.capacity:
            raise TableFullError(f"table {self.name} full ({self.capacity} entries)")
        handles: list[int] = []
        touched: list[list[TableEntry]] = []
        for entry in entries:
            handle = next(self._handle_counter)
            entry.handle = handle
            entry.live = True
            entry.compiled_keys = tuple(
                (key.field, key.value & key.mask, key.mask) for key in entry.keys
            )
            entry.compiled_op = None
            self._entries[handle] = entry
            bucket = self._index_value(entry)
            if bucket is None:
                pool = self._unindexed
            else:
                pool = self._index.get(bucket)
                if pool is None:
                    pool = self._index[bucket] = []
            pool.append(entry)
            touched.append(pool)
            handles.append(handle)
        for pool in {id(p): p for p in touched}.values():
            pool.sort(key=_entry_order)
        self.generation += 1
        for hook in self.on_mutation:
            hook()
        return handles

    def delete(self, handle: int) -> None:
        """Atomically remove the entry with ``handle`` (O(1) amortized)."""
        entry = self._entries.pop(handle, None)
        if entry is None:
            raise EntryNotFoundError(f"table {self.name}: no entry {handle}")
        entry.live = False
        self._tombstones += 1
        self.generation += 1
        for hook in self.on_mutation:
            hook()
        if self._tombstones > max(16, len(self._entries)):
            self._sweep()

    def _sweep(self) -> None:
        """Compact tombstones out of the sorted pools."""
        self._unindexed = [e for e in self._unindexed if e.live]
        for bucket in list(self._index):
            pool = [e for e in self._index[bucket] if e.live]
            if pool:
                self._index[bucket] = pool
            else:
                del self._index[bucket]
        self._tombstones = 0

    def get(self, handle: int) -> TableEntry:
        if handle not in self._entries:
            raise EntryNotFoundError(f"table {self.name}: no entry {handle}")
        return self._entries[handle]

    def clear(self) -> None:
        for entry in self._entries.values():
            entry.live = False
        self._entries.clear()
        self._index.clear()
        self._unindexed.clear()
        self._tombstones = 0
        self.generation += 1
        for hook in self.on_mutation:
            hook()

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def free_entries(self) -> int:
        return self.capacity - len(self._entries)

    def utilization(self) -> float:
        return len(self._entries) / self.capacity if self.capacity else 0.0

    def entries(self) -> list[TableEntry]:
        return list(self._entries.values())

    # -- data plane ----------------------------------------------------------
    def lookup(self, phv: PHV) -> tuple[str, dict] | None:
        """Find the highest-priority matching entry.

        Returns ``(action, action_data)``; falls back to the default action
        if no entry matches, or ``None`` if there is no default either.
        """
        entry = self.lookup_entry(phv)
        if entry is not None:
            return entry.action, entry.action_data
        if self.default_action is not None:
            return self.default_action, self.default_action_data
        return None

    def lookup_entry(self, phv: PHV) -> TableEntry | None:
        """Fast path: return the winning live entry (or ``None``), updating
        the lookup/hit counters exactly as :meth:`lookup` does."""
        rec = flowcache._RECORDER
        if rec is not None:
            return self._lookup_entry_recorded(rec, phv)
        self.lookups += 1
        cl = phv.cl
        if self._compiled_gen != self.generation or self._compiled_cl is not cl:
            self._recompile(cl)
        if self._index_field is not None:
            index_slot = self._index_slot
            if index_slot is not None:
                index_value = phv.slots[index_slot]
            elif phv.has(self._index_field):
                # Index field lives outside the slot layout (late-declared);
                # fall back to the dict API for the bucket selection.
                index_value = phv.get(self._index_field)
            else:
                index_value = None
            key = index_value & self._index_mask if index_value is not None else "*"
        else:
            key = "*"
        pool = self._compiled_pools.get(key)
        if pool is None:
            pool = self._build_pool(key, cl)
        slots = phv.slots
        for triples, entry in pool:
            if triples is None:
                # Entry keyed on a field outside this layout's slot space:
                # match through the generic dict-API path.
                if entry.matches(phv):
                    self.hits += 1
                    entry.hits += 1
                    return entry
                continue
            for slot, value, mask in triples:
                pv = slots[slot]
                if pv is None or (pv & mask) != value:
                    break
            else:
                self.hits += 1
                entry.hits += 1
                return entry
        return None

    def _lookup_entry_recorded(self, rec, phv: PHV) -> TableEntry | None:
        """Recording-pass lookup: identical semantics and counters to
        :meth:`lookup_entry`, but every key consulted along the scan is
        reported to the flow-cache recorder — the per-failing-entry keys
        up to and including the first mismatch, and the winner's full key
        set.  Entries after the winner are never consulted, so their
        masks stay out of the megaflow key (that is what makes the cache
        a *megaflow* cache rather than an exact-match one)."""
        self.lookups += 1
        cl = phv.cl
        if self._compiled_gen != self.generation or self._compiled_cl is not cl:
            self._recompile(cl)
        if self._index_field is not None:
            if phv.has(self._index_field):
                rec.note_field_consult(self._index_field, self._index_mask)
                key = phv.get(self._index_field) & self._index_mask
            else:
                rec.note_field_absent(self._index_field)
                key = "*"
        else:
            key = "*"
        pool = self._compiled_pools.get(key)
        if pool is None:
            pool = self._build_pool(key, cl)
        for _triples, entry in pool:
            matched = True
            for fname, value, mask in entry.compiled_keys:
                if not phv.has(fname):
                    rec.note_field_absent(fname)
                    matched = False
                    break
                rec.note_field_consult(fname, mask)
                if (phv.get(fname) & mask) != value:
                    matched = False
                    break
            if matched:
                self.hits += 1
                entry.hits += 1
                rec.note_lookup(self, entry)
                return entry
        rec.note_lookup(self, None)
        return None

    def _recompile(self, cl) -> None:
        """Reset compiled lookup state for the current (generation, layout)."""
        self._compiled_pools = {}
        self._compiled_gen = self.generation
        self._compiled_cl = cl
        self._index_slot = (
            cl.slot_of.get(self._index_field) if self._index_field is not None else None
        )

    def _build_pool(self, key, cl) -> list:
        """Compile the candidate pool for one masked index value.

        The pool merges the bucket's entries with the unindexed entries in
        (priority, handle) order — which is exactly "lowest priority wins,
        ties broken by insertion order" — and resolves every entry's keys
        to slot triples once, so the per-packet scan is a flat loop.
        """
        if key == "*":
            candidates = sorted(self._entries.values(), key=_entry_order)
        else:
            bucket = self._index.get(key, ())
            unindexed = self._unindexed
            if not unindexed:
                candidates = [e for e in bucket if e.live]
            elif not bucket:
                candidates = [e for e in unindexed if e.live]
            else:
                candidates = sorted(
                    [e for e in bucket if e.live] + [e for e in unindexed if e.live],
                    key=_entry_order,
                )
        slot_of = cl.slot_of
        pool = []
        for entry in candidates:
            triples: tuple | None = tuple(
                (slot_of[fname], value, mask)
                for fname, value, mask in entry.compiled_keys
                if fname in slot_of
            )
            if len(triples) != len(entry.compiled_keys):
                triples = None
            pool.append((triples, entry))
        if len(self._compiled_pools) >= 4096:
            # Pathological probe streams could otherwise grow one pool per
            # distinct masked index value without bound.
            self._compiled_pools.clear()
        self._compiled_pools[key] = pool
        return pool

    # -- reference path -------------------------------------------------------
    def lookup_reference_entry(self, phv: PHV) -> TableEntry | None:
        """Naive full-scan oracle: same semantics as the fast path —
        lowest priority wins, ties broken by insertion order (handle) —
        implemented directly from the documented TCAM rules.  Updates no
        counters; used by the equivalence property tests."""
        best: TableEntry | None = None
        for entry in self._entries.values():
            if entry.matches(phv):
                if best is None or (entry.priority, entry.handle) < (
                    best.priority,
                    best.handle,
                ):
                    best = entry
        return best

    def lookup_reference(self, phv: PHV) -> tuple[str, dict] | None:
        entry = self.lookup_reference_entry(phv)
        if entry is not None:
            return entry.action, entry.action_data
        if self.default_action is not None:
            return self.default_action, self.default_action_data
        return None
