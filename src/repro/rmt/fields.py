"""Field registry for the simulated RMT chip.

Every value a match-action table can match on or an action can modify is a
*field*: either a header field (``hdr.<header>.<name>``) or an intrinsic /
user metadata field (``meta.<name>``).  The registry records each field's
bit width so tables, actions, and the P4runpro semantic checker can validate
operands, and so the resource model can account PHV bits.

The header set mirrors the parsers used by the paper's evaluation: Ethernet,
IPv4, TCP, UDP, the NetCache-style cache header (``nc``), and a small
calculator header (``calc``).  Operators may register additional headers via
:func:`register_header` before building a switch.
"""

from __future__ import annotations

from dataclasses import dataclass


class UnknownFieldError(KeyError):
    """Raised when a field name is not present in the registry."""


@dataclass(frozen=True)
class FieldSpec:
    """Static description of a single PHV field."""

    name: str  # fully qualified, e.g. "hdr.ipv4.dst"
    width: int  # bits

    @property
    def max_value(self) -> int:
        return (1 << self.width) - 1

    @property
    def header(self) -> str | None:
        """Header name for ``hdr.*`` fields, ``None`` for metadata."""
        parts = self.name.split(".")
        if parts[0] == "hdr":
            return parts[1]
        return None


#: header name -> ordered {field: width}.  Order matters: it is the wire
#: order used when computing header sizes for the traffic model.
HEADER_LAYOUTS: dict[str, dict[str, int]] = {
    "eth": {"dst": 48, "src": 48, "etype": 16},
    "ipv4": {
        "ver_ihl": 8,
        "dscp": 6,
        "ecn": 2,
        "len": 16,
        "id": 16,
        "flags_frag": 16,
        "ttl": 8,
        "proto": 8,
        "checksum": 16,
        "src": 32,
        "dst": 32,
    },
    "tcp": {
        "src_port": 16,
        "dst_port": 16,
        "seq": 32,
        "ack": 32,
        "flags": 8,
        "window": 16,
    },
    "udp": {"src_port": 16, "dst_port": 16, "len": 16},
    # NetCache-style in-network cache header (paper Fig. 2).
    "nc": {"op": 8, "key1": 32, "key2": 32, "val": 32},
    # Simple calculator header for the `calc` program.
    "calc": {"op": 8, "a": 32, "b": 32, "result": 32},
    # Tunnel header used by the `tunnel` program.
    "tun": {"id": 32},
}

#: Aliases tolerated in P4runpro sources.  The paper's own cache program
#: refers to the cache value as both ``hdr.nc.value`` and ``hdr.nc.val``.
FIELD_ALIASES: dict[str, str] = {
    "hdr.nc.value": "hdr.nc.val",
}

#: Intrinsic + user metadata fields, per the simulated chip.
METADATA_FIELDS: dict[str, int] = {
    "meta.ingress_port": 9,
    "meta.egress_port": 9,
    "meta.queue_depth": 19,
    "meta.pkt_len": 16,
    "meta.timestamp": 32,
}


def _build_registry() -> dict[str, FieldSpec]:
    registry: dict[str, FieldSpec] = {}
    for header, layout in HEADER_LAYOUTS.items():
        for field, width in layout.items():
            name = f"hdr.{header}.{field}"
            registry[name] = FieldSpec(name, width)
    for name, width in METADATA_FIELDS.items():
        registry[name] = FieldSpec(name, width)
    return registry


_REGISTRY: dict[str, FieldSpec] = _build_registry()

#: Bumped whenever the registry grows so compiled PHV layouts (which intern
#: field names into slot indices) know to rebuild.
_GENERATION = 0


def registry_generation() -> int:
    return _GENERATION


def canonical_name(name: str) -> str:
    """Resolve aliases to the canonical field name."""
    return FIELD_ALIASES.get(name, name)


def lookup(name: str) -> FieldSpec:
    """Return the :class:`FieldSpec` for ``name`` (alias-aware)."""
    spec = _REGISTRY.get(canonical_name(name))
    if spec is None:
        raise UnknownFieldError(name)
    return spec


def is_known(name: str) -> bool:
    return canonical_name(name) in _REGISTRY


def all_fields() -> dict[str, FieldSpec]:
    """A copy of the full registry (for resource accounting)."""
    return dict(_REGISTRY)


def register_header(header: str, layout: dict[str, int]) -> None:
    """Register a custom header at switch-build time.

    Raises ``ValueError`` if the header already exists with a different
    layout, to catch accidental redefinition.
    """
    global _GENERATION
    existing = HEADER_LAYOUTS.get(header)
    if existing is not None:
        if existing != layout:
            raise ValueError(f"header {header!r} already registered with a different layout")
        return
    HEADER_LAYOUTS[header] = dict(layout)
    for field, width in layout.items():
        name = f"hdr.{header}.{field}"
        _REGISTRY[name] = FieldSpec(name, width)
    _GENERATION += 1


def header_size_bytes(header: str) -> int:
    """Wire size of a header, rounded up to whole bytes."""
    layout = HEADER_LAYOUTS[header]
    bits = sum(layout.values())
    return (bits + 7) // 8
