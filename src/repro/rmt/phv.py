"""Packet Header Vector (PHV) model.

On a real RMT chip the PHV is the bundle of containers that carries all
per-packet state through the pipeline: parsed header fields, intrinsic
metadata, and user metadata.  The simulator's :class:`PHV` mirrors that: a
fixed vector of containers ("slots"), one per known field, with a *layout*
(:class:`PHVLayout`) tracking which user-metadata fields exist and how many
container bits the program consumes — the quantity the resource model
(Fig. 10 of the paper) accounts.

Hot-path design: the layout is compiled once into a :class:`CompiledLayout`
that interns every field name to a slot index.  Reads and writes on the hot
path are then list-index operations instead of string-keyed dict lookups; an
absent field (unparsed header) is an ``None`` slot.  The dict-style API
(``get``/``set``/``has``/``values``) is kept as a thin compatible wrapper,
falling back to a slow path for fields registered after compilation.

Match-action tables match on PHV fields; actions read and write them.  At
deparse time header fields are copied back into the packet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import fields as field_registry
from .packet import Packet


class PHVOverflowError(RuntimeError):
    """Raised when user metadata exceeds the chip's PHV container budget."""


class CompiledLayout:
    """Field-name -> slot interning for one :class:`PHVLayout` snapshot.

    Built lazily by :meth:`PHVLayout.compiled` and invalidated whenever the
    layout (or the global field registry) grows, so every PHV constructed
    from the same layout shares one slot map, one width-mask table, and one
    pre-built template vector.
    """

    __slots__ = (
        "slot_of",
        "slot_names",
        "masks",
        "template",
        "header_slots",
        "registry_gen",
        "user_count",
        "slot_ingress",
        "slot_egress",
        "slot_qdepth",
        "slot_pktlen",
        "slot_ts",
    )

    def __init__(self, layout: "PHVLayout"):
        slot_of: dict[str, int] = {}
        slot_names: list[str] = []
        masks: list[int] = []
        template: list[int | None] = []

        def add(name: str, width: int, initial: int | None) -> int:
            index = len(slot_names)
            slot_of[name] = index
            slot_names.append(name)
            masks.append((1 << width) - 1)
            template.append(initial)
            return index

        header_slots: dict[str, list[tuple[str, int]]] = {}
        for name, spec in field_registry.all_fields().items():
            if name.startswith("hdr."):
                index = add(name, spec.width, None)
                _, header, fname = name.split(".", 2)
                header_slots.setdefault(header, []).append((fname, index))
            else:
                # Intrinsic metadata is always present (zeroed until the
                # PHV constructor fills it from the packet).
                add(name, spec.width, 0)
        for name, width in layout.user_fields.items():
            # User metadata starts zeroed, as on hardware after parser init.
            add(name, width, 0)
        for alias, canonical in field_registry.FIELD_ALIASES.items():
            if canonical in slot_of:
                slot_of[alias] = slot_of[canonical]

        self.slot_of = slot_of
        self.slot_names = slot_names
        self.masks = masks
        self.template = template
        self.header_slots = header_slots
        self.registry_gen = field_registry.registry_generation()
        self.user_count = len(layout.user_fields)
        self.slot_ingress = slot_of["meta.ingress_port"]
        self.slot_egress = slot_of["meta.egress_port"]
        self.slot_qdepth = slot_of["meta.queue_depth"]
        self.slot_pktlen = slot_of["meta.pkt_len"]
        self.slot_ts = slot_of["meta.timestamp"]


@dataclass
class PHVLayout:
    """User-metadata declarations and PHV bit accounting.

    The chip provides a fixed pool of PHV container bits shared by headers,
    intrinsic metadata, and user metadata.  ``declare`` registers a new user
    metadata field; the layout rejects declarations past the budget.
    """

    budget_bits: int = 4096  # Tofino-like: 64x8b + 96x16b + 64x32b containers
    user_fields: dict[str, int] = field(default_factory=dict)  # name -> width

    def __post_init__(self) -> None:
        self._compiled: CompiledLayout | None = None

    def declare(self, name: str, width: int) -> None:
        if not name.startswith("ud."):
            raise ValueError("user metadata fields must be named 'ud.<name>'")
        if name in self.user_fields:
            if self.user_fields[name] != width:
                raise ValueError(f"{name} redeclared with different width")
            return
        if self.used_bits() + width > self.budget_bits:
            raise PHVOverflowError(
                f"declaring {name} ({width}b) exceeds PHV budget of {self.budget_bits}b"
            )
        self.user_fields[name] = width
        self._compiled = None

    def compiled(self) -> CompiledLayout:
        """The interned field->slot mapping for the layout's current shape."""
        compiled = self._compiled
        if (
            compiled is None
            or compiled.registry_gen != field_registry.registry_generation()
            or compiled.user_count != len(self.user_fields)
        ):
            compiled = CompiledLayout(self)
            self._compiled = compiled
        return compiled

    def width_of(self, name: str) -> int:
        if name in self.user_fields:
            return self.user_fields[name]
        return field_registry.lookup(name).width

    def header_bits(self) -> int:
        return sum(spec.width for name, spec in field_registry.all_fields().items())

    def used_bits(self) -> int:
        return self.header_bits() + sum(self.user_fields.values())

    def utilization(self) -> float:
        return self.used_bits() / self.budget_bits


class PHV:
    """Per-packet header vector instance flowing through the pipeline."""

    __slots__ = ("layout", "packet", "cl", "slots", "valid_headers", "_extra")

    def __init__(self, layout: PHVLayout, packet: Packet):
        self.layout = layout
        self.packet = packet
        cl = layout.compiled()
        self.cl = cl
        slots = cl.template.copy()
        self.slots = slots
        self.valid_headers: set[str] = set()
        #: overflow store for fields that have no slot (registered after
        #: this PHV's layout was compiled) — keeps the dict API complete.
        self._extra: dict[str, int] | None = None
        slots[cl.slot_ingress] = packet.ingress_port
        slots[cl.slot_qdepth] = packet.queue_depth
        slots[cl.slot_pktlen] = packet.size
        slots[cl.slot_ts] = int(packet.ts * 1_000_000) & 0xFFFFFFFF

    def reset(self, packet: Packet) -> None:
        """Reinitialize for a new packet, reusing the slot vector.

        Must leave the PHV indistinguishable from a fresh
        ``PHV(layout, packet)`` built against the same compiled layout —
        the contract the batch-scoped PHV pool relies on.
        """
        self.packet = packet
        cl = self.cl
        slots = self.slots
        slots[:] = cl.template
        self.valid_headers.clear()
        self._extra = None
        slots[cl.slot_ingress] = packet.ingress_port
        slots[cl.slot_qdepth] = packet.queue_depth
        slots[cl.slot_pktlen] = packet.size
        slots[cl.slot_ts] = int(packet.ts * 1_000_000) & 0xFFFFFFFF

    # -- field access ----------------------------------------------------
    def get(self, name: str) -> int:
        index = self.cl.slot_of.get(name)
        if index is not None:
            value = self.slots[index]
            if value is not None:
                return value
        elif self._extra is not None:
            canonical = field_registry.canonical_name(name)
            if canonical in self._extra:
                return self._extra[canonical]
        raise KeyError(f"PHV has no field {name} for this packet")

    def set(self, name: str, value: int) -> None:
        cl = self.cl
        index = cl.slot_of.get(name)
        if index is None:
            self._set_slow(name, value)
            return
        slots = self.slots
        if slots[index] is None and name.startswith("hdr."):
            raise KeyError(f"PHV has no field {name} for this packet")
        slots[index] = value & cl.masks[index]

    def _set_slow(self, name: str, value: int) -> None:
        # Field registered after this PHV's layout snapshot was compiled
        # (late ``declare`` / ``register_header``) — mirror the historical
        # dict semantics exactly, including the error cases.
        name = field_registry.canonical_name(name)
        index = self.cl.slot_of.get(name)
        if index is not None:
            self.set(name, value)
            return
        width = self.layout.width_of(name)
        if name.startswith("hdr."):
            raise KeyError(f"PHV has no field {name} for this packet")
        if self._extra is None:
            self._extra = {}
        self._extra[name] = value & ((1 << width) - 1)

    def has(self, name: str) -> bool:
        index = self.cl.slot_of.get(name)
        if index is not None:
            return self.slots[index] is not None
        if self._extra is not None:
            return field_registry.canonical_name(name) in self._extra
        return False

    @property
    def values(self) -> dict[str, int]:
        """Dict view of the present fields (compatibility wrapper)."""
        names = self.cl.slot_names
        out = {
            names[i]: value
            for i, value in enumerate(self.slots)
            if value is not None
        }
        if self._extra:
            out.update(self._extra)
        return out

    # -- header lifecycle -------------------------------------------------
    def load_header(self, header: str) -> None:
        """Copy a parsed header's fields from the packet into the PHV."""
        self.valid_headers.add(header)
        source = self.packet.headers[header]
        layout_slots = self.cl.header_slots.get(header)
        if layout_slots is not None and len(layout_slots) == len(source):
            slots = self.slots
            try:
                for fname, index in layout_slots:
                    slots[index] = source[fname]
                return
            except KeyError:
                pass  # field set mismatch: fall through to the slow path
        self._load_header_slow(header, source)

    def _load_header_slow(self, header: str, source: dict[str, int]) -> None:
        slot_of = self.cl.slot_of
        for fname, value in source.items():
            index = slot_of.get(f"hdr.{header}.{fname}")
            if index is not None:
                self.slots[index] = value
            else:
                if self._extra is None:
                    self._extra = {}
                self._extra[f"hdr.{header}.{fname}"] = value

    def deparse(self) -> Packet:
        """Write modified header fields back into the packet and return it."""
        slots = self.slots
        header_slots = self.cl.header_slots
        for header in self.valid_headers:
            target = self.packet.headers[header]
            layout_slots = header_slots.get(header)
            if layout_slots is not None:
                for fname, index in layout_slots:
                    value = slots[index]
                    if value is not None and fname in target:
                        target[fname] = value
            if self._extra:
                prefix = f"hdr.{header}."
                for key, value in self._extra.items():
                    if key.startswith(prefix):
                        fname = key[len(prefix) :]
                        if fname in target:
                            target[fname] = value
        return self.packet
