"""Packet Header Vector (PHV) model.

On a real RMT chip the PHV is the bundle of containers that carries all
per-packet state through the pipeline: parsed header fields, intrinsic
metadata, and user metadata.  The simulator's :class:`PHV` mirrors that: a
flat map from fully qualified field names to integer values, with a
*layout* (:class:`PHVLayout`) tracking which user-metadata fields exist and
how many container bits the program consumes — the quantity the resource
model (Fig. 10 of the paper) accounts.

Match-action tables match on PHV fields; actions read and write them.  At
deparse time header fields are copied back into the packet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import fields as field_registry
from .packet import Packet


class PHVOverflowError(RuntimeError):
    """Raised when user metadata exceeds the chip's PHV container budget."""


@dataclass
class PHVLayout:
    """User-metadata declarations and PHV bit accounting.

    The chip provides a fixed pool of PHV container bits shared by headers,
    intrinsic metadata, and user metadata.  ``declare`` registers a new user
    metadata field; the layout rejects declarations past the budget.
    """

    budget_bits: int = 4096  # Tofino-like: 64x8b + 96x16b + 64x32b containers
    user_fields: dict[str, int] = field(default_factory=dict)  # name -> width

    def declare(self, name: str, width: int) -> None:
        if not name.startswith("ud."):
            raise ValueError("user metadata fields must be named 'ud.<name>'")
        if name in self.user_fields:
            if self.user_fields[name] != width:
                raise ValueError(f"{name} redeclared with different width")
            return
        if self.used_bits() + width > self.budget_bits:
            raise PHVOverflowError(
                f"declaring {name} ({width}b) exceeds PHV budget of {self.budget_bits}b"
            )
        self.user_fields[name] = width

    def width_of(self, name: str) -> int:
        if name in self.user_fields:
            return self.user_fields[name]
        return field_registry.lookup(name).width

    def header_bits(self) -> int:
        return sum(spec.width for name, spec in field_registry.all_fields().items())

    def used_bits(self) -> int:
        return self.header_bits() + sum(self.user_fields.values())

    def utilization(self) -> float:
        return self.used_bits() / self.budget_bits


class PHV:
    """Per-packet header vector instance flowing through the pipeline."""

    __slots__ = ("layout", "values", "valid_headers", "packet")

    def __init__(self, layout: PHVLayout, packet: Packet):
        self.layout = layout
        self.packet = packet
        self.values: dict[str, int] = {}
        self.valid_headers: set[str] = set()
        # Intrinsic metadata is always present.
        self.values["meta.ingress_port"] = packet.ingress_port
        self.values["meta.egress_port"] = 0
        self.values["meta.queue_depth"] = packet.queue_depth
        self.values["meta.pkt_len"] = packet.size
        self.values["meta.timestamp"] = int(packet.ts * 1_000_000) & 0xFFFFFFFF
        # User metadata starts zeroed, as on hardware after parser init.
        for name in layout.user_fields:
            self.values[name] = 0

    # -- field access ----------------------------------------------------
    def get(self, name: str) -> int:
        name = field_registry.canonical_name(name)
        try:
            return self.values[name]
        except KeyError as exc:
            raise KeyError(f"PHV has no field {name} for this packet") from exc

    def set(self, name: str, value: int) -> None:
        name = field_registry.canonical_name(name)
        width = self.layout.width_of(name)
        if name.startswith("hdr.") and name not in self.values:
            raise KeyError(f"PHV has no field {name} for this packet")
        self.values[name] = value & ((1 << width) - 1)

    def has(self, name: str) -> bool:
        return field_registry.canonical_name(name) in self.values

    # -- header lifecycle -------------------------------------------------
    def load_header(self, header: str) -> None:
        """Copy a parsed header's fields from the packet into the PHV."""
        self.valid_headers.add(header)
        for fname, value in self.packet.headers[header].items():
            self.values[f"hdr.{header}.{fname}"] = value

    def deparse(self) -> Packet:
        """Write modified header fields back into the packet and return it."""
        for header in self.valid_headers:
            for fname in self.packet.headers[header]:
                key = f"hdr.{header}.{fname}"
                if key in self.values:
                    self.packet.headers[header][fname] = self.values[key]
        return self.packet
