"""Wire-format serialization: structural packets <-> real bytes.

The simulator works on structural packets, but interoperating with the
outside world (and validating that our header layouts are real) needs
bytes.  This module packs packets bit-exactly according to
``fields.HEADER_LAYOUTS`` — including a correct IPv4 header checksum —
parses them back, and exports classic libpcap files any external tool
(tcpdump, wireshark, scapy) can open.

Unknown/custom headers (``nc``, ``calc``, ``tun``) serialize as the raw
payload bytes their layouts define, exactly how they would ride UDP on
the paper's testbed.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable

from .fields import HEADER_LAYOUTS, header_size_bytes
from .packet import ETYPE_IPV4, PROTO_TCP, PROTO_UDP, Packet

#: classic pcap magic (microsecond timestamps), LINKTYPE_ETHERNET
PCAP_MAGIC = 0xA1B2C3D4
LINKTYPE_ETHERNET = 1

#: etype used by the `tun` header in the default parse machine
ETYPE_TUN = 0x88F7


class WireFormatError(ValueError):
    """Malformed bytes or an unserializable packet."""


# ---------------------------------------------------------------------------
# bit packing against HEADER_LAYOUTS
# ---------------------------------------------------------------------------
def pack_header(header: str, fields: dict[str, int]) -> bytes:
    """Pack one header's fields into wire bytes (big-endian bit order)."""
    layout = HEADER_LAYOUTS[header]
    total_bits = sum(layout.values())
    if total_bits % 8:
        raise WireFormatError(f"header {header!r} is not byte-aligned")
    value = 0
    for name, width in layout.items():
        field_value = fields.get(name, 0)
        if field_value >= 1 << width:
            raise WireFormatError(f"{header}.{name} = {field_value} overflows {width} bits")
        value = (value << width) | field_value
    return value.to_bytes(total_bits // 8, "big")


def unpack_header(header: str, data: bytes) -> tuple[dict[str, int], bytes]:
    """Unpack one header from the front of ``data``; returns (fields, rest)."""
    layout = HEADER_LAYOUTS[header]
    size = header_size_bytes(header)
    if len(data) < size:
        raise WireFormatError(f"short packet: need {size} bytes for {header}")
    value = int.from_bytes(data[:size], "big")
    total_bits = sum(layout.values())
    fields: dict[str, int] = {}
    consumed = 0
    for name, width in layout.items():
        consumed += width
        fields[name] = (value >> (total_bits - consumed)) & ((1 << width) - 1)
    return fields, data[size:]


def ipv4_checksum(header_bytes: bytes) -> int:
    """RFC 1071 ones-complement sum over the IPv4 header."""
    if len(header_bytes) % 2:
        header_bytes += b"\x00"
    total = sum(struct.unpack(f">{len(header_bytes) // 2}H", header_bytes))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


# ---------------------------------------------------------------------------
# whole-packet serialization
# ---------------------------------------------------------------------------
def serialize(packet: Packet) -> bytes:
    """Render a structural packet to wire bytes, padded to ``packet.size``.

    The IPv4 checksum is recomputed; ``ipv4.len`` is set to the actual
    IP-layer length so external tools parse the result cleanly.
    """
    order = [h for h in ("eth", "tun", "ipv4", "tcp", "udp", "nc", "calc") if h in packet.headers]
    data = b""
    ip_payload = sum(header_size_bytes(h) for h in order if h not in ("eth", "tun", "ipv4"))
    for header in order:
        fields = dict(packet.headers[header])
        if header == "ipv4":
            fields["len"] = header_size_bytes("ipv4") + ip_payload + max(
                packet.size - sum(header_size_bytes(h) for h in order), 0
            )
            fields["checksum"] = 0
            raw = pack_header("ipv4", fields)
            fields["checksum"] = ipv4_checksum(raw)
        data += pack_header(header, fields)
    if packet.size > len(data):
        data += bytes(packet.size - len(data))  # zero payload padding
    return data


def deserialize(data: bytes, *, nc_port: int = 7777, calc_port: int = 8888) -> Packet:
    """Parse wire bytes back into a structural packet (default parse graph)."""
    headers: dict[str, dict[str, int]] = {}
    fields, rest = unpack_header("eth", data)
    headers["eth"] = fields
    if fields["etype"] == ETYPE_TUN:
        headers["tun"], rest = unpack_header("tun", rest)
    elif fields["etype"] == ETYPE_IPV4:
        ip, rest = unpack_header("ipv4", rest)
        headers["ipv4"] = ip
        if ip["proto"] == PROTO_TCP:
            headers["tcp"], rest = unpack_header("tcp", rest)
        elif ip["proto"] == PROTO_UDP:
            udp, rest = unpack_header("udp", rest)
            headers["udp"] = udp
            if udp["dst_port"] == nc_port and len(rest) >= header_size_bytes("nc"):
                headers["nc"], rest = unpack_header("nc", rest)
            elif udp["dst_port"] == calc_port and len(rest) >= header_size_bytes("calc"):
                headers["calc"], rest = unpack_header("calc", rest)
    return Packet(headers=headers, size=len(data))


def verify_ipv4_checksum(data: bytes) -> bool:
    """True if the embedded IPv4 checksum of serialized bytes is valid."""
    eth_size = header_size_bytes("eth")
    ip_size = header_size_bytes("ipv4")
    ip_bytes = data[eth_size : eth_size + ip_size]
    return ipv4_checksum(ip_bytes) == 0


# ---------------------------------------------------------------------------
# libpcap export / import
# ---------------------------------------------------------------------------
def save_pcap(path: str | Path, packets: Iterable[Packet]) -> int:
    """Write packets to a classic libpcap file; returns the record count."""
    count = 0
    with open(path, "wb") as out:
        out.write(
            struct.pack(
                ">IHHiIII", PCAP_MAGIC, 2, 4, 0, 0, 65535, LINKTYPE_ETHERNET
            )
        )
        for packet in packets:
            data = serialize(packet)
            seconds = int(packet.ts)
            micros = int((packet.ts - seconds) * 1e6)
            out.write(struct.pack(">IIII", seconds, micros, len(data), len(data)))
            out.write(data)
            count += 1
    return count


def load_pcap(path: str | Path, **parse_kwargs) -> list[Packet]:
    """Read a classic libpcap file written by :func:`save_pcap`."""
    packets: list[Packet] = []
    with open(path, "rb") as stream:
        header = stream.read(24)
        if len(header) < 24:
            raise WireFormatError("truncated pcap global header")
        (magic,) = struct.unpack(">I", header[:4])
        if magic == PCAP_MAGIC:
            endian = ">"
        elif magic == struct.unpack("<I", struct.pack(">I", PCAP_MAGIC))[0]:
            endian = "<"
        else:
            raise WireFormatError(f"not a pcap file (magic {magic:#x})")
        while True:
            record = stream.read(16)
            if not record:
                break
            if len(record) < 16:
                raise WireFormatError("truncated pcap record header")
            seconds, micros, incl_len, _orig_len = struct.unpack(
                f"{endian}IIII", record
            )
            data = stream.read(incl_len)
            if len(data) < incl_len:
                raise WireFormatError("truncated pcap record body")
            packet = deserialize(data, **parse_kwargs)
            packet.ts = seconds + micros / 1e6
            packets.append(packet)
    return packets
