"""Two-tier flow cache: exact-match + megaflow trace cache (OVS-style).

Software datapaths amortize per-packet pipeline traversal with flow
caching; this module brings the same structure to the simulated RMT
switch.  Two tiers front :meth:`Switch.process_packet`:

* the **exact-match cache (EMC)** keys on the packet's parsed header
  bytes plus the intrinsic metadata the PHV constructor reads (ingress
  port, queue depth, length, timestamp).  A hit on a *pure* trace (no
  register-array ops) applies a precompiled verdict template — recorded
  header rewrites, verdict, ports, bridge state, counter deltas —
  without building a PHV at all;
* the **megaflow cache** keys on the *masked* fields the original
  traversal actually consulted: parser presence checks and select
  fields, ternary key masks scanned during table lookups (up to and
  including the first failing key of every losing entry), and
  branch-relevant exact keys.  Entries sharing a mask signature live in
  one subtable, exactly like OVS's megaflow classifier.

A megaflow hit (or an EMC hit on a stateful trace) *replays* the
recorded trace: the per-entry compiled action closures run again in
recorded order on a fresh PHV, so stateful steps — SALU register ops,
hash reads, recirculation decisions — re-execute against live state and
cms/bf/cache/hh stay bit-identical with the uncached path.  Traces whose
control flow consults a register *value* produced by a memory op (a
BRANCH entry matching ``ud.sar`` after a MEMREAD) are fundamentally
uncacheable: the recorder marks them dead and installs a negative
megaflow entry so repeat flows skip the recording overhead.

Soundness rests on taint tracking during the recording pass: every PHV
field carries a dependency — ``None`` (constant under the recorded
conditions), a frozenset of raw input fields, or the ``STATEFUL``
sentinel.  A consult of a pristine raw field adds a masked condition; a
consult of a derived field adds full-width conditions on its inputs; a
consult of a stateful field kills the trace.  Any packet matching the
accumulated conditions therefore takes the identical branch path and
matches the identical table entries, making op-sequence replay exact.

Invalidation is generation-based: every southbound mutation (table
insert/delete via :class:`MatchActionTable.on_mutation` hooks,
control-plane register writes, multicast-group programming) bumps
``FlowCache.generation``; entries are stamped at install and lazily
flushed on the next hit attempt.
"""

from __future__ import annotations

from . import fields as field_registry
from .packet import Packet

#: Sentinel dependency: the field's value came out of a register array —
#: replayable (the op re-executes) but never usable for control flow.
STATEFUL = object()

#: Full-width mask for exact-value conditions (``v & -1 == v``).
FULL_MASK = -1

#: The active recorder, if any (single-threaded simulator, mirroring
#: ``tracing._ACTIVE``).  Execution units consult it on their hot paths.
_RECORDER = None

#: When positive, the cache front door is bypassed entirely (execution
#: tracing wants to observe the real traversal, not a replay).
_BYPASS = 0

_canon = field_registry.canonical_name

_META_GETTERS = {
    "meta.ingress_port": lambda p: p.ingress_port,
    "meta.queue_depth": lambda p: p.queue_depth,
    "meta.pkt_len": lambda p: p.size,
    "meta.timestamp": lambda p: int(p.ts * 1_000_000) & 0xFFFFFFFF,
}

#: The intrinsic inputs the PHV constructor reads from the packet; the
#: recorder seeds these as raw inputs on the first pass.
_META_INPUTS = tuple(_META_GETTERS)


def _read_input(packet: Packet, name: str):
    """Read one raw input field off an unprocessed packet (``None`` when
    the packet does not carry it) — the megaflow matcher's accessor."""
    if name.startswith("hdr."):
        _, header, fname = name.split(".", 2)
        fields = packet.headers.get(header)
        if fields is None:
            return None
        return fields.get(fname)
    getter = _META_GETTERS.get(name)
    if getter is None:
        return None
    return getter(packet)


class _PassRecord:
    """Everything one pipeline pass did, replayable without lookups."""

    __slots__ = (
        "headers",
        "bitmap",
        "ingress_ops",
        "egress_ops",
        "ingress_lookups",
        "egress_lookups",
    )

    def __init__(self):
        self.headers: list[str] = []
        self.bitmap = 0
        self.ingress_ops: list = []
        self.egress_ops: list = []
        self.ingress_lookups: list = []
        self.egress_lookups: list = []


class FlowTrace:
    """A recorded end-to-end traversal (all recirculation passes)."""

    __slots__ = ("passes", "stateful", "written")

    def __init__(self, passes, stateful, written):
        self.passes = passes
        self.stateful = stateful
        #: header fields some MODIFY wrote (``hdr.h.f`` names) — the
        #: template builder snapshots their final values
        self.written = written


class _Template:
    """Precompiled EMC verdict template for a pure (stateless) trace."""

    __slots__ = (
        "verdict",
        "egress_port",
        "recirculations",
        "egress_ports",
        "bridge",
        "header_writes",
        "tm_attr",
        "passes",
        "table_counts",
        "entry_counts",
    )


class _EmcEntry:
    __slots__ = ("trace", "template", "generation")

    def __init__(self, trace, template, generation):
        self.trace = trace
        self.template = template
        self.generation = generation


class _MegaflowEntry:
    """``trace is None`` marks a negative (uncacheable-flow) entry."""

    __slots__ = ("trace", "generation")

    def __init__(self, trace, generation):
        self.trace = trace
        self.generation = generation


_TM_ATTR = {
    "forward": "forwarded",
    "drop": "dropped",
    "reflect": "reflected",
    "to_cpu": "to_cpu",
    "multicast": "multicast",
}


class Recorder:
    """Accumulates the trace + consulted-field conditions of one miss pass.

    The switch drives the pass structure (``begin_pass`` /
    ``begin_egress`` / ``finish_pass``); the parser and the execution
    units report loads, consults, ops, and taint through the module's
    ``_RECORDER`` hook while the miss packet takes the normal path.
    """

    __slots__ = (
        "dead",
        "stateful",
        "deps",
        "pristine",
        "input_values",
        "cond_masks",
        "presence",
        "absent",
        "written",
        "passes",
        "_cur",
        "_egress",
        "_carried_deps",
    )

    def __init__(self, packet: Packet):
        self.dead = False
        self.stateful = False
        #: field -> None (constant) | frozenset of raw inputs | STATEFUL
        self.deps: dict = {
            name: frozenset((name,)) for name in _META_INPUTS
        }
        #: raw inputs never overwritten — eligible for masked conditions
        self.pristine: set[str] = set(_META_INPUTS)
        self.input_values: dict[str, int] = {
            name: getter(packet) for name, getter in _META_GETTERS.items()
        }
        #: accumulated megaflow conditions: field -> union of masks
        self.cond_masks: dict[str, int] = {}
        #: parser presence checks: header -> was it on the wire
        self.presence: dict[str, bool] = {}
        #: header fields consulted while unparsed (must stay absent)
        self.absent: set[str] = set()
        self.written: set[str] = set()
        self.passes: list[_PassRecord] = []
        self._cur: _PassRecord | None = None
        self._egress = False
        self._carried_deps: dict | None = None

    # -- pass structure (driven by the switch loop) -----------------------
    def begin_pass(self) -> None:
        if self._cur is not None:
            # A fresh PHV: every field reverts to its template constant
            # except parsed headers (packet-persistent), the intrinsic
            # metadata the constructor re-reads, and the bridged carry.
            kept = {
                name: dep
                for name, dep in self.deps.items()
                if name.startswith("hdr.")
            }
            for name in ("meta.queue_depth", "meta.pkt_len", "meta.timestamp"):
                kept[name] = self.deps.get(name)
            if self._carried_deps:
                kept.update(self._carried_deps)
            # Recirculated passes enter through the recirculation port.
            kept["meta.ingress_port"] = None
            kept["ud.recirc_count"] = None
            self.deps = kept
        self._cur = _PassRecord()
        self._egress = False
        self.passes.append(self._cur)

    def begin_egress(self) -> None:
        self._egress = True

    def finish_pass(self, phv, carried: dict | None) -> None:
        if phv._extra is not None:
            # Late-registered fields live outside the slot layout; the
            # replay path does not model them — refuse to cache.
            self.dead = True
        if carried is not None:
            deps = self.deps
            saved = {name: deps.get(name) for name in carried}
            saved["ud.recirc_count"] = None
            self._carried_deps = saved

    # -- parser hooks -----------------------------------------------------
    def note_header_loaded(self, header: str, packet: Packet) -> None:
        self.presence.setdefault(header, True)
        self._cur.headers.append(header)
        deps = self.deps
        prefix = f"hdr.{header}."
        for fname, value in packet.headers[header].items():
            name = prefix + fname
            if name not in deps:
                deps[name] = frozenset((name,))
                self.pristine.add(name)
                self.input_values[name] = value

    def note_header_missing(self, header: str) -> None:
        self.presence.setdefault(header, False)

    def note_bitmap(self, bitmap: int) -> None:
        self._cur.bitmap = bitmap

    # -- consult / taint hooks (parser, tables, execution units) ----------
    def note_field_consult(self, name: str, mask: int) -> None:
        if self.dead:
            return
        if mask == 0:
            # Wildcard consult (mask-0 ternary key): the value cannot
            # influence the outcome, so it constrains nothing — and must
            # not kill the trace even when the field is STATEFUL.
            return
        name = _canon(name)
        dep = self.deps.get(name)
        if dep is None:
            return  # constant under the recorded conditions
        if dep is STATEFUL:
            # Control flow depends on a register value: uncacheable.
            self.dead = True
            return
        if name in self.pristine:
            self.cond_masks[name] = self.cond_masks.get(name, 0) | mask
            return
        masks = self.cond_masks
        for src in dep:
            masks[src] = masks.get(src, 0) | FULL_MASK

    def note_field_absent(self, name: str) -> None:
        if self.dead:
            return
        name = _canon(name)
        if name.startswith("hdr."):
            self.absent.add(name)
        else:
            self.dead = True  # metadata is never absent on the slot path

    def dep_of(self, name: str):
        return self.deps.get(_canon(name))

    def set_dep(self, name: str, dep) -> None:
        name = _canon(name)
        self.pristine.discard(name)
        if name.startswith("hdr."):
            self.written.add(name)
        self.deps[name] = dep

    def combine(self, *deps):
        union: frozenset | None = None
        for dep in deps:
            if dep is None:
                continue
            if dep is STATEFUL:
                return STATEFUL
            union = dep if union is None else union | dep
        return union

    # -- op / counter recording -------------------------------------------
    def note_op(self, op, stage) -> None:
        cur = self._cur
        (cur.egress_ops if self._egress else cur.ingress_ops).append((op, stage))

    def note_lookup(self, table, entry) -> None:
        cur = self._cur
        (cur.egress_lookups if self._egress else cur.ingress_lookups).append(
            (table, entry)
        )


def _emc_key(packet: Packet):
    # Two flat tuples per header (names, values) instead of one 2-tuple
    # per field: same discriminating power — a key collision would need
    # identical header names, field names in order, and values — at a
    # fraction of the allocations on the per-packet hot path.
    return (
        packet.ingress_port,
        packet.queue_depth,
        packet.size,
        packet.ts,
        tuple(
            (header, tuple(fields), tuple(fields.values()))
            for header, fields in packet.headers.items()
        ),
    )


def _build_template(trace: FlowTrace, result) -> _Template:
    t = _Template()
    t.verdict = result.verdict
    t.egress_port = result.egress_port
    t.recirculations = result.recirculations
    t.egress_ports = result.egress_ports
    t.bridge = dict(result.bridge)
    t.tm_attr = _TM_ATTR[result.verdict.value]
    t.passes = len(trace.passes)
    writes = []
    headers = result.packet.headers
    for name in trace.written:
        _, header, fname = name.split(".", 2)
        fields = headers.get(header)
        if fields is not None and fname in fields:
            writes.append((header, fname, fields[fname]))
    t.header_writes = tuple(writes)
    table_counts: dict[int, list] = {}
    entry_counts: dict[int, list] = {}
    for rec in trace.passes:
        for lookups in (rec.ingress_lookups, rec.egress_lookups):
            for table, entry in lookups:
                row = table_counts.get(id(table))
                if row is None:
                    row = table_counts[id(table)] = [table, 0, 0]
                row[1] += 1
                if entry is not None:
                    row[2] += 1
                    erow = entry_counts.get(id(entry))
                    if erow is None:
                        erow = entry_counts[id(entry)] = [entry, 0]
                    erow[1] += 1
    t.table_counts = tuple(
        (table, n, h) for table, n, h in table_counts.values()
    )
    t.entry_counts = tuple((entry, n) for entry, n in entry_counts.values())
    return t


class FlowCache:
    """The two-tier cache fronting one :class:`Switch`."""

    def __init__(self, emc_capacity: int = 8192, megaflow_capacity: int = 4096):
        self.enabled = True
        self.emc_capacity = emc_capacity
        self.megaflow_capacity = megaflow_capacity
        #: bumped by every southbound mutation; entries are stamped at
        #: install and lazily dropped when their stamp is stale
        self.generation = 0
        self.emc: dict = {}
        #: mask signature -> {masked key -> _MegaflowEntry}
        self.subtables: dict = {}
        self._megaflow_count = 0
        self.emc_hits = 0
        self.megaflow_hits = 0
        self.misses = 0
        self.uncacheable = 0
        self.invalidations = 0
        #: batch-mode counter coalescing (see begin_batch): template ->
        #: deferred hit count, applied to table/entry counters at batch end
        self._batching = False
        self._pending_templates: dict = {}

    # -- control-plane side ----------------------------------------------
    def invalidate(self) -> None:
        """Southbound mutation: everything recorded so far is stale."""
        self.generation += 1

    # -- batch counter coalescing -----------------------------------------
    def begin_batch(self) -> None:
        """Defer template-hit table/entry counter bumps until end_batch.

        Inside :meth:`Switch.process_batch` no caller can observe the
        counters mid-batch (the simulator is single-threaded), so the
        per-hit loop over every consulted table collapses into one
        aggregated application per batch.  Totals are bit-identical.
        """
        self._batching = True

    def end_batch(self) -> None:
        self._batching = False
        pending = self._pending_templates
        if pending:
            for t, n in pending.values():
                for table, lookups, hits in t.table_counts:
                    table.lookups += lookups * n
                    table.hits += hits * n
                for entry, hits in t.entry_counts:
                    entry.hits += hits * n
            pending.clear()

    def flush(self) -> None:
        self.emc.clear()
        self.subtables.clear()
        self._megaflow_count = 0

    def stats(self) -> dict:
        return {
            "enabled": self.enabled,
            "emc_hits": self.emc_hits,
            "megaflow_hits": self.megaflow_hits,
            "misses": self.misses,
            "uncacheable": self.uncacheable,
            "invalidations": self.invalidations,
            "occupancy": {
                "emc": len(self.emc),
                "megaflow": self._megaflow_count,
                "subtables": len(self.subtables),
            },
            "generation": self.generation,
        }

    # -- data-plane side --------------------------------------------------
    def process(self, switch, packet: Packet):
        generation = self.generation
        key = _emc_key(packet)
        hit = self.emc.get(key)
        if hit is not None:
            if hit.generation == generation:
                self.emc_hits += 1
                if hit.template is not None:
                    return self._replay_template(switch, packet, hit.template)
                return self._replay(switch, packet, hit.trace)
            del self.emc[key]
            self.invalidations += 1
        entry = self._megaflow_lookup(packet, generation)
        if entry is not None:
            if entry.trace is None:
                # Negative entry: the flow's control flow is register-value
                # steered, which the *trace* cache cannot key — but the
                # codegen tier re-evaluates branch conditions per packet,
                # so it serves these flows soundly (and much faster).
                self.uncacheable += 1
                return switch._process_miss(packet)
            self.megaflow_hits += 1
            result = self._replay(switch, packet, entry.trace)
            self._install_emc(key, entry.trace, result, generation)
            return result
        return self._record(switch, packet, key)

    # -- recording --------------------------------------------------------
    def _record(self, switch, packet: Packet, key):
        global _RECORDER
        self.misses += 1
        rec = Recorder(packet)
        _RECORDER = rec
        try:
            result = switch._process_packet(packet, None, rec)
        finally:
            _RECORDER = None
        generation = self.generation
        if rec.dead:
            if rec.cond_masks or rec.presence or rec.absent:
                self._install_megaflow(rec, None, generation)
            return result
        trace = FlowTrace(tuple(rec.passes), rec.stateful, frozenset(rec.written))
        self._install_megaflow(rec, trace, generation)
        self._install_emc(key, trace, result, generation)
        return result

    def _install_megaflow(self, rec: Recorder, trace, generation) -> None:
        pres_sig = tuple(sorted(rec.presence))
        absent_sig = tuple(sorted(rec.absent))
        mask_sig = tuple(sorted(rec.cond_masks.items()))
        sig = (pres_sig, absent_sig, mask_sig)
        key = (
            tuple(rec.presence[h] for h in pres_sig),
            tuple(rec.input_values[f] & m for f, m in mask_sig),
        )
        table = self.subtables.get(sig)
        if table is None:
            table = self.subtables[sig] = {}
        if key not in table:
            if self._megaflow_count >= self.megaflow_capacity:
                self._evict_megaflow()
            self._megaflow_count += 1
        table[key] = _MegaflowEntry(trace, generation)

    def _evict_megaflow(self) -> None:
        for table in self.subtables.values():
            if table:
                table.pop(next(iter(table)))
                self._megaflow_count -= 1
                return

    def _install_emc(self, key, trace: FlowTrace, result, generation) -> None:
        emc = self.emc
        if key not in emc and len(emc) >= self.emc_capacity:
            emc.pop(next(iter(emc)))
        template = None
        if not trace.stateful and result is not None:
            template = _build_template(trace, result)
        emc[key] = _EmcEntry(trace, template, generation)

    # -- matching ---------------------------------------------------------
    def _megaflow_lookup(self, packet: Packet, generation):
        headers = packet.headers
        for sig, table in self.subtables.items():
            if not table:
                continue
            pres_sig, absent_sig, mask_sig = sig
            if any(_read_input(packet, n) is not None for n in absent_sig):
                continue
            key = self._masked_key(headers, packet, pres_sig, mask_sig)
            if key is None:
                continue
            entry = table.get(key)
            if entry is None:
                continue
            if entry.generation != generation:
                del table[key]
                self._megaflow_count -= 1
                self.invalidations += 1
                continue
            return entry
        return None

    @staticmethod
    def _masked_key(headers, packet, pres_sig, mask_sig):
        values = []
        for name, mask in mask_sig:
            value = _read_input(packet, name)
            if value is None:
                return None
            values.append(value & mask)
        return (
            tuple(header in headers for header in pres_sig),
            tuple(values),
        )

    # -- replay -----------------------------------------------------------
    def _replay(self, switch, packet: Packet, trace: FlowTrace):
        """Re-run the recorded op sequence — pure header rewrites from the
        compiled closures, stateful steps live against the register
        arrays — mirroring the uncached loop structure exactly."""
        switch.packets_in += 1
        tm = switch.tm
        current = packet
        carried = None
        recirculations = 0
        for rec in trace.passes:
            switch.pipeline_passes += 1
            phv = switch._acquire_phv(current)
            for header in rec.headers:
                phv.load_header(header)
            phv.set("ud.parse_bitmap", rec.bitmap)
            if carried is not None:
                for name, value in carried.items():
                    phv.set(name, value)
            bridge_pairs = switch._bridge_slot_pairs(phv.cl)
            for op, stage in rec.ingress_ops:
                op(phv, stage)
            for table, entry in rec.ingress_lookups:
                table.lookups += 1
                if entry is not None:
                    table.hits += 1
                    entry.hits += 1
            will_recirculate = bool(phv.get("ud.recirc_flag"))
            if not will_recirculate:
                verdict, port = tm.decide(phv)
                if verdict is Verdict.DROP:
                    slots = phv.slots
                    bridge = {name: slots[slot] for name, slot in bridge_pairs}
                    bridge["meta.egress_port"] = slots[phv.cl.slot_egress]
                    out = phv.deparse()
                    switch._release_phv(phv)
                    return SwitchResult(
                        verdict, None, out, recirculations, (), bridge
                    )
            for op, stage in rec.egress_ops:
                op(phv, stage)
            for table, entry in rec.egress_lookups:
                table.lookups += 1
                if entry is not None:
                    table.hits += 1
                    entry.hits += 1
            if will_recirculate:
                recirculations += 1
                slots = phv.slots
                carried = {name: slots[slot] for name, slot in bridge_pairs}
                carried["ud.recirc_count"] = recirculations
                carried["meta.egress_port"] = phv.get("meta.egress_port")
                current = phv.deparse()
                switch._release_phv(phv)
                current.ingress_port = RECIRC_PORT
                continue
            ports: tuple = ()
            if verdict is Verdict.MULTICAST:
                ports = tm.multicast_groups[phv.get("ud.mcast_grp")]
            slots = phv.slots
            bridge = {name: slots[slot] for name, slot in bridge_pairs}
            bridge["meta.egress_port"] = slots[phv.cl.slot_egress]
            out = phv.deparse()
            switch._release_phv(phv)
            return SwitchResult(verdict, port, out, recirculations, ports, bridge)
        raise AssertionError("recorded trace ended without a final pass")

    def _replay_template(self, switch, packet: Packet, t: _Template):
        switch.packets_in += 1
        switch.pipeline_passes += t.passes
        for header, fname, value in t.header_writes:
            packet.headers[header][fname] = value
        tm = switch.tm
        setattr(tm, t.tm_attr, getattr(tm, t.tm_attr) + 1)
        if self._batching:
            pending = self._pending_templates
            acc = pending.get(id(t))
            if acc is None:
                pending[id(t)] = [t, 1]
            else:
                acc[1] += 1
        else:
            for table, lookups, hits in t.table_counts:
                table.lookups += lookups
                table.hits += hits
            for entry, hits in t.entry_counts:
                entry.hits += hits
        return SwitchResult(
            t.verdict,
            t.egress_port,
            packet,
            t.recirculations,
            t.egress_ports,
            dict(t.bridge),
        )


# Bottom import, mirroring pipeline.py's bottom `from . import flowcache`:
# by the time either module's bottom runs, the other's names exist, and
# the replay hot paths get plain module globals instead of per-call
# imports.
from .pipeline import RECIRC_PORT, SwitchResult, Verdict  # noqa: E402
