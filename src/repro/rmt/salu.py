"""Stateful ALUs and per-stage register arrays.

Each RMT stage owns SRAM register arrays accessed through stateful ALUs
(SALUs).  A SALU executes a single read-modify-write on one bucket per
packet; it can additionally perform a conditional comparison before the
write (the capability the paper borrows from FlyMon to multiplex two memory
operations behind one SALU flag, §4.1.2).

The seven P4runpro memory operations of Table 3 are provided as SALU
microprograms: MEMADD, MEMSUB, MEMAND, MEMOR, MEMREAD, MEMWRITE, MEMMAX.
All arithmetic wraps at the register width, matching hardware overflow
behaviour (which the pseudo-primitives SUB/SUBI exploit, Appendix A.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

#: A SALU microprogram: (old bucket value, operand) -> (new bucket value,
#: value returned to the PHV).
SaluProgram = Callable[[int, int], tuple[int, int]]


class MemoryOutOfRangeError(IndexError):
    """Raised on access past the end of a register array."""


def _wrap(width: int) -> int:
    return (1 << width) - 1


def make_salu_programs(width: int = 32) -> dict[str, SaluProgram]:
    """The Table-3 memory operations as SALU microprograms."""
    mask = _wrap(width)
    return {
        # mid[mar] += sar; sar = mid[mar]
        "MEMADD": lambda old, sar: (((old + sar) & mask),) * 2,
        # mid[mar] -= sar; sar = mid[mar]
        "MEMSUB": lambda old, sar: (((old - sar) & mask),) * 2,
        # mid[mar] &= sar; sar = mid[mar]
        "MEMAND": lambda old, sar: ((old & sar),) * 2,
        # sar = mid[mar] (old value!); mid[mar] |= sar
        "MEMOR": lambda old, sar: ((old | sar) & mask, old),
        # sar = mid[mar]
        "MEMREAD": lambda old, sar: (old, old),
        # mid[mar] = sar
        "MEMWRITE": lambda old, sar: (sar & mask, sar & mask),
        # mid[mar] = sar if sar > mid[mar]
        "MEMMAX": lambda old, sar: (max(old, sar & mask), max(old, sar & mask)),
    }


MEMORY_OPS: frozenset[str] = frozenset(make_salu_programs().keys())

#: Memory ops whose SALU output lands in the PHV (``ud.sar``) — everything
#: but the blind store.  The flow cache's recording pass uses this to
#: taint ``ud.sar`` as STATEFUL after such an op: the trace stays
#: replayable (the op closure re-executes against the live array on every
#: hit), but any *control-flow* consult of the tainted register — a BRANCH
#: entry matching ``ud.sar`` — makes the trace uncacheable, since replay
#: could not re-derive which entries would match.
PHV_OUTPUT_OPS: frozenset[str] = frozenset(MEMORY_OPS - {"MEMWRITE"})

#: Shard-merge semantics of each SALU microprogram, for the flow-sharded
#: engine (:mod:`repro.engine`).  A kind names the commutative monoid the
#: op's bucket updates form, so N shard replicas that each started from a
#: common base value can be folded back into one merged value:
#:
#: * ``"sum"``  — MEMADD/MEMSUB: bucket deltas are additive (mod 2^width);
#: * ``"or"``   — MEMOR: bucket updates only set bits;
#: * ``"and"``  — MEMAND: bucket updates only clear bits;
#: * ``"max"``  — MEMMAX: bucket updates are monotone maxima;
#: * ``"read"`` — MEMREAD: never mutates the bucket, so replicas stay
#:   identical as long as all *control-plane* writes fan out;
#: * ``None``   — MEMWRITE: a blind last-writer-wins store.  Write order
#:   across shards is undefined, so no merge can reproduce the
#:   single-process state; programs using it must be pinned to one shard.
#:
#: A kind is necessary but not sufficient for data-parallel execution: the
#: op's PHV output (``sar``) must also be *unobserved* downstream, because
#: a shard replica's bucket holds only that shard's partial aggregate (see
#: :mod:`repro.compiler.register_semantics` for the liveness check).
MERGE_SEMANTICS: dict[str, str | None] = {
    "MEMADD": "sum",
    "MEMSUB": "sum",
    "MEMAND": "and",
    "MEMOR": "or",
    "MEMMAX": "max",
    "MEMREAD": "read",
    "MEMWRITE": None,
}


def merge_buckets(
    kind: str, base: int, shard_values: list[int], width: int = 32
) -> int:
    """Fold one bucket's shard-replica values into the merged value.

    ``base`` is the common value all replicas started from (the
    coordinator's copy as of the last rebase); ``shard_values`` are the
    replicas' current values.  For ``"sum"`` each replica's delta from the
    base is accumulated; the monotone kinds fold directly.
    """
    mask = _wrap(width)
    if kind == "sum":
        merged = base
        for value in shard_values:
            merged = (merged + value - base) & mask
        return merged
    if kind == "max":
        return max(base, *shard_values) if shard_values else base
    if kind == "or":
        merged = base
        for value in shard_values:
            merged |= value
        return merged & mask
    if kind == "and":
        merged = base
        for value in shard_values:
            merged &= value
        return merged
    if kind == "read":
        return base
    raise ValueError(f"unknown merge kind {kind!r}")


@dataclass
class RegisterArray:
    """A stage-local SRAM register array behind one SALU."""

    name: str
    size: int
    width: int = 32

    def __post_init__(self) -> None:
        self._data = [0] * self.size
        self._programs = make_salu_programs(self.width)
        self.accesses = 0

    def execute(self, op: str, addr: int, operand: int) -> int:
        """Run a SALU microprogram on bucket ``addr``; returns the PHV value."""
        if not 0 <= addr < self.size:
            raise MemoryOutOfRangeError(f"{self.name}[{addr}] out of range (size {self.size})")
        program = self._programs.get(op)
        if program is None:
            raise ValueError(f"unknown SALU op {op!r}")
        self.accesses += 1
        new_value, output = program(self._data[addr], operand & _wrap(self.width))
        self._data[addr] = new_value
        return output

    # -- control plane access (raw APIs) ----------------------------------
    def read(self, addr: int) -> int:
        if not 0 <= addr < self.size:
            raise MemoryOutOfRangeError(f"{self.name}[{addr}] out of range (size {self.size})")
        return self._data[addr]

    def write(self, addr: int, value: int) -> None:
        if not 0 <= addr < self.size:
            raise MemoryOutOfRangeError(f"{self.name}[{addr}] out of range (size {self.size})")
        self._data[addr] = value & _wrap(self.width)

    def reset_range(self, start: int, length: int) -> None:
        """Zero ``length`` buckets starting at ``start`` (memory reclaim)."""
        if start < 0 or start + length > self.size:
            raise MemoryOutOfRangeError(
                f"{self.name}[{start}:{start + length}] out of range (size {self.size})"
            )
        for addr in range(start, start + length):
            self._data[addr] = 0

    def snapshot(self, start: int = 0, length: int | None = None) -> list[int]:
        if length is None:
            length = self.size - start
        return list(self._data[start : start + length])
