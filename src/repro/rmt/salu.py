"""Stateful ALUs and per-stage register arrays.

Each RMT stage owns SRAM register arrays accessed through stateful ALUs
(SALUs).  A SALU executes a single read-modify-write on one bucket per
packet; it can additionally perform a conditional comparison before the
write (the capability the paper borrows from FlyMon to multiplex two memory
operations behind one SALU flag, §4.1.2).

The seven P4runpro memory operations of Table 3 are provided as SALU
microprograms: MEMADD, MEMSUB, MEMAND, MEMOR, MEMREAD, MEMWRITE, MEMMAX.
All arithmetic wraps at the register width, matching hardware overflow
behaviour (which the pseudo-primitives SUB/SUBI exploit, Appendix A.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

#: A SALU microprogram: (old bucket value, operand) -> (new bucket value,
#: value returned to the PHV).
SaluProgram = Callable[[int, int], tuple[int, int]]


class MemoryOutOfRangeError(IndexError):
    """Raised on access past the end of a register array."""


def _wrap(width: int) -> int:
    return (1 << width) - 1


def make_salu_programs(width: int = 32) -> dict[str, SaluProgram]:
    """The Table-3 memory operations as SALU microprograms."""
    mask = _wrap(width)
    return {
        # mid[mar] += sar; sar = mid[mar]
        "MEMADD": lambda old, sar: (((old + sar) & mask),) * 2,
        # mid[mar] -= sar; sar = mid[mar]
        "MEMSUB": lambda old, sar: (((old - sar) & mask),) * 2,
        # mid[mar] &= sar; sar = mid[mar]
        "MEMAND": lambda old, sar: ((old & sar),) * 2,
        # sar = mid[mar] (old value!); mid[mar] |= sar
        "MEMOR": lambda old, sar: ((old | sar) & mask, old),
        # sar = mid[mar]
        "MEMREAD": lambda old, sar: (old, old),
        # mid[mar] = sar
        "MEMWRITE": lambda old, sar: (sar & mask, sar & mask),
        # mid[mar] = sar if sar > mid[mar]
        "MEMMAX": lambda old, sar: (max(old, sar & mask), max(old, sar & mask)),
    }


MEMORY_OPS: frozenset[str] = frozenset(make_salu_programs().keys())


@dataclass
class RegisterArray:
    """A stage-local SRAM register array behind one SALU."""

    name: str
    size: int
    width: int = 32

    def __post_init__(self) -> None:
        self._data = [0] * self.size
        self._programs = make_salu_programs(self.width)
        self.accesses = 0

    def execute(self, op: str, addr: int, operand: int) -> int:
        """Run a SALU microprogram on bucket ``addr``; returns the PHV value."""
        if not 0 <= addr < self.size:
            raise MemoryOutOfRangeError(f"{self.name}[{addr}] out of range (size {self.size})")
        program = self._programs.get(op)
        if program is None:
            raise ValueError(f"unknown SALU op {op!r}")
        self.accesses += 1
        new_value, output = program(self._data[addr], operand & _wrap(self.width))
        self._data[addr] = new_value
        return output

    # -- control plane access (raw APIs) ----------------------------------
    def read(self, addr: int) -> int:
        if not 0 <= addr < self.size:
            raise MemoryOutOfRangeError(f"{self.name}[{addr}] out of range (size {self.size})")
        return self._data[addr]

    def write(self, addr: int, value: int) -> None:
        if not 0 <= addr < self.size:
            raise MemoryOutOfRangeError(f"{self.name}[{addr}] out of range (size {self.size})")
        self._data[addr] = value & _wrap(self.width)

    def reset_range(self, start: int, length: int) -> None:
        """Zero ``length`` buckets starting at ``start`` (memory reclaim)."""
        if start < 0 or start + length > self.size:
            raise MemoryOutOfRangeError(
                f"{self.name}[{start}:{start + length}] out of range (size {self.size})"
            )
        for addr in range(start, start + length):
            self._data[addr] = 0

    def snapshot(self, start: int = 0, length: int | None = None) -> list[int]:
        if length is None:
            length = self.size - start
        return list(self._data[start : start + length])
