"""Egress queueing: a fluid model of a bottleneck port's queue.

The ECN program (Table 1) marks packets when ``meta.queue_depth`` exceeds
a threshold.  On hardware that intrinsic metadata comes from the traffic
manager's queue; the simulator models one bottleneck egress queue with
classic fluid dynamics — depth grows by (arrivals − drain) per interval,
clamped to [0, capacity], with tail drops past capacity — and exposes the
depth in scheduler cells, the unit Tofino reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Tofino-like scheduler cell size in bytes.
CELL_BYTES = 80


@dataclass
class PortQueue:
    """One egress port's queue under a fluid arrival/drain model."""

    drain_mbps: float = 100.0
    capacity_cells: int = 20000

    depth_bytes: float = 0.0
    tail_dropped_bytes: float = field(default=0.0)

    @property
    def depth_cells(self) -> int:
        return int(self.depth_bytes // CELL_BYTES)

    @property
    def capacity_bytes(self) -> float:
        return self.capacity_cells * CELL_BYTES

    def advance(self, arrived_bytes: float, dt_s: float) -> int:
        """Apply one interval of arrivals and draining; returns the depth
        in cells at the end of the interval."""
        if dt_s < 0 or arrived_bytes < 0:
            raise ValueError("arrivals and time must be non-negative")
        drained = self.drain_mbps * 1e6 / 8 * dt_s
        self.depth_bytes += arrived_bytes - drained
        if self.depth_bytes < 0:
            self.depth_bytes = 0.0
        elif self.depth_bytes > self.capacity_bytes:
            self.tail_dropped_bytes += self.depth_bytes - self.capacity_bytes
            self.depth_bytes = self.capacity_bytes
        return self.depth_cells

    def utilization(self) -> float:
        return self.depth_bytes / self.capacity_bytes


class QueueModel:
    """Per-port queues fed by a replay engine's window statistics.

    Packets in window ``k`` observe the depth left by window ``k-1`` —
    the one-interval feedback delay real queue telemetry has.
    """

    def __init__(self, drain_mbps: float = 100.0, capacity_cells: int = 20000):
        self.drain_mbps = drain_mbps
        self.capacity_cells = capacity_cells
        self.queues: dict[int, PortQueue] = {}
        self.depth_history: list[dict[int, int]] = []

    def queue(self, port: int) -> PortQueue:
        if port not in self.queues:
            self.queues[port] = PortQueue(self.drain_mbps, self.capacity_cells)
        return self.queues[port]

    def observe_depth(self, port: int) -> int:
        """Depth (cells) a packet headed to ``port`` sees right now."""
        if port not in self.queues:
            return 0
        return self.queues[port].depth_cells

    def end_window(self, per_port_bytes: dict[int, float], dt_s: float) -> None:
        """Advance every queue by one window of arrivals."""
        for port in set(self.queues) | set(per_port_bytes):
            self.queue(port).advance(per_port_bytes.get(port, 0.0), dt_s)
        self.depth_history.append(
            {port: q.depth_cells for port, q in self.queues.items()}
        )
