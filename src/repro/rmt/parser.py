"""Programmable parser: a parse-state machine producing a parsing bitmap.

The paper (§4.1.1) keeps a *parsing state bitmap* in the PHV: one bit per
header the parser extracted, set as the state machine visits each state.
The initialization block later selects a per-parsing-path filter table from
this bitmap.

The state machine here is data-driven: states declare which header they
extract and how to pick the next state from a field of that header, exactly
like a P4 parser.  The default machine covers the L2→IPv4→{TCP,UDP}→{nc,
calc} paths the evaluation uses; operators can build custom machines.

RMT parsers are *not* runtime-reconfigurable (paper §7), so the machine is
fixed once the switch is provisioned — the simulator enforces this with
``freeze()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .packet import ETYPE_IPV4, PROTO_TCP, PROTO_UDP, Packet
from .phv import PHV

#: Canonical bit positions in the parsing bitmap for the default machine.
DEFAULT_BITMAP_BITS: dict[str, int] = {
    "eth": 0,
    "ipv4": 1,
    "tcp": 2,
    "udp": 3,
    "nc": 4,
    "calc": 5,
    "tun": 6,
}


class ParserFrozenError(RuntimeError):
    """Raised on attempts to modify a frozen (provisioned) parser."""


@dataclass
class ParseState:
    """One state of the parse machine.

    Attributes:
        header: header extracted on entering this state (``None`` for pure
            branch states).
        select: field used to choose the next state, or ``None`` to accept.
        transitions: field value -> next state name.  A ``None`` key is the
            default transition.
    """

    name: str
    header: str | None = None
    select: str | None = None
    transitions: dict[int | None, str] = field(default_factory=dict)


class ParseMachine:
    """The full parser: states, start state, and bitmap assignment."""

    ACCEPT = "accept"

    def __init__(self, bitmap_bits: dict[str, int] | None = None):
        self.states: dict[str, ParseState] = {}
        self.start: str | None = None
        self.bitmap_bits = dict(bitmap_bits or DEFAULT_BITMAP_BITS)
        self._frozen = False

    # -- construction -----------------------------------------------------
    def add_state(self, state: ParseState, *, start: bool = False) -> None:
        if self._frozen:
            raise ParserFrozenError("parser is frozen after provisioning")
        self.states[state.name] = state
        if start:
            self.start = state.name

    def freeze(self) -> None:
        self._frozen = True

    @property
    def frozen(self) -> bool:
        return self._frozen

    # -- runtime ----------------------------------------------------------
    def parse(self, packet: Packet, phv: PHV, recorder=None) -> int:
        """Run the machine over a packet, loading headers into the PHV.

        Returns the parsing bitmap, which is also stored in the PHV as
        ``ud.parse_bitmap``.

        ``recorder`` is a flow-cache :class:`~repro.rmt.flowcache.Recorder`
        during a recording miss pass: every header presence check and
        select-field read is reported so the megaflow key covers exactly
        the bits this traversal consulted.
        """
        if self.start is None:
            raise RuntimeError("parse machine has no start state")
        bitmap = 0
        state_name = self.start
        visited = 0
        while state_name != self.ACCEPT:
            visited += 1
            if visited > len(self.states) + 1:
                raise RuntimeError("parse machine loop detected")
            state = self.states[state_name]
            if state.header is not None:
                if not packet.has(state.header):
                    # The wire didn't carry the header this state expects;
                    # stop parsing, as a hardware parser would on short pkts.
                    if recorder is not None:
                        recorder.note_header_missing(state.header)
                    break
                phv.load_header(state.header)
                if recorder is not None:
                    recorder.note_header_loaded(state.header, packet)
                bit = self.bitmap_bits.get(state.header)
                if bit is not None:
                    bitmap |= 1 << bit
            if state.select is None:
                break
            key = phv.get(state.select)
            if recorder is not None:
                recorder.note_field_consult(state.select, -1)
            state_name = state.transitions.get(key, state.transitions.get(None, self.ACCEPT))
        phv.set("ud.parse_bitmap", bitmap)
        if recorder is not None:
            recorder.note_bitmap(bitmap)
        return bitmap

    def parsing_paths(self) -> list[int]:
        """Enumerate the bitmaps of all root-to-accept paths.

        Used by the initialization block to instantiate one filter table per
        parsing path (paper §4.1.1 and §5: "K tables, where K is the number
        of possible parsing paths").
        """
        paths: set[int] = set()

        def walk(state_name: str, bitmap: int, seen: frozenset[str]) -> None:
            if state_name == self.ACCEPT or state_name in seen:
                paths.add(bitmap)
                return
            state = self.states[state_name]
            if state.header is not None:
                bit = self.bitmap_bits.get(state.header)
                if bit is not None:
                    bitmap |= 1 << bit
            # A header may legitimately be absent (short packet): the path
            # ending here is also reachable.
            paths.add(bitmap)
            if state.select is None:
                return
            for nxt in set(state.transitions.values()):
                walk(nxt, bitmap, seen | {state_name})

        if self.start is not None:
            walk(self.start, 0, frozenset())
        paths.discard(0)
        return sorted(paths)


def default_parse_machine(
    *,
    nc_port: int = 7777,
    calc_port: int = 8888,
    tunnel_etype: int = 0x88F7,
) -> ParseMachine:
    """The evaluation parser: eth -> ipv4 -> {tcp, udp} -> {nc, calc}."""
    machine = ParseMachine()
    machine.add_state(
        ParseState(
            "parse_eth",
            header="eth",
            select="hdr.eth.etype",
            transitions={ETYPE_IPV4: "parse_ipv4", tunnel_etype: "parse_tun"},
        ),
        start=True,
    )
    machine.add_state(
        ParseState(
            "parse_tun",
            header="tun",
            select=None,
        )
    )
    machine.add_state(
        ParseState(
            "parse_ipv4",
            header="ipv4",
            select="hdr.ipv4.proto",
            transitions={PROTO_TCP: "parse_tcp", PROTO_UDP: "parse_udp"},
        )
    )
    machine.add_state(ParseState("parse_tcp", header="tcp"))
    machine.add_state(
        ParseState(
            "parse_udp",
            header="udp",
            select="hdr.udp.dst_port",
            transitions={nc_port: "parse_nc", calc_port: "parse_calc"},
        )
    )
    machine.add_state(ParseState("parse_nc", header="nc"))
    machine.add_state(ParseState("parse_calc", header="calc"))
    return machine
