"""Pipelines, traffic manager, and the whole-switch processing loop.

Architecture (paper §3.1): an ingress pipeline and an egress pipeline with a
traffic manager (TM) in between.  Forwarding decisions — forward, drop,
reflect, report-to-CPU — are taken in the ingress pipeline via intrinsic
metadata and *executed* by the TM, which is why egress stages cannot host
forwarding operations (the allocator constraint (4) of §4.3).

Recirculation: if a packet leaves egress flagged for recirculation it
re-enters the ingress pipeline through a dedicated recirculation port,
consuming pipeline bandwidth — the source of the throughput loss measured
in Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .packet import Packet
from .parser import ParseMachine
from .phv import PHV, PHVLayout
from .stage import Stage

#: Forwarding-decision metadata fields (intrinsic to the simulated chip).
FWD_FIELDS: dict[str, int] = {
    "ud.drop_ctl": 1,
    "ud.reflect": 1,
    "ud.to_cpu": 1,
    "ud.mcast_grp": 16,
    "ud.recirc_flag": 1,
    "ud.recirc_count": 4,
    "ud.parse_bitmap": 8,
}

CPU_PORT = 192
RECIRC_PORT = 68


class Verdict(Enum):
    FORWARD = "forward"
    DROP = "drop"
    REFLECT = "reflect"
    TO_CPU = "to_cpu"
    MULTICAST = "multicast"


@dataclass
class SwitchResult:
    """Outcome of processing one packet through the switch."""

    verdict: Verdict
    egress_port: int | None
    packet: Packet
    recirculations: int = 0
    #: replication targets for a MULTICAST verdict
    egress_ports: tuple[int, ...] = ()
    #: final bridge-header state (user metadata + forwarding intent) so a
    #: downstream device — the next switch of a chain — can continue the
    #: program where this one stopped
    bridge: dict[str, int] = field(default_factory=dict)


class UnknownMulticastGroupError(KeyError):
    """A MULTICAST verdict referenced an unconfigured group."""


class TrafficManager:
    """Executes the forwarding decision between ingress and egress.

    Multicast groups (group id -> replication port list) are configured by
    the control plane, like Tofino's PRE programming.
    """

    def __init__(self) -> None:
        self.forwarded = 0
        self.dropped = 0
        self.reflected = 0
        self.to_cpu = 0
        self.multicast = 0
        self.multicast_groups: dict[int, tuple[int, ...]] = {}

    def configure_multicast_group(self, group: int, ports: list[int]) -> None:
        if group <= 0:
            raise ValueError("multicast group ids start at 1")
        self.multicast_groups[group] = tuple(ports)

    def decide(self, phv: PHV) -> tuple[Verdict, int | None]:
        if phv.get("ud.drop_ctl"):
            self.dropped += 1
            return Verdict.DROP, None
        if phv.get("ud.to_cpu"):
            self.to_cpu += 1
            return Verdict.TO_CPU, CPU_PORT
        if phv.get("ud.reflect"):
            self.reflected += 1
            return Verdict.REFLECT, phv.get("meta.ingress_port")
        if phv.get("ud.mcast_grp"):
            group = phv.get("ud.mcast_grp")
            if group not in self.multicast_groups:
                raise UnknownMulticastGroupError(group)
            self.multicast += 1
            return Verdict.MULTICAST, None
        self.forwarded += 1
        return Verdict.FORWARD, phv.get("meta.egress_port")


class Pipeline:
    """An ordered list of stages in one gress.

    Packet processing runs over a *compiled unit program*: the attached
    :class:`~repro.rmt.stage.LogicalUnit` list of every stage is flattened
    into one list of ``(apply, stage)`` bound-method pairs, resolved once
    per deploy (attaching a unit invalidates it) rather than per packet.
    """

    def __init__(self, gress: str, stages: list[Stage]):
        self.gress = gress
        self.stages = stages
        self._compiled: list[tuple] | None = None
        for stage in stages:
            stage.pipeline = self

    def invalidate_compiled(self) -> None:
        self._compiled = None

    def compiled_units(self) -> list[tuple]:
        compiled = self._compiled
        if compiled is None:
            compiled = [
                (unit.apply, stage) for stage in self.stages for unit in stage.units
            ]
            self._compiled = compiled
        return compiled

    def process(self, phv: PHV) -> None:
        for apply, stage in self.compiled_units():
            apply(phv, stage)

    def __len__(self) -> int:
        return len(self.stages)


@dataclass
class SwitchConfig:
    """Static configuration of the simulated switch."""

    num_ingress_stages: int = 12
    num_egress_stages: int = 12
    num_ports: int = 64
    max_recirculations: int = 8  # hardware safety cap, not the compiler's R
    port_gbps: float = 100.0
    #: Aggregate pipeline packet rate (packets/s) at minimum packet size —
    #: used by the throughput model in Fig. 11.
    pipeline_pps: float = 1.4e9


class RecirculationLimitError(RuntimeError):
    """Packet exceeded the hardware recirculation safety cap."""


class Switch:
    """The whole simulated RMT switch (single pipeline pair)."""

    def __init__(
        self,
        parse_machine: ParseMachine,
        config: SwitchConfig | None = None,
        codegen: bool = True,
    ):
        self.config = config or SwitchConfig()
        self.parse_machine = parse_machine
        self.layout = PHVLayout()
        for name, width in FWD_FIELDS.items():
            self.layout.declare(name, width)
        self.ingress = Pipeline(
            "ingress", [Stage(i, "ingress") for i in range(self.config.num_ingress_stages)]
        )
        self.egress = Pipeline(
            "egress", [Stage(i, "egress") for i in range(self.config.num_egress_stages)]
        )
        self.tm = TrafficManager()
        #: total packets injected / recirculation passes, for load accounting
        self.packets_in = 0
        self.pipeline_passes = 0
        #: optional two-tier flow cache fronting :meth:`process_packet`
        #: (attached by the data-plane layer; ``None`` on a raw switch)
        self.flow_cache = None
        #: trace-to-source codegen tier serving the cache-miss path
        self.codegen = CodegenCache(enabled=codegen)
        #: PHV free list, active only inside :meth:`process_batch`
        self._phv_pool: list[PHV] = []
        self._pooling = False
        #: cached bridge-header field list (user fields minus the recirc
        #: flag), rebuilt when the layout grows
        self._bridge_fields: tuple[str, ...] = ()
        self._bridge_fields_count = -1
        #: bridge fields resolved to (name, slot) pairs for one compiled
        #: layout snapshot
        self._bridge_slots: tuple[tuple[str, int], ...] = ()
        self._bridge_slots_cl = None

    def provision_done(self) -> None:
        """Freeze compile-time structures (parser); enter runtime phase."""
        self.parse_machine.freeze()

    def _bridge_field_names(self) -> tuple[str, ...]:
        user_fields = self.layout.user_fields
        if len(user_fields) != self._bridge_fields_count:
            self._bridge_fields = tuple(
                name for name in user_fields if name != "ud.recirc_flag"
            )
            self._bridge_fields_count = len(user_fields)
        return self._bridge_fields

    def _bridge_slot_pairs(self, cl) -> tuple[tuple[str, int], ...]:
        if self._bridge_slots_cl is not cl:
            slot_of = cl.slot_of
            self._bridge_slots = tuple(
                (name, slot_of[name]) for name in self._bridge_field_names()
            )
            self._bridge_slots_cl = cl
        return self._bridge_slots

    # -- PHV pooling ---------------------------------------------------------
    def _acquire_phv(self, packet: Packet) -> PHV:
        if self._pooling:
            pool = self._phv_pool
            cl = self.layout.compiled()
            while pool:
                phv = pool.pop()
                if phv.cl is cl:
                    phv.reset(packet)
                    return phv
                # stale layout snapshot: drop it and keep looking
        return PHV(self.layout, packet)

    def _release_phv(self, phv: PHV) -> None:
        if self._pooling and phv._extra is None and len(self._phv_pool) < 64:
            self._phv_pool.append(phv)

    # -- packet processing --------------------------------------------------
    def process_packet(
        self, packet: Packet, carried: dict[str, int] | None = None
    ) -> SwitchResult:
        """Run one packet to completion, including recirculation passes.

        ``carried`` injects bridge-header state from an upstream device
        (the previous switch of a chain) before the first pass.

        When a flow cache is attached (and no upstream carry makes the
        input unkeyable), the cache front door takes over: hit -> trace
        replay, miss -> recorded traversal through
        :meth:`_process_packet`.
        """
        fc = self.flow_cache
        if (
            fc is not None
            and carried is None
            and fc.enabled
            and not flowcache._BYPASS
        ):
            return fc.process(self, packet)
        if carried is None:
            cg = self.codegen
            if cg.enabled:
                result = cg.run(self, packet)
                if result is not None:
                    return result
        return self._process_packet(packet, carried, None)

    def _process_miss(self, packet: Packet) -> SwitchResult:
        """Flow-cache miss path for inputs the cache refuses to key
        (negative megaflow entries): try the codegen tier, fall back to
        the interpreter."""
        cg = self.codegen
        if cg.enabled:
            result = cg.run(self, packet)
            if result is not None:
                return result
        return self._process_packet(packet, None, None)

    def _process_packet(
        self,
        packet: Packet,
        carried: dict[str, int] | None,
        rec,
    ) -> SwitchResult:
        """The uncached traversal; ``rec`` is a flow-cache recorder during
        a recording miss pass (``None`` otherwise)."""
        self.packets_in += 1
        recirculations = 0
        current = packet
        while True:
            self.pipeline_passes += 1
            phv = self._acquire_phv(current)
            if rec is not None:
                rec.begin_pass()
            self.parse_machine.parse(current, phv, rec)
            if carried is not None:
                # Restore the stateless carry (registers, flags, addresses)
                # that the recirculation block attached to the packet header
                # on the previous pass (paper §4.1.3).
                for name, value in carried.items():
                    phv.set(name, value)
            bridge_pairs = self._bridge_slot_pairs(phv.cl)

            def bridge_state() -> dict[str, int]:
                slots = phv.slots
                state = {name: slots[slot] for name, slot in bridge_pairs}
                state["meta.egress_port"] = slots[phv.cl.slot_egress]
                return state

            self.ingress.process(phv)
            # The recirculation block sits at the last ingress stage: when it
            # flags the packet, the TM's forwarding decision is deferred to
            # the final pass (drop/reflect intents stay latched in the PHV
            # and are carried across passes).
            will_recirculate = bool(phv.get("ud.recirc_flag"))
            if rec is not None:
                rec.note_field_consult("ud.recirc_flag", 1)
            if not will_recirculate:
                if rec is not None:
                    # DROP short-circuits egress, so the drop decision is
                    # part of the recorded op sequence.
                    rec.note_field_consult("ud.drop_ctl", 1)
                verdict, port = self.tm.decide(phv)
                if verdict is Verdict.DROP:
                    if rec is not None:
                        rec.finish_pass(phv, None)
                    result = SwitchResult(
                        verdict, None, phv.deparse(), recirculations, (), bridge_state()
                    )
                    self._release_phv(phv)
                    return result
            if rec is not None:
                rec.begin_egress()
            self.egress.process(phv)
            if will_recirculate:
                recirculations += 1
                if recirculations > self.config.max_recirculations:
                    raise RecirculationLimitError(
                        f"packet exceeded {self.config.max_recirculations} recirculations"
                    )
                slots = phv.slots
                carried = {name: slots[slot] for name, slot in bridge_pairs}
                carried["ud.recirc_count"] = recirculations
                # The forwarding intent latched so far (e.g. FORWARD's
                # egress port) is stateless per-packet data and rides the
                # bridge header like the registers and flags do.
                carried["meta.egress_port"] = phv.get("meta.egress_port")
                if rec is not None:
                    rec.finish_pass(phv, carried)
                current = phv.deparse()
                self._release_phv(phv)
                current.ingress_port = RECIRC_PORT
                continue
            ports: tuple[int, ...] = ()
            if verdict is Verdict.MULTICAST:
                ports = self.tm.multicast_groups[phv.get("ud.mcast_grp")]
            if rec is not None:
                rec.finish_pass(phv, None)
            result = SwitchResult(
                verdict, port, phv.deparse(), recirculations, ports, bridge_state()
            )
            self._release_phv(phv)
            return result

    def process_batch(
        self, packets, carried: dict[str, int] | None = None
    ) -> list[SwitchResult]:
        """Run a batch of packets to completion, amortizing per-packet setup.

        Semantically identical to calling :meth:`process_packet` on each
        packet in order (same verdicts, same counters, same register-array
        mutations); the batch form resolves the compiled pipeline programs,
        the PHV layout, and the bridge-field list once up front.
        """
        # Force one compilation of everything the per-packet loop consumes
        # so the whole batch runs on warmed caches.
        self.layout.compiled()
        self.ingress.compiled_units()
        self.egress.compiled_units()
        self._bridge_field_names()
        process = self.process_packet
        # PHV pooling is batch-scoped: callers of process_packet may hold
        # no reference past the return, so reuse is only safe while this
        # frame owns the loop.  Flow-cache counter coalescing is likewise
        # batch-scoped (nothing can observe counters mid-batch).
        fc = self.flow_cache
        self._pooling = True
        if fc is not None:
            fc.begin_batch()
        try:
            return [process(packet, carried) for packet in packets]
        finally:
            self._pooling = False
            if fc is not None:
                fc.end_batch()
            self.codegen.end_batch()

    # -- throughput model (Fig. 11) -----------------------------------------
    #: wire size of the bridge header the recirculation block attaches
    #: (registers + flags + addresses carried between passes, §4.1.3).
    BRIDGE_HEADER_BYTES = 16

    def max_lossless_throughput_gbps(
        self, packet_size: int, recirc_iterations: int, offered_gbps: float = 100.0
    ) -> float:
        """Maximum lossless throughput for a flow that recirculates.

        Every recirculation pass re-sends the packet — grown by the bridge
        header — through the fixed-bandwidth recirculation port, so the port
        must carry ``R * (size + bridge) / size`` of the original rate.
        Smaller packets pay proportionally more bridge overhead, which is
        why Fig. 11 shows ~10% loss at 128B but ~1% at 1500B for R=1.
        """
        if recirc_iterations <= 0:
            return offered_gbps
        inflation = (packet_size + self.BRIDGE_HEADER_BYTES) / packet_size
        port_bound = self.config.port_gbps / (recirc_iterations * inflation)
        return min(offered_gbps, port_bound)

    def added_latency_ms(self, recirc_iterations: int, packet_size: int = 512) -> float:
        """Extra zero-queue latency from recirculation passes.

        Each pass costs pipeline traversal plus recirculation-port
        (de)serialization; measured end to end through the generator stack
        this lands at roughly 0.1–0.25 ms per pass depending on packet size
        (0.5–1.5 ms total at R=6, §6.3).
        """
        per_pass_ms = 0.08 + 0.11 * (packet_size / 1500.0)
        return recirc_iterations * per_pass_ms


# Imported at the bottom: flowcache imports Verdict/SwitchResult/RECIRC_PORT
# from this module inside its replay methods, so a top-of-file import here
# would be circular.  Only module *attributes* (_BYPASS, the FlowCache
# class) are touched at runtime, which a partially-initialized module
# object satisfies.
from . import flowcache  # noqa: E402
from .codegen import CodegenCache  # noqa: E402
