"""Packet model for the RMT simulator.

A :class:`Packet` is a bag of headers plus wire-level metadata (size,
arrival timestamp, ingress port).  Headers are stored structurally — a dict
of ``header name -> {field: int}`` — rather than as raw bytes: the simulator
never needs byte-exact serialization, only field semantics and sizes, and
structural headers keep every experiment deterministic and debuggable.

Construction helpers cover the packet types the paper's evaluation uses
(plain L2, IPv4, TCP, UDP, cache packets).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import fields as field_registry
from .fields import header_size_bytes

ETYPE_IPV4 = 0x0800
PROTO_TCP = 6
PROTO_UDP = 17

#: Cache opcodes used by the in-network cache programs (paper Fig. 2).
NC_READ = 1
NC_WRITE = 2


@dataclass
class Packet:
    """A simulated packet.

    Attributes:
        headers: present headers, in parse order.
        size: wire size in bytes (includes payload beyond the headers).
        ts: arrival timestamp in seconds (simulation clock).
        ingress_port: port the packet arrived on.
    """

    headers: dict[str, dict[str, int]] = field(default_factory=dict)
    size: int = 64
    ts: float = 0.0
    ingress_port: int = 0
    #: simulated queue occupancy observed by this packet (drives
    #: ``meta.queue_depth`` for programs like ECN marking)
    queue_depth: int = 0

    def has(self, header: str) -> bool:
        return header in self.headers

    def get_field(self, name: str) -> int:
        """Read a fully qualified ``hdr.<h>.<f>`` field."""
        name = field_registry.canonical_name(name)
        _, header, fname = name.split(".", 2)
        try:
            return self.headers[header][fname]
        except KeyError as exc:
            raise KeyError(f"packet has no field {name}") from exc

    def set_field(self, name: str, value: int) -> None:
        """Write a fully qualified ``hdr.<h>.<f>`` field (masked to width)."""
        name = field_registry.canonical_name(name)
        spec = field_registry.lookup(name)
        _, header, fname = name.split(".", 2)
        if header not in self.headers:
            raise KeyError(f"packet has no header {header}")
        self.headers[header][fname] = value & spec.max_value

    def five_tuple(self) -> tuple[int, int, int, int, int]:
        """(src ip, dst ip, proto, sport, dport); zeros for absent layers."""
        src = dst = proto = sport = dport = 0
        if self.has("ipv4"):
            ip = self.headers["ipv4"]
            src, dst, proto = ip["src"], ip["dst"], ip["proto"]
        if self.has("tcp"):
            sport = self.headers["tcp"]["src_port"]
            dport = self.headers["tcp"]["dst_port"]
        elif self.has("udp"):
            sport = self.headers["udp"]["src_port"]
            dport = self.headers["udp"]["dst_port"]
        return (src, dst, proto, sport, dport)

    def clone(self) -> "Packet":
        # Header field values are plain ints, so a two-level dict copy is
        # equivalent to (and much faster than) copy.deepcopy.
        return Packet(
            headers={header: dict(hfields) for header, hfields in self.headers.items()},
            size=self.size,
            ts=self.ts,
            ingress_port=self.ingress_port,
            queue_depth=self.queue_depth,
        )

    def header_bytes(self) -> int:
        """Total wire size of the present headers."""
        return sum(header_size_bytes(h) for h in self.headers)


def _eth_header(dst: int, src: int, etype: int) -> dict[str, int]:
    return {"dst": dst, "src": src, "etype": etype}


def make_l2(dst: int = 0x0200_0000_0001, src: int = 0x0200_0000_0002, *, size: int = 64) -> Packet:
    """Plain Ethernet packet (non-IP)."""
    return Packet(headers={"eth": _eth_header(dst, src, 0x88B5)}, size=size)


def make_ipv4(
    src_ip: int,
    dst_ip: int,
    proto: int = 0,
    *,
    ttl: int = 64,
    ecn: int = 0,
    size: int = 64,
) -> Packet:
    pkt = make_l2(size=size)
    pkt.headers["eth"]["etype"] = ETYPE_IPV4
    pkt.headers["ipv4"] = {
        "ver_ihl": 0x45,
        "dscp": 0,
        "ecn": ecn,
        "len": max(size - header_size_bytes("eth"), 20),
        "id": 0,
        "flags_frag": 0,
        "ttl": ttl,
        "proto": proto,
        "checksum": 0,
        "src": src_ip,
        "dst": dst_ip,
    }
    return pkt


def make_tcp(
    src_ip: int,
    dst_ip: int,
    src_port: int,
    dst_port: int,
    *,
    flags: int = 0x10,
    size: int = 64,
) -> Packet:
    pkt = make_ipv4(src_ip, dst_ip, PROTO_TCP, size=size)
    pkt.headers["tcp"] = {
        "src_port": src_port,
        "dst_port": dst_port,
        "seq": 0,
        "ack": 0,
        "flags": flags,
        "window": 0xFFFF,
    }
    return pkt


def make_udp(
    src_ip: int,
    dst_ip: int,
    src_port: int,
    dst_port: int,
    *,
    size: int = 64,
) -> Packet:
    pkt = make_ipv4(src_ip, dst_ip, PROTO_UDP, size=size)
    pkt.headers["udp"] = {"src_port": src_port, "dst_port": dst_port, "len": size}
    return pkt


def make_cache(
    src_ip: int,
    dst_ip: int,
    *,
    op: int,
    key: int,
    value: int = 0,
    dst_port: int = 7777,
    src_port: int = 50000,
    size: int = 80,
) -> Packet:
    """Cache read/write packet: UDP + nc header (64-bit key split hi/lo)."""
    pkt = make_udp(src_ip, dst_ip, src_port, dst_port, size=size)
    pkt.headers["nc"] = {
        "op": op,
        "key1": (key >> 32) & 0xFFFFFFFF,
        "key2": key & 0xFFFFFFFF,
        "val": value,
    }
    return pkt


def make_calc(src_ip: int, dst_ip: int, *, op: int, a: int, b: int, dst_port: int = 8888) -> Packet:
    """Calculator request packet: UDP + calc header."""
    pkt = make_udp(src_ip, dst_ip, 50001, dst_port, size=72)
    pkt.headers["calc"] = {"op": op, "a": a, "b": b, "result": 0}
    return pkt
