"""Building the P4runpro data plane on the RMT simulator (paper §5).

Layout on the simulated chip (single pipeline pair):

* ingress stage 0 — initialization block (one filter table per parsing
  path, modelled as one logical table with a parsing-bitmap key);
* ingress stages 1..N — ingress RPBs 1..N (N=10 by default);
* ingress stage N+1 — recirculation block;
* egress stages 0..11 — egress RPBs N+1..M (12 by default).

Each RPB carries a 2,048-entry ternary table and a 65,536 x 32-bit
register array.  The class doubles as the control plane's
:class:`~repro.controlplane.update.DataPlaneBinding`: entry inserts and
deletes are applied atomically to the simulated tables, and memory resets
zero the arrays.
"""

from __future__ import annotations

from ..compiler.entries import EntryConfig
from ..compiler.target import TargetSpec
from ..rmt.flowcache import FlowCache
from ..rmt.packet import Packet
from ..rmt.parser import ParseMachine, default_parse_machine
from ..rmt.pipeline import Switch, SwitchConfig, SwitchResult
from ..rmt.salu import RegisterArray
from ..rmt.table import MatchActionTable, TableEntry, TernaryKey
from ..rmt.hashing import HashUnit
from . import constants as dp
from .blocks import InitBlock, RecirculationBlock
from .rpb import RPB

#: Per-RPB VLIW instruction words consumed by the pre-installed atomic
#: operation set (nearly the whole stage budget — §6.3: "P4runpro uses
#: almost all the VLIW to implement atomic operations").
RPB_VLIW_SLOTS = 30
INIT_VLIW_SLOTS = 2
RECIRC_VLIW_SLOTS = 1


class UnknownTableError(KeyError):
    """Entry refers to a table the data plane does not have."""


class P4runproDataPlane:
    """The provisioned P4runpro pipeline plus its southbound binding."""

    def __init__(
        self,
        spec: TargetSpec | None = None,
        parse_machine: ParseMachine | None = None,
        switch_config: SwitchConfig | None = None,
        *,
        include_recirc_block: bool = True,
        flow_cache: bool = True,
        flow_cache_emc_capacity: int = 8192,
        flow_cache_megaflow_capacity: int = 4096,
        codegen: bool = True,
    ):
        self.spec = spec or TargetSpec()
        self.include_recirc_block = include_recirc_block
        machine = parse_machine or default_parse_machine()
        extra_ingress_stages = 2 if include_recirc_block else 1
        config = switch_config or SwitchConfig(
            num_ingress_stages=self.spec.num_ingress_rpbs + extra_ingress_stages,
            num_egress_stages=self.spec.num_egress_rpbs,
        )
        self.switch = Switch(machine, config, codegen=codegen)
        for name, width in dp.P4RUNPRO_FIELDS.items():
            self.switch.layout.declare(name, width)
        self.tables: dict[str, MatchActionTable] = {}
        #: southbound event hooks: callables ``(event, detail)`` invoked
        #: after every successful binding mutation ("insert_entry",
        #: "delete_entry", "reset_memory").  The control service's audit
        #: layer subscribes here; hooks must not raise.
        self.event_hooks: list = []
        self._build_blocks(machine)
        self.switch.provision_done()
        #: Two-tier flow cache (EMC + megaflow trace cache) fronting
        #: :meth:`process` / :meth:`process_many`.  Always constructed so
        #: counters/stats stay introspectable; ``enabled`` gates use.
        fc = FlowCache(
            emc_capacity=flow_cache_emc_capacity,
            megaflow_capacity=flow_cache_megaflow_capacity,
        )
        fc.enabled = flow_cache
        self.flow_cache = fc
        self.switch.flow_cache = fc
        for table in self.tables.values():
            table.on_mutation.append(fc.invalidate)
        #: trace-to-source codegen tier (between flow cache and the
        #: interpreter); the cache wires its own table hooks lazily as it
        #: compiles.  write_bucket / reset_memory / multicast changes need
        #: no codegen invalidation: generated code reads register arrays
        #: and the TM's multicast-group dict live on every packet.
        self.codegen = self.switch.codegen

    def add_event_hook(self, hook) -> None:
        """Subscribe ``hook(event: str, detail: dict)`` to binding events."""
        self.event_hooks.append(hook)

    def _emit(self, event: str, **detail) -> None:
        for hook in self.event_hooks:
            hook(event, detail)

    # -- construction -----------------------------------------------------------
    def _build_blocks(self, machine: ParseMachine) -> None:
        from ..controlplane.manager import INIT_TABLE_CAPACITY, RECIRC_TABLE_CAPACITY

        spec = self.spec
        init_table = MatchActionTable(
            dp.INIT_TABLE,
            INIT_TABLE_CAPACITY,
            index_field=None,
        )
        self.tables[dp.INIT_TABLE] = init_table
        init_stage = self.switch.ingress.stages[0]
        num_paths = max(len(machine.parsing_paths()), 1)
        init_stage.attach_unit(
            InitBlock(init_table),
            tcam_entries=INIT_TABLE_CAPACITY,
            # Modelled as K narrow per-parsing-path tables: each path table
            # only matches its own fields, so the effective key is one
            # TCAM block wide.
            key_bits=44,
            vliw_slots=INIT_VLIW_SLOTS,
            ltids=min(num_paths, init_stage.budget.ltids),
        )

        for phys in range(1, spec.num_rpbs + 1):
            if phys <= spec.num_ingress_rpbs:
                stage = self.switch.ingress.stages[phys]
            else:
                stage = self.switch.egress.stages[phys - spec.num_ingress_rpbs - 1]
            table = MatchActionTable(
                dp.rpb_table(phys),
                spec.rpb_table_size,
                index_field="ud.program_id",
                index_mask=dp.PROGRAM_ID_MASK,
            )
            self.tables[table.name] = table
            memory = RegisterArray(dp.rpb_memory(phys), spec.rpb_memory_size)
            stage.attach_register_array(memory)
            stage.attach_hash_unit(f"{table.name}.hash0", HashUnit("crc_16_buypass"))
            stage.attach_hash_unit(f"{table.name}.hash1", HashUnit("crc_16_mcrf4xx"))
            stage.attach_unit(
                RPB(phys, table, memory.name),
                tcam_entries=spec.rpb_table_size,
                # program id + branch id + recirc id + three registers
                key_bits=16 + 16 + 4 + 3 * 32,
                vliw_slots=RPB_VLIW_SLOTS,
                ltids=1,
            )

        if self.include_recirc_block:
            recirc_table = MatchActionTable(dp.RECIRC_TABLE, RECIRC_TABLE_CAPACITY)
            self.tables[dp.RECIRC_TABLE] = recirc_table
            recirc_stage = self.switch.ingress.stages[spec.num_ingress_rpbs + 1]
            recirc_stage.attach_unit(
                RecirculationBlock(recirc_table),
                tcam_entries=RECIRC_TABLE_CAPACITY,
                key_bits=16 + 4,  # program id + recirculation id
                vliw_slots=RECIRC_VLIW_SLOTS,
                ltids=1,
            )

    # -- DataPlaneBinding ---------------------------------------------------------
    def insert_entry(self, entry: EntryConfig) -> int:
        # EntryConfig keys satisfy the TernaryKey protocol (field/value/
        # mask + matches), so they are installed as-is — no per-key rewrap.
        table = self._table(entry.table)
        handle = table.insert(
            TableEntry(entry.keys, entry.action, entry.data(), priority=entry.priority)
        )
        self._emit("insert_entry", table=entry.table, action=entry.action, handle=handle)
        return handle

    def insert_entries(self, entries: list[EntryConfig]) -> list[int]:
        """Group-atomic batched insert: all entries land or none do (a
        failure rolls the partial prefix back before propagating).

        Consecutive entries bound for the same table go through the
        table's :meth:`~repro.rmt.table.MatchActionTable.insert_many` —
        one structural update (one pool re-sort, one mutation-hook round)
        per run instead of one per entry — which is where grouped
        southbound installs get their speed.
        """
        handles: list[int] = []
        try:
            i, n = 0, len(entries)
            while i < n:
                name = entries[i].table
                j = i + 1
                while j < n and entries[j].table == name:
                    j += 1
                table = self._table(name)
                group = [
                    TableEntry(e.keys, e.action, dict(e.action_data), priority=e.priority)
                    for e in entries[i:j]
                ]
                run_handles = table.insert_many(group)
                handles.extend(run_handles)
                for e, handle in zip(entries[i:j], run_handles):
                    self._emit(
                        "insert_entry", table=name, action=e.action, handle=handle
                    )
                i = j
        except Exception:
            for done, handle in reversed(list(zip(entries, handles))):
                self.delete_entry(done.table, handle)
            raise
        return handles

    def delete_entry(self, table: str, handle: int) -> None:
        self._table(table).delete(handle)
        self._emit("delete_entry", table=table, handle=handle)

    def reset_memory(self, phys_rpb: int, base: int, size: int) -> None:
        self._array(phys_rpb).reset_range(base, size)
        # Cached traces replay SALU ops live, but a trace recorded as
        # *uncacheable* because of a register-dependent branch may become
        # cacheable (or vice versa) after a bulk reset — flush to be safe.
        self.flow_cache.invalidate()
        self._emit("reset_memory", phys_rpb=phys_rpb, base=base, size=size)

    # -- raw control-plane memory APIs ---------------------------------------
    def read_bucket(self, phys_rpb: int, addr: int) -> int:
        return self._array(phys_rpb).read(addr)

    def write_bucket(self, phys_rpb: int, addr: int, value: int) -> None:
        self._array(phys_rpb).write(addr, value)
        self.flow_cache.invalidate()

    def read_entry_counter(self, table: str, handle: int) -> int:
        """Direct-counter readback for one installed entry."""
        return self._table(table).get(handle).hits

    def configure_multicast_group(self, group: int, ports: list[int]) -> None:
        """Program the traffic manager's replication table (PRE)."""
        self.switch.tm.configure_multicast_group(group, ports)
        # Pure-trace templates bake in the replicated egress port list.
        self.flow_cache.invalidate()

    # -- traffic ---------------------------------------------------------------
    def process(
        self, packet: Packet, carried: dict[str, int] | None = None
    ) -> SwitchResult:
        return self.switch.process_packet(packet, carried)

    def process_many(
        self, packets, carried: dict[str, int] | None = None
    ) -> list[SwitchResult]:
        """Run a batch of packets through the switch in arrival order.

        Equivalent to calling :meth:`process` per packet (same verdicts,
        counters, and register mutations) but amortizes compiled-state
        resolution across the batch via :meth:`Switch.process_batch`.
        """
        return self.switch.process_batch(packets, carried)

    # -- introspection ---------------------------------------------------------
    def stats(self) -> dict:
        """Data-plane counters: switch totals, TM verdicts, flow cache."""
        switch = self.switch
        tm = switch.tm
        return {
            "packets_in": switch.packets_in,
            "pipeline_passes": switch.pipeline_passes,
            "forwarded": tm.forwarded,
            "dropped": tm.dropped,
            "reflected": tm.reflected,
            "to_cpu": tm.to_cpu,
            "multicast": tm.multicast,
            "flow_cache": self.flow_cache.stats(),
            "codegen": self.codegen.stats(),
        }

    # -- internals ------------------------------------------------------------
    def _table(self, name: str) -> MatchActionTable:
        table = self.tables.get(name)
        if table is None:
            raise UnknownTableError(name)
        return table

    def _array(self, phys_rpb: int) -> RegisterArray:
        spec = self.spec
        if phys_rpb <= spec.num_ingress_rpbs:
            stage = self.switch.ingress.stages[phys_rpb]
        else:
            stage = self.switch.egress.stages[phys_rpb - spec.num_ingress_rpbs - 1]
        return stage.register_arrays[dp.rpb_memory(phys_rpb)]
