"""Shared names and widths for the P4runpro data plane.

Both the compiler (entry generation) and the data plane (block execution)
need the same table names, PHV scratch-field names, and action names; they
live here so neither package depends on the other's internals.
"""

from __future__ import annotations

#: P4runpro user-metadata fields added to the PHV (paper §4.1.2), with bit
#: widths.  har/sar/mar are the three registers; the rest are control flags
#: and the address-translation scratch field.
P4RUNPRO_FIELDS: dict[str, int] = {
    "ud.har": 32,  # hash register
    "ud.sar": 32,  # SALU register
    "ud.mar": 32,  # memory address register
    "ud.program_id": 16,
    "ud.branch_id": 16,
    "ud.phys_addr": 32,  # offset-step output (physical memory address)
    "ud.salu_flag": 4,
    "ud.reg_backup": 32,  # supportive-register backup slot
    "ud.mcast_grp": 16,  # multicast group id (MULTICAST extension)
}

REGISTER_FIELDS: dict[str, str] = {
    "har": "ud.har",
    "sar": "ud.sar",
    "mar": "ud.mar",
}

#: Table names.
INIT_TABLE = "init"
RECIRC_TABLE = "recirc"


def rpb_table(phys_rpb: int) -> str:
    """Table name of the 1-based physical RPB."""
    return f"rpb{phys_rpb}"


def rpb_memory(phys_rpb: int) -> str:
    """Register-array name of the 1-based physical RPB."""
    return f"rpb{phys_rpb}.mem"


#: Action names beyond the primitive set.
ACTION_SET_PROGRAM = "set_program"
ACTION_SET_BRANCH = "set_branch"
ACTION_RECIRCULATE = "recirculate"

#: Match-key widths for RPB tables (full-width exact masks).
PROGRAM_ID_MASK = 0xFFFF
BRANCH_ID_MASK = 0xFFFF
RECIRC_ID_MASK = 0xF
REGISTER_MASK = 0xFFFFFFFF

#: The CRC algorithms cycled through by hash primitives, in depth order —
#: the four the paper's heavy-hitter case study names (§6.4).
HASH_ALGORITHM_CYCLE = (
    "crc_16_buypass",
    "crc_16_mcrf4xx",
    "crc_aug_ccitt",
    "crc_16_dds_110",
)
