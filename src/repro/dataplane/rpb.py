"""Runtime Programming Blocks: the per-stage execution units (paper §4.1.2).

Each RPB is one large ternary match-action table keyed on the three control
flags (program ID, branch ID, recirculation ID) and the three registers
(har/sar/mar — used by BRANCH entries), whose actions are the pre-installed
atomic operations.  The RPB also owns the stage's register array (its
dynamic memory) and uses the stage's hash units.

Two dispatch paths implement the runtime behaviour of every primitive in
Table 3 plus the compiler-internal OFFSET/BACKUP/RESTORE ops and the
``set_branch`` flag update:

* :func:`execute_action` — the reference interpreter, a plain if-chain over
  action names, used by tests and as the oracle for the compiled path;
* :func:`compile_action` — builds a closure per installed entry with the
  action's operands resolved once (at first dispatch after insert), so the
  per-packet cost is one indirect call instead of string dispatch plus
  dict lookups.  The closure is cached on the entry; any structural table
  update that replaces the entry drops it with the entry.
"""

from __future__ import annotations

from ..rmt import flowcache
from ..rmt.hashing import HashUnit
from ..rmt.phv import PHV
from ..rmt.salu import PHV_OUTPUT_OPS
from ..rmt.stage import LogicalUnit, Stage
from ..rmt.table import MatchActionTable
from . import constants as dp
from . import tracing

REGISTER_MASK = 0xFFFFFFFF

_ALU_OPS = {
    "ADD": lambda a, b: (a + b) & REGISTER_MASK,
    "AND": lambda a, b: a & b,
    "OR": lambda a, b: a | b,
    "MAX": max,
    "MIN": min,
    "XOR": lambda a, b: a ^ b,
}

_MEMORY_OPS = frozenset(
    {"MEMADD", "MEMSUB", "MEMAND", "MEMOR", "MEMREAD", "MEMWRITE", "MEMMAX"}
)

_hash_unit_cache: dict[str, HashUnit] = {}


def _hash_unit(algorithm: str) -> HashUnit:
    unit = _hash_unit_cache.get(algorithm)
    if unit is None:
        unit = HashUnit(algorithm)
        _hash_unit_cache[algorithm] = unit
    return unit


def _phv_five_tuple(phv: PHV) -> tuple[int, int, int, int, int]:
    """Read the 5-tuple from the PHV (zeros for absent layers)."""
    src = phv.get("hdr.ipv4.src") if phv.has("hdr.ipv4.src") else 0
    dst = phv.get("hdr.ipv4.dst") if phv.has("hdr.ipv4.dst") else 0
    proto = phv.get("hdr.ipv4.proto") if phv.has("hdr.ipv4.proto") else 0
    sport = dport = 0
    if phv.has("hdr.tcp.src_port"):
        sport = phv.get("hdr.tcp.src_port")
        dport = phv.get("hdr.tcp.dst_port")
    elif phv.has("hdr.udp.src_port"):
        sport = phv.get("hdr.udp.src_port")
        dport = phv.get("hdr.udp.dst_port")
    return (src, dst, proto, sport, dport)


class RPB(LogicalUnit):
    """One Runtime Programming Block bound to a pipeline stage."""

    def __init__(self, phys_rpb: int, table: MatchActionTable, memory_name: str):
        self.phys_rpb = phys_rpb
        self.name = dp.rpb_table(phys_rpb)
        self.table = table
        self.memory_name = memory_name

    def apply(self, phv: PHV, stage: Stage) -> None:
        entry = self.table.lookup_entry(phv)
        rec = flowcache._RECORDER
        if entry is None:
            # no entry for this (program, branch, recirc) — a NOP unless
            # the table carries a default action
            action = self.table.default_action
            if action is None:
                return
            data = self.table.default_action_data
            if rec is not None:
                op = compile_action(self, action, data)
                op(phv, stage)
                rec.note_op(op, stage)
                record_taint(rec, action, data, phv)
            else:
                execute_action(self, action, data, phv, stage)
            if tracing._ACTIVE is not None:
                tracing._ACTIVE.record(self.name, action, data, phv)
            return
        op = entry.compiled_op
        if op is None:
            op = compile_action(self, entry.action, entry.action_data)
            entry.compiled_op = op
        op(phv, stage)
        if rec is not None:
            rec.note_op(op, stage)
            record_taint(rec, entry.action, entry.action_data, phv)
        if tracing._ACTIVE is not None:
            tracing._ACTIVE.record(self.name, entry.action, entry.action_data, phv)


def compile_action(rpb: RPB, action: str, data: dict):
    """Bind one atomic operation into a ``(phv, stage) -> None`` closure.

    Operand resolution (action-data dict reads, register-field name
    mapping, hash-unit lookup) happens here, once per installed entry;
    the returned closure performs only PHV/stage work per packet.
    Semantically identical to :func:`execute_action` — the equivalence is
    asserted by tests/dataplane/test_rpb.py.
    """
    if action == dp.ACTION_SET_BRANCH:
        branch_id = data["branch_id"]
        return lambda phv, stage: phv.set("ud.branch_id", branch_id)
    if action == "EXTRACT":
        field_name = data["field"]
        reg = dp.REGISTER_FIELDS[data["reg"]]

        def _extract(phv, stage):
            # Hardware semantics: reading an unparsed header's container
            # yields an undefined value (0 here), never a fault.
            phv.set(reg, phv.get(field_name) if phv.has(field_name) else 0)

        return _extract
    if action == "MODIFY":
        field_name = data["field"]
        reg = dp.REGISTER_FIELDS[data["reg"]]

        def _modify(phv, stage):
            # Writing an unparsed header is a no-op (the deparser would
            # not emit it anyway).
            if phv.has(field_name):
                phv.set(field_name, phv.get(reg))

        return _modify
    if action == "HASH_5_TUPLE":
        unit = _hash_unit(data["algorithm"])
        return lambda phv, stage: phv.set(
            "ud.har", unit.hash_five_tuple(_phv_five_tuple(phv))
        )
    if action == "HASH":
        unit = _hash_unit(data["algorithm"])
        return lambda phv, stage: phv.set(
            "ud.har", unit.hash_values((phv.get("ud.har"),))
        )
    if action == "HASH_5_TUPLE_MEM":
        unit = _hash_unit(data["algorithm"])
        mask = data["mask"]

        def _hash5_mem(phv, stage):
            # Mask step, merged with the hash action (§4.1.2): clip the
            # hash output to the virtual memory size before anything can
            # observe it.
            phv.set("ud.mar", unit.hash_five_tuple(_phv_five_tuple(phv)) & mask)

        return _hash5_mem
    if action == "HASH_MEM":
        unit = _hash_unit(data["algorithm"])
        mask = data["mask"]
        return lambda phv, stage: phv.set(
            "ud.mar", unit.hash_values((phv.get("ud.har"),)) & mask
        )
    if action == "OFFSET":
        base = data["base"]
        # Offset step: virtual -> physical address, into a scratch field
        # so the mar keeps its virtual value (§4.1.2).
        return lambda phv, stage: phv.set(
            "ud.phys_addr", (phv.get("ud.mar") + base) & REGISTER_MASK
        )
    if action in _MEMORY_OPS:
        memory_name = rpb.memory_name
        is_write = action == "MEMWRITE"

        def _memory(phv, stage):
            array = stage.register_arrays[memory_name]
            addr = phv.get("ud.phys_addr") % array.size
            output = array.execute(action, addr, phv.get("ud.sar"))
            if not is_write:
                phv.set("ud.sar", output)

        return _memory
    if action == "LOADI":
        reg = dp.REGISTER_FIELDS[data["reg"]]
        value = data["value"]
        return lambda phv, stage: phv.set(reg, value)
    if action in _ALU_OPS:
        alu = _ALU_OPS[action]
        reg0 = dp.REGISTER_FIELDS[data["reg0"]]
        reg1 = dp.REGISTER_FIELDS[data["reg1"]]
        return lambda phv, stage: phv.set(reg0, alu(phv.get(reg0), phv.get(reg1)))
    if action == "FORWARD":
        port = data["port"]
        return lambda phv, stage: phv.set("meta.egress_port", port)
    if action == "MULTICAST":
        group = data["group"]
        return lambda phv, stage: phv.set("ud.mcast_grp", group)
    if action == "DROP":
        return lambda phv, stage: phv.set("ud.drop_ctl", 1)
    if action == "RETURN":
        return lambda phv, stage: phv.set("ud.reflect", 1)
    if action == "REPORT":
        return lambda phv, stage: phv.set("ud.to_cpu", 1)
    if action == "BACKUP":
        reg = dp.REGISTER_FIELDS[data["reg"]]
        return lambda phv, stage: phv.set("ud.reg_backup", phv.get(reg))
    if action == "RESTORE":
        reg = dp.REGISTER_FIELDS[data["reg"]]
        return lambda phv, stage: phv.set(reg, phv.get("ud.reg_backup"))
    raise ValueError(f"RPB {rpb.name}: unknown action {action!r}")


def execute_action(rpb: RPB, action: str, data: dict, phv: PHV, stage: Stage) -> None:
    """Run one atomic operation against the PHV and stage state."""
    if action == dp.ACTION_SET_BRANCH:
        phv.set("ud.branch_id", data["branch_id"])
        return
    if action == "EXTRACT":
        # Hardware semantics: reading an unparsed header's container yields
        # an undefined value (0 here), never a fault.  Programs whose
        # filters guarantee the header is parsed never hit this path.
        field_name = data["field"]
        value = phv.get(field_name) if phv.has(field_name) else 0
        phv.set(dp.REGISTER_FIELDS[data["reg"]], value)
        return
    if action == "MODIFY":
        # Writing an unparsed header is a no-op (the deparser would not
        # emit it anyway).
        if phv.has(data["field"]):
            phv.set(data["field"], phv.get(dp.REGISTER_FIELDS[data["reg"]]))
        return
    if action == "HASH_5_TUPLE":
        unit = _hash_unit(data["algorithm"])
        phv.set("ud.har", unit.hash_five_tuple(_phv_five_tuple(phv)))
        return
    if action == "HASH":
        unit = _hash_unit(data["algorithm"])
        phv.set("ud.har", unit.hash_values((phv.get("ud.har"),)))
        return
    if action == "HASH_5_TUPLE_MEM":
        unit = _hash_unit(data["algorithm"])
        digest = unit.hash_five_tuple(_phv_five_tuple(phv))
        # Mask step, merged with the hash action (§4.1.2): clip the hash
        # output to the virtual memory size before anything can observe it.
        phv.set("ud.mar", digest & data["mask"])
        return
    if action == "HASH_MEM":
        unit = _hash_unit(data["algorithm"])
        digest = unit.hash_values((phv.get("ud.har"),))
        phv.set("ud.mar", digest & data["mask"])
        return
    if action == "OFFSET":
        # Offset step: virtual -> physical address, into a scratch field so
        # the mar keeps its virtual value (§4.1.2).
        phv.set("ud.phys_addr", (phv.get("ud.mar") + data["base"]) & REGISTER_MASK)
        return
    if action in _MEMORY_OPS:
        array = stage.register_arrays[rpb.memory_name]
        addr = phv.get("ud.phys_addr") % array.size
        output = array.execute(action, addr, phv.get("ud.sar"))
        if action != "MEMWRITE":
            phv.set("ud.sar", output)
        return
    if action == "LOADI":
        phv.set(dp.REGISTER_FIELDS[data["reg"]], data["value"])
        return
    if action in _ALU_OPS:
        reg0 = dp.REGISTER_FIELDS[data["reg0"]]
        reg1 = dp.REGISTER_FIELDS[data["reg1"]]
        phv.set(reg0, _ALU_OPS[action](phv.get(reg0), phv.get(reg1)))
        return
    if action == "FORWARD":
        phv.set("meta.egress_port", data["port"])
        return
    if action == "MULTICAST":
        phv.set("ud.mcast_grp", data["group"])
        return
    if action == "DROP":
        phv.set("ud.drop_ctl", 1)
        return
    if action == "RETURN":
        phv.set("ud.reflect", 1)
        return
    if action == "REPORT":
        phv.set("ud.to_cpu", 1)
        return
    if action == "BACKUP":
        phv.set("ud.reg_backup", phv.get(dp.REGISTER_FIELDS[data["reg"]]))
        return
    if action == "RESTORE":
        phv.set(dp.REGISTER_FIELDS[data["reg"]], phv.get("ud.reg_backup"))
        return
    raise ValueError(f"RPB {rpb.name}: unknown action {action!r}")


def _five_tuple_dep(rec, phv: PHV):
    """Dependency of a 5-tuple hash output: the union of the present
    tuple fields' deps (mirrors :func:`_phv_five_tuple`, whose absent
    layers contribute constants)."""
    deps = []
    for name in ("hdr.ipv4.src", "hdr.ipv4.dst", "hdr.ipv4.proto"):
        if phv.has(name):
            deps.append(rec.dep_of(name))
    if phv.has("hdr.tcp.src_port"):
        deps.append(rec.dep_of("hdr.tcp.src_port"))
        deps.append(rec.dep_of("hdr.tcp.dst_port"))
    elif phv.has("hdr.udp.src_port"):
        deps.append(rec.dep_of("hdr.udp.src_port"))
        deps.append(rec.dep_of("hdr.udp.dst_port"))
    return rec.combine(*deps)


def record_taint(rec, action: str, data: dict, phv: PHV) -> None:
    """Propagate flow-cache taint for one executed atomic operation.

    Each rule states what the op's destination now depends on — a
    constant, a set of raw inputs, or (for SALU outputs) the STATEFUL
    sentinel.  The rules must mirror the dataflow of
    :func:`execute_action`; they are what lets a later *consult* of the
    destination (a BRANCH key, a parser select) emit sound megaflow
    conditions.  An action outside the closed set kills the trace.
    """
    if action == dp.ACTION_SET_BRANCH:
        rec.set_dep("ud.branch_id", None)
        return
    if action == "EXTRACT":
        field_name = data["field"]
        reg = dp.REGISTER_FIELDS[data["reg"]]
        rec.set_dep(reg, rec.dep_of(field_name) if phv.has(field_name) else None)
        return
    if action == "MODIFY":
        field_name = data["field"]
        if phv.has(field_name):
            rec.set_dep(field_name, rec.dep_of(dp.REGISTER_FIELDS[data["reg"]]))
        return
    if action == "HASH_5_TUPLE":
        rec.set_dep("ud.har", _five_tuple_dep(rec, phv))
        return
    if action == "HASH":
        return  # har <- f(har): dependency unchanged
    if action == "HASH_5_TUPLE_MEM":
        rec.set_dep("ud.mar", _five_tuple_dep(rec, phv))
        return
    if action == "HASH_MEM":
        rec.set_dep("ud.mar", rec.dep_of("ud.har"))
        return
    if action == "OFFSET":
        rec.set_dep("ud.phys_addr", rec.dep_of("ud.mar"))
        return
    if action in _MEMORY_OPS:
        rec.stateful = True
        if action in PHV_OUTPUT_OPS:
            rec.set_dep("ud.sar", flowcache.STATEFUL)
        return
    if action == "LOADI":
        rec.set_dep(dp.REGISTER_FIELDS[data["reg"]], None)
        return
    if action in _ALU_OPS:
        reg0 = dp.REGISTER_FIELDS[data["reg0"]]
        reg1 = dp.REGISTER_FIELDS[data["reg1"]]
        rec.set_dep(reg0, rec.combine(rec.dep_of(reg0), rec.dep_of(reg1)))
        return
    if action == "FORWARD":
        rec.set_dep("meta.egress_port", None)
        return
    if action == "MULTICAST":
        rec.set_dep("ud.mcast_grp", None)
        return
    if action == "DROP":
        rec.set_dep("ud.drop_ctl", None)
        return
    if action == "RETURN":
        rec.set_dep("ud.reflect", None)
        return
    if action == "REPORT":
        rec.set_dep("ud.to_cpu", None)
        return
    if action == "BACKUP":
        rec.set_dep("ud.reg_backup", rec.dep_of(dp.REGISTER_FIELDS[data["reg"]]))
        return
    if action == "RESTORE":
        rec.set_dep(dp.REGISTER_FIELDS[data["reg"]], rec.dep_of("ud.reg_backup"))
        return
    # Unknown action (operator extension): refuse to cache the trace.
    rec.dead = True
