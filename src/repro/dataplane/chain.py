"""A chain of P4runpro switches replacing recirculation (paper §4.1.3, §5).

"Recirculation can also be replaced by multiple switches deployed on the
same path" — each hop drops the recirculation block (one extra ingress
RPB) and the P4runpro bridge header carries the program state from hop to
hop.  The chain exposes the same southbound binding as a single data
plane, with *global* table names: hop ``h``'s per-switch RPB ``r`` is
``rpb{h * rpbs_per_switch + r}``, so the compiler, resource manager, and
update engine work unchanged against a :class:`ChainSpec`.

Forwarding semantics along the chain: an intermediate hop's FORWARD
verdict means "pass to the next hop" (its port faces the next switch);
DROP, REFLECT, and TO_CPU are terminal wherever they fire.  The last
hop's verdict is the chain's verdict.
"""

from __future__ import annotations

from ..compiler.entries import EntryConfig
from ..compiler.target import ChainSpec, TargetSpec
from ..rmt.packet import Packet
from ..rmt.pipeline import SwitchResult, Verdict
from . import constants as dp
from .runpro import P4runproDataPlane, UnknownTableError


class SwitchChain:
    """``num_switches`` recirculation-free P4runpro hops on one path."""

    def __init__(self, spec: ChainSpec | None = None):
        self.spec = spec or ChainSpec()
        per_switch = TargetSpec(
            num_ingress_rpbs=self.spec.num_ingress_rpbs,
            num_egress_rpbs=self.spec.num_egress_rpbs,
            max_recirculations=0,
            rpb_table_size=self.spec.rpb_table_size,
            rpb_memory_size=self.spec.rpb_memory_size,
        )
        self.hops = [
            P4runproDataPlane(per_switch, include_recirc_block=False)
            for _ in range(self.spec.num_switches)
        ]

    # -- table routing -----------------------------------------------------------
    def _route(self, table: str) -> tuple[P4runproDataPlane, str]:
        """Map a global table name to (hop, per-switch table name)."""
        if table == dp.INIT_TABLE:
            return self.hops[0], table
        if table == dp.RECIRC_TABLE:
            raise UnknownTableError(
                "a switch chain has no recirculation block"
            )
        if not table.startswith("rpb"):
            raise UnknownTableError(table)
        global_rpb = int(table[3:])
        hop_index, local = self.spec.local_rpb(global_rpb)
        if hop_index >= len(self.hops):
            raise UnknownTableError(table)
        return self.hops[hop_index], dp.rpb_table(local)

    # -- DataPlaneBinding ----------------------------------------------------------
    def insert_entry(self, entry: EntryConfig) -> int:
        hop, local_table = self._route(entry.table)
        routed = EntryConfig(
            local_table, entry.keys, entry.action, entry.action_data, entry.priority
        )
        # Encode the hop in the handle so deletion can route back.
        hop_index = self.hops.index(hop)
        handle = hop.insert_entry(routed)
        return hop_index * 10_000_000 + handle

    def delete_entry(self, table: str, handle: int) -> None:
        hop, local_table = self._route(table)
        hop.delete_entry(local_table, handle % 10_000_000)

    def reset_memory(self, phys_rpb: int, base: int, size: int) -> None:
        hop_index, local = self.spec.local_rpb(phys_rpb)
        self.hops[hop_index].reset_memory(local, base, size)

    def read_bucket(self, phys_rpb: int, addr: int) -> int:
        hop_index, local = self.spec.local_rpb(phys_rpb)
        return self.hops[hop_index].read_bucket(local, addr)

    def write_bucket(self, phys_rpb: int, addr: int, value: int) -> None:
        hop_index, local = self.spec.local_rpb(phys_rpb)
        self.hops[hop_index].write_bucket(local, addr, value)

    def read_entry_counter(self, table: str, handle: int) -> int:
        hop, local_table = self._route(table)
        return hop.read_entry_counter(local_table, handle % 10_000_000)

    def configure_multicast_group(self, group: int, ports: list[int]) -> None:
        """Program every hop's replication table (a MULTICAST may fire on
        any hop's ingress)."""
        for hop in self.hops:
            hop.configure_multicast_group(group, ports)

    # -- traffic ---------------------------------------------------------------------
    def process(self, packet: Packet) -> SwitchResult:
        """Run a packet down the chain, bridging program state hop to hop."""
        carried: dict[str, int] | None = None
        result: SwitchResult | None = None
        current = packet
        for hop_index, hop in enumerate(self.hops):
            if carried is not None:
                carried["ud.recirc_count"] = hop_index
            result = hop.process(current, carried)
            if result.verdict is not Verdict.FORWARD:
                return result  # drop / reflect / report are terminal
            current = result.packet
            carried = dict(result.bridge)
        assert result is not None
        return result
