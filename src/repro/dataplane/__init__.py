"""The P4runpro data plane built on the RMT simulator.

``P4runproDataPlane`` is exported lazily: it depends on the compiler
package (for entry configs), which in turn imports this package's
``constants`` module — a cycle only if everything loads eagerly.
"""

from . import constants
from .blocks import InitBlock, RecirculationBlock
from .rpb import RPB, execute_action

__all__ = [
    "InitBlock",
    "P4runproDataPlane",
    "RPB",
    "RecirculationBlock",
    "SwitchChain",
    "UnknownTableError",
    "constants",
    "execute_action",
]


def __getattr__(name):
    if name in ("P4runproDataPlane", "UnknownTableError"):
        from . import runpro

        return getattr(runpro, name)
    if name == "SwitchChain":
        from .chain import SwitchChain

        return SwitchChain
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
