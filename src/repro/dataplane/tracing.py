"""Per-packet execution tracing.

Captures every atomic operation a packet triggers — which block/RPB ran
it, the action and its data, and the register state afterwards — exactly
the walkthrough the paper's Figure 3 draws for the program cache.  Used
by the CLI's ``trace`` command and by tests as an execution oracle.

Usage::

    with capture_trace() as trace:
        result = dataplane.process(packet)
    for step in trace.steps:
        print(step)
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

from ..rmt import flowcache
from ..rmt.phv import PHV


@dataclass(frozen=True)
class TraceStep:
    """One executed atomic operation."""

    unit: str  # "init", "rpb7", "recirc", ...
    action: str
    data: tuple[tuple[str, object], ...]
    har: int
    sar: int
    mar: int
    program_id: int
    branch_id: int
    recirc_count: int

    def __str__(self) -> str:
        data = ", ".join(f"{k}={v}" for k, v in self.data)
        return (
            f"{self.unit:>7s}  {self.action}({data})  "
            f"har={self.har:#x} sar={self.sar:#x} mar={self.mar:#x}  "
            f"prog={self.program_id} branch={self.branch_id} "
            f"pass={self.recirc_count}"
        )


@dataclass
class Trace:
    """All steps one (or more) packets executed while capturing."""

    steps: list[TraceStep] = field(default_factory=list)

    def record(self, unit: str, action: str, data: dict, phv: PHV) -> None:
        self.steps.append(
            TraceStep(
                unit=unit,
                action=action,
                data=tuple(sorted(data.items())),
                har=phv.get("ud.har") if phv.has("ud.har") else 0,
                sar=phv.get("ud.sar") if phv.has("ud.sar") else 0,
                mar=phv.get("ud.mar") if phv.has("ud.mar") else 0,
                program_id=phv.get("ud.program_id") if phv.has("ud.program_id") else 0,
                branch_id=phv.get("ud.branch_id") if phv.has("ud.branch_id") else 0,
                recirc_count=phv.get("ud.recirc_count"),
            )
        )

    def actions(self) -> list[str]:
        return [step.action for step in self.steps]

    def by_unit(self) -> dict[str, list[TraceStep]]:
        grouped: dict[str, list[TraceStep]] = {}
        for step in self.steps:
            grouped.setdefault(step.unit, []).append(step)
        return grouped

    def render(self) -> str:
        return "\n".join(str(step) for step in self.steps)


#: The active trace, if any (single-threaded simulator).
_ACTIVE: Trace | None = None


def active_trace() -> Trace | None:
    return _ACTIVE


def emit(unit: str, action: str, data: dict, phv: PHV) -> None:
    """Record a step on the active trace (no-op when not tracing)."""
    if _ACTIVE is not None:
        _ACTIVE.record(unit, action, data, phv)


@contextlib.contextmanager
def capture_trace():
    """Capture every executed operation within the block.

    Tracing needs a full pipeline walk — a flow-cache template hit would
    execute no atomic operations at all — so the cache is bypassed (not
    flushed) for the duration of the capture.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = Trace()
    flowcache._BYPASS += 1
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous
        flowcache._BYPASS -= 1
