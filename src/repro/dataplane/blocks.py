"""Initialization and recirculation blocks (paper §4.1.1 / §4.1.3).

* The **initialization block** occupies the first ingress stage.  Its
  filter tables match the parsing bitmap plus arbitrary header fields and
  assign the packet's program ID — the isolation boundary every later
  block keys on.
* The **recirculation block** occupies the last ingress stage.  When the
  running program's allocation spans recirculation iterations, the block
  flags the packet so the traffic manager loops it back through the
  pipeline with its stateless state (registers, flags, addresses) bridged
  in an internal header.
"""

from __future__ import annotations

from ..rmt import flowcache
from ..rmt.phv import PHV
from ..rmt.stage import LogicalUnit, Stage
from ..rmt.table import MatchActionTable
from . import constants as dp
from . import tracing


class InitBlock(LogicalUnit):
    """Flow filtering: parsing-path filter tables assigning program IDs."""

    name = dp.INIT_TABLE

    def __init__(self, table: MatchActionTable):
        self.table = table

    def apply(self, phv: PHV, stage: Stage) -> None:
        if phv.get("ud.recirc_count"):
            # Recirculated packets carry their program ID and branch ID in
            # the bridge header (§4.1.3); filtering ran on the first pass.
            return
        result = self.table.lookup(phv)
        if result is None:
            return  # program_id stays 0: packet belongs to no program
        action, data = result
        if action != dp.ACTION_SET_PROGRAM:
            raise ValueError(f"init block: unexpected action {action!r}")
        program_id = data["program_id"]
        phv.set("ud.program_id", program_id)
        phv.set("ud.branch_id", 0)
        rec = flowcache._RECORDER
        if rec is not None:
            # The filter-table consults were recorded inside lookup();
            # record the effect as a synthetic replayable op and mark both
            # flags as constants under the recorded conditions.
            def _op(phv, stage, _pid=program_id):
                phv.set("ud.program_id", _pid)
                phv.set("ud.branch_id", 0)

            rec.note_op(_op, stage)
            rec.set_dep("ud.program_id", None)
            rec.set_dep("ud.branch_id", None)
        if tracing._ACTIVE is not None:
            tracing._ACTIVE.record(self.name, action, data, phv)


class RecirculationBlock(LogicalUnit):
    """Flags packets whose program continues in a later iteration."""

    name = dp.RECIRC_TABLE

    def __init__(self, table: MatchActionTable):
        self.table = table

    def apply(self, phv: PHV, stage: Stage) -> None:
        result = self.table.lookup(phv)
        if result is None:
            return
        action, _data = result
        if action != dp.ACTION_RECIRCULATE:
            raise ValueError(f"recirculation block: unexpected action {action!r}")
        phv.set("ud.recirc_flag", 1)
        rec = flowcache._RECORDER
        if rec is not None:
            def _op(phv, stage):
                phv.set("ud.recirc_flag", 1)

            rec.note_op(_op, stage)
            rec.set_dep("ud.recirc_flag", None)
        if tracing._ACTIVE is not None:
            tracing._ACTIVE.record(self.name, action, _data, phv)
