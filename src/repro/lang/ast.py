"""Abstract syntax tree for P4runpro programs.

Statements mirror the grammar of Appendix B.1: a program is a filter tuple
plus a statement list; a statement is a primitive invocation or a BRANCH
with case blocks, each case holding a nested statement list.  Argument
nodes are typed (field / register / memory identifier / immediate), which
is what the semantic checker validates against the primitive registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

REGISTERS = ("har", "sar", "mar")


class ArgKind(Enum):
    FIELD = "field"
    REGISTER = "register"
    MEMORY = "memory"
    IMMEDIATE = "immediate"


@dataclass(frozen=True)
class Arg:
    kind: ArgKind
    value: str | int

    def __str__(self) -> str:
        return str(self.value)


def reg(name: str) -> Arg:
    return Arg(ArgKind.REGISTER, name)


def imm(value: int) -> Arg:
    return Arg(ArgKind.IMMEDIATE, value)


def fld(name: str) -> Arg:
    return Arg(ArgKind.FIELD, name)


def mem(name: str) -> Arg:
    return Arg(ArgKind.MEMORY, name)


@dataclass
class Primitive:
    """A primitive (or pseudo-primitive) invocation statement."""

    name: str
    args: tuple[Arg, ...] = ()
    line: int = 0

    def __str__(self) -> str:
        if not self.args:
            return self.name
        return f"{self.name}({', '.join(map(str, self.args))})"


@dataclass
class Condition:
    """One case condition: ``<register, value, mask>``."""

    register: str
    value: int
    mask: int
    line: int = 0


@dataclass
class Case:
    """One case block of a BRANCH."""

    conditions: list[Condition]
    body: list["Stmt"]
    line: int = 0


@dataclass
class Branch:
    """A BRANCH statement with its case blocks."""

    cases: list[Case]
    line: int = 0

    def __str__(self) -> str:
        return f"BRANCH[{len(self.cases)} cases]"


Stmt = Primitive | Branch


@dataclass
class Filter:
    """One traffic filter tuple: ``<field, value, mask>``."""

    field: str
    value: int
    mask: int
    line: int = 0


@dataclass
class MemoryDecl:
    """An ``@ identifier size`` annotation requesting a memory block."""

    name: str
    size: int  # number of 32-bit buckets
    line: int = 0


@dataclass
class ProgramDecl:
    """One ``program name(filters...) { ... }`` declaration."""

    name: str
    filters: list[Filter]
    body: list[Stmt]
    line: int = 0


@dataclass
class SourceUnit:
    """A full P4runpro source file: annotations then programs."""

    memories: list[MemoryDecl] = field(default_factory=list)
    programs: list[ProgramDecl] = field(default_factory=list)

    def memory(self, name: str) -> MemoryDecl | None:
        for decl in self.memories:
            if decl.name == name:
                return decl
        return None


def walk_statements(body: list[Stmt]):
    """Yield every statement in ``body``, depth-first through branches."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, Branch):
            for case in stmt.cases:
                yield from walk_statements(case.body)


def count_loc(unit: SourceUnit, *, count_elastic: bool = True) -> int:
    """Count logical lines of a source unit, one per statement/decl.

    With ``count_elastic=False``, case blocks beyond the first in each
    BRANCH are treated as elastic (variable-count lookup entries, paper
    §6.1) and excluded — matching how Table 1 counts P4runpro LoC.
    """
    total = len(unit.memories)
    for program in unit.programs:
        total += 1  # program declaration line

        def count_body(body: list[Stmt]) -> int:
            subtotal = 0
            for stmt in body:
                subtotal += 1
                if isinstance(stmt, Branch):
                    cases = stmt.cases if count_elastic else stmt.cases[:1]
                    for case in cases:
                        subtotal += 1  # the case header
                        subtotal += count_body(case.body)
            return subtotal

        total += count_body(program.body)
    return total
