"""Recursive-descent parser for P4runpro (grammar of Appendix B.1).

Deviations from the figure, matching the paper's own example programs:

* ``condition`` is the 3-tuple ``<register, value, mask>`` (the figure's
  2-tuple omits the register name, but every listed program names it);
* semicolons after ``BRANCH`` case lists and case blocks are optional —
  Fig. 2 omits them, Fig. 17 writes them.
"""

from __future__ import annotations

from .ast import (
    Arg,
    ArgKind,
    Branch,
    Case,
    Condition,
    Filter,
    MemoryDecl,
    ProgramDecl,
    REGISTERS,
    SourceUnit,
    Stmt,
)
from .errors import ParseError
from .lexer import Token, TokenKind, tokenize
from .primitives import SOURCE_PRIMITIVES


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ------------------------------------------------------
    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _check_punct(self, char: str) -> bool:
        return self._current.kind is TokenKind.PUNCT and self._current.value == char

    def _accept_punct(self, char: str) -> bool:
        if self._check_punct(char):
            self._advance()
            return True
        return False

    def _expect_punct(self, char: str) -> Token:
        if not self._check_punct(char):
            raise ParseError(
                f"expected {char!r}, found {self._current.value!r}", self._current.line
            )
        return self._advance()

    def _expect_int(self) -> int:
        if self._current.kind is not TokenKind.INT:
            raise ParseError(
                f"expected integer, found {self._current.value!r}", self._current.line
            )
        return int(self._advance().value)

    def _expect_ident(self) -> str:
        if self._current.kind is not TokenKind.IDENT:
            raise ParseError(
                f"expected identifier, found {self._current.value!r}", self._current.line
            )
        return str(self._advance().value)

    # -- grammar ---------------------------------------------------------------
    def parse_unit(self) -> SourceUnit:
        unit = SourceUnit()
        while self._accept_punct("@"):
            line = self._tokens[self._pos - 1].line
            name = self._expect_ident()
            size = self._expect_int()
            unit.memories.append(MemoryDecl(name, size, line))
        while self._current.kind is TokenKind.KEYWORD and self._current.value == "program":
            unit.programs.append(self._parse_program())
        if self._current.kind is not TokenKind.EOF:
            raise ParseError(
                f"unexpected token {self._current.value!r}", self._current.line
            )
        if not unit.programs:
            raise ParseError("source contains no program declaration", self._current.line)
        return unit

    def _parse_program(self) -> ProgramDecl:
        line = self._advance().line  # 'program'
        name = self._expect_ident()
        self._expect_punct("(")
        filters = [self._parse_filter()]
        while self._accept_punct(","):
            filters.append(self._parse_filter())
        self._expect_punct(")")
        self._expect_punct("{")
        body = self._parse_body()
        self._expect_punct("}")
        return ProgramDecl(name, filters, body, line)

    def _parse_filter(self) -> Filter:
        line = self._expect_punct("<").line
        field = self._expect_ident()
        self._expect_punct(",")
        value = self._expect_int()
        self._expect_punct(",")
        mask = self._expect_int()
        self._expect_punct(">")
        return Filter(field, value, mask, line)

    def _parse_body(self) -> list[Stmt]:
        body: list[Stmt] = []
        while not self._check_punct("}"):
            if self._current.kind is TokenKind.EOF:
                raise ParseError("unexpected end of input inside a block", self._current.line)
            body.append(self._parse_statement())
        return body

    def _parse_statement(self) -> Stmt:
        token = self._current
        if token.kind is not TokenKind.IDENT:
            raise ParseError(f"expected primitive, found {token.value!r}", token.line)
        name = str(token.value)
        if name == "BRANCH":
            return self._parse_branch()
        self._advance()
        if name not in SOURCE_PRIMITIVES:
            raise ParseError(f"unknown primitive {name!r}", token.line)
        args: list[Arg] = []
        if self._accept_punct("("):
            args.append(self._parse_argument())
            while self._accept_punct(","):
                args.append(self._parse_argument())
            self._expect_punct(")")
        self._expect_punct(";")
        return PrimitiveFactory.make(name, tuple(args), token.line)

    def _parse_branch(self) -> Branch:
        line = self._advance().line  # 'BRANCH'
        self._expect_punct(":")
        cases: list[Case] = []
        while self._current.kind is TokenKind.KEYWORD and self._current.value == "case":
            cases.append(self._parse_case())
        if not cases:
            raise ParseError("BRANCH requires at least one case block", line)
        self._accept_punct(";")  # optional trailing ';' after the case list
        return Branch(cases, line)

    def _parse_case(self) -> Case:
        line = self._advance().line  # 'case'
        self._expect_punct("(")
        conditions = [self._parse_condition()]
        while self._accept_punct(","):
            conditions.append(self._parse_condition())
        self._expect_punct(")")
        self._expect_punct("{")
        body = self._parse_body()
        self._expect_punct("}")
        self._accept_punct(";")  # optional ';' after a case block
        return Case(conditions, body, line)

    def _parse_condition(self) -> Condition:
        line = self._expect_punct("<").line
        register = self._expect_ident()
        if register not in REGISTERS:
            raise ParseError(
                f"case condition must name a register (har/sar/mar), found {register!r}", line
            )
        self._expect_punct(",")
        value = self._expect_int()
        self._expect_punct(",")
        mask = self._expect_int()
        self._expect_punct(">")
        return Condition(register, value, mask, line)

    def _parse_argument(self) -> Arg:
        token = self._current
        if token.kind is TokenKind.INT:
            self._advance()
            return Arg(ArgKind.IMMEDIATE, int(token.value))
        if token.kind is TokenKind.IDENT:
            self._advance()
            text = str(token.value)
            if text in REGISTERS:
                return Arg(ArgKind.REGISTER, text)
            if text.startswith(("hdr.", "meta.")):
                return Arg(ArgKind.FIELD, text)
            return Arg(ArgKind.MEMORY, text)
        raise ParseError(f"expected argument, found {token.value!r}", token.line)


class PrimitiveFactory:
    """Builds Primitive nodes; separate so tests can stub construction."""

    @staticmethod
    def make(name: str, args: tuple[Arg, ...], line: int):
        from .ast import Primitive

        return Primitive(name, args, line)


def parse_source(source: str) -> SourceUnit:
    """Tokenize and parse a P4runpro source string."""
    return _Parser(tokenize(source)).parse_unit()
