"""The P4runpro primitive and pseudo-primitive set (paper Table 3).

Each primitive is described by a :class:`PrimitiveSpec`: its category (the
six types of §4.2), its argument signature, and whether it is a *pseudo*
primitive that the compiler expands into real primitives before allocation
(Appendix A.2).

A few compiler-internal primitives are also registered (category
``internal``): ``NOP`` (branch alignment padding, §4.3), ``OFFSET`` (the
address-translation offset step + SALU-flag set, §4.1.2), and
``BACKUP``/``RESTORE`` (supportive-register save/restore around pseudo-
primitive expansions, §4.2).  These never appear in source programs; the
semantic checker rejects them there.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .ast import ArgKind


class Category(Enum):
    HEADER = "header interaction"
    HASH = "hash"
    BRANCH = "conditional branch"
    MEMORY = "memory"
    ARITH = "arithmetic and logic"
    FORWARD = "forwarding"
    INTERNAL = "internal"


@dataclass(frozen=True)
class PrimitiveSpec:
    name: str
    category: Category
    signature: tuple[ArgKind, ...]
    pseudo: bool = False
    #: primitive writes to memory / reads memory (allocation bookkeeping)
    memory_op: bool = False

    @property
    def internal(self) -> bool:
        return self.category is Category.INTERNAL


_F = ArgKind.FIELD
_R = ArgKind.REGISTER
_M = ArgKind.MEMORY
_I = ArgKind.IMMEDIATE


def _spec(
    name: str,
    category: Category,
    *signature: ArgKind,
    pseudo: bool = False,
    memory_op: bool = False,
) -> PrimitiveSpec:
    return PrimitiveSpec(name, category, tuple(signature), pseudo=pseudo, memory_op=memory_op)


_SPECS: tuple[PrimitiveSpec, ...] = (
    # header interaction
    _spec("EXTRACT", Category.HEADER, _F, _R),
    _spec("MODIFY", Category.HEADER, _F, _R),
    # hash
    _spec("HASH_5_TUPLE", Category.HASH),
    _spec("HASH", Category.HASH),
    _spec("HASH_5_TUPLE_MEM", Category.HASH, _M),
    _spec("HASH_MEM", Category.HASH, _M),
    # conditional branch (cases are parsed structurally, not as args)
    _spec("BRANCH", Category.BRANCH),
    # memory
    _spec("MEMADD", Category.MEMORY, _M, memory_op=True),
    _spec("MEMSUB", Category.MEMORY, _M, memory_op=True),
    _spec("MEMAND", Category.MEMORY, _M, memory_op=True),
    _spec("MEMOR", Category.MEMORY, _M, memory_op=True),
    _spec("MEMREAD", Category.MEMORY, _M, memory_op=True),
    _spec("MEMWRITE", Category.MEMORY, _M, memory_op=True),
    _spec("MEMMAX", Category.MEMORY, _M, memory_op=True),
    # arithmetic & logic
    _spec("LOADI", Category.ARITH, _R, _I),
    _spec("ADD", Category.ARITH, _R, _R),
    _spec("AND", Category.ARITH, _R, _R),
    _spec("OR", Category.ARITH, _R, _R),
    _spec("MAX", Category.ARITH, _R, _R),
    _spec("MIN", Category.ARITH, _R, _R),
    _spec("XOR", Category.ARITH, _R, _R),
    # pseudo primitives (expanded by the compiler, Appendix A.2)
    _spec("MOVE", Category.ARITH, _R, _R, pseudo=True),
    _spec("NOT", Category.ARITH, _R, pseudo=True),
    _spec("SUB", Category.ARITH, _R, _R, pseudo=True),
    _spec("EQUAL", Category.ARITH, _R, _R, pseudo=True),
    _spec("SGT", Category.ARITH, _R, _R, pseudo=True),
    _spec("SLT", Category.ARITH, _R, _R, pseudo=True),
    _spec("ADDI", Category.ARITH, _R, _I, pseudo=True),
    _spec("ANDI", Category.ARITH, _R, _I, pseudo=True),
    _spec("XORI", Category.ARITH, _R, _I, pseudo=True),
    _spec("SUBI", Category.ARITH, _R, _I, pseudo=True),
    # forwarding
    _spec("FORWARD", Category.FORWARD, _I),
    # MULTICAST is the §7 SwitchML-enabling extension: replicate the packet
    # to a control-plane-configured multicast group.
    _spec("MULTICAST", Category.FORWARD, _I),
    _spec("DROP", Category.FORWARD),
    _spec("RETURN", Category.FORWARD),
    _spec("REPORT", Category.FORWARD),
    # compiler-internal
    _spec("NOP", Category.INTERNAL),
    _spec("OFFSET", Category.INTERNAL, _M),
    _spec("BACKUP", Category.INTERNAL, _R),
    _spec("RESTORE", Category.INTERNAL, _R),
)

REGISTRY: dict[str, PrimitiveSpec] = {spec.name: spec for spec in _SPECS}

#: Names legal in source programs (pseudo included, internals excluded).
SOURCE_PRIMITIVES: frozenset[str] = frozenset(
    spec.name for spec in _SPECS if not spec.internal
)

#: Forwarding primitives may only execute in ingress RPBs (§4.1.2).
FORWARDING_PRIMITIVES: frozenset[str] = frozenset(
    spec.name for spec in _SPECS if spec.category is Category.FORWARD
)

MEMORY_PRIMITIVES: frozenset[str] = frozenset(
    spec.name for spec in _SPECS if spec.memory_op
)

PSEUDO_PRIMITIVES: frozenset[str] = frozenset(spec.name for spec in _SPECS if spec.pseudo)


def get(name: str) -> PrimitiveSpec:
    spec = REGISTRY.get(name)
    if spec is None:
        raise KeyError(f"unknown primitive {name!r}")
    return spec


def is_primitive(name: str) -> bool:
    return name in REGISTRY
