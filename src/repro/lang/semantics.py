"""Semantic checks for parsed P4runpro programs (paper §4.3).

The language's semantics are intentionally simple, so checking is a typed
walk of the AST:

* every primitive's arguments match the registry signature;
* memory identifiers are declared by an ``@`` annotation, and declared
  sizes are powers of two (mask-based address translation requirement,
  §4.1.2 / §7);
* filter and condition fields exist in the chip's field registry, and
  values/masks fit their widths;
* program names are unique within the unit.

Note that forwarding primitives are *not* terminal: they only set intrinsic
metadata that the traffic manager executes later, so statements may follow
them (the paper's cache program runs RETURN before its memory reads).
"""

from __future__ import annotations

from ..rmt import fields as field_registry
from .ast import (
    Arg,
    ArgKind,
    Branch,
    Case,
    Primitive,
    ProgramDecl,
    SourceUnit,
    Stmt,
)
from .errors import SemanticError
from .primitives import get as get_spec

REGISTER_WIDTH = 32
REGISTER_MAX = (1 << REGISTER_WIDTH) - 1

def check_unit(unit: SourceUnit) -> None:
    """Validate a whole source unit; raises :class:`SemanticError`."""
    _check_memories(unit)
    seen: set[str] = set()
    for program in unit.programs:
        if program.name in seen:
            raise SemanticError(f"duplicate program name {program.name!r}", program.line)
        seen.add(program.name)
        check_program(unit, program)


def _check_memories(unit: SourceUnit) -> None:
    names: set[str] = set()
    for decl in unit.memories:
        if decl.name in names:
            raise SemanticError(f"duplicate memory declaration {decl.name!r}", decl.line)
        names.add(decl.name)
        if decl.size <= 0:
            raise SemanticError(f"memory {decl.name!r} has non-positive size", decl.line)
        if decl.size & (decl.size - 1):
            raise SemanticError(
                f"memory {decl.name!r} size {decl.size} is not a power of two "
                "(mask-based address translation requirement)",
                decl.line,
            )


def check_program(unit: SourceUnit, program: ProgramDecl) -> None:
    if not program.filters:
        raise SemanticError(f"program {program.name!r} has no traffic filter", program.line)
    for flt in program.filters:
        _check_field(flt.field, flt.line)
        _check_fits(flt.value, flt.field, flt.line, "filter value")
        _check_fits(flt.mask, flt.field, flt.line, "filter mask")
    if not program.body:
        raise SemanticError(f"program {program.name!r} has an empty body", program.line)
    _check_body(unit, program.body)


def _check_body(unit: SourceUnit, body: list[Stmt]) -> None:
    for stmt in body:
        if isinstance(stmt, Branch):
            _check_branch(unit, stmt)
        else:
            _check_primitive(unit, stmt)


def _check_branch(unit: SourceUnit, branch: Branch) -> None:
    for case in branch.cases:
        _check_case(unit, case)


def _check_case(unit: SourceUnit, case: Case) -> None:
    if not case.conditions:
        raise SemanticError("case block has no conditions", case.line)
    for cond in case.conditions:
        if cond.value < 0 or cond.value > REGISTER_MAX:
            raise SemanticError(
                f"condition value {cond.value} exceeds register width", cond.line
            )
        if cond.mask < 0 or cond.mask > REGISTER_MAX:
            raise SemanticError(f"condition mask {cond.mask:#x} exceeds register width", cond.line)
    _check_body(unit, case.body)


def _check_primitive(unit: SourceUnit, prim: Primitive) -> None:
    try:
        spec = get_spec(prim.name)
    except KeyError as exc:
        raise SemanticError(f"unknown primitive {prim.name!r}", prim.line) from exc
    if spec.internal:
        raise SemanticError(
            f"{prim.name} is a compiler-internal primitive and cannot appear in source",
            prim.line,
        )
    if len(prim.args) != len(spec.signature):
        raise SemanticError(
            f"{prim.name} expects {len(spec.signature)} argument(s), got {len(prim.args)}",
            prim.line,
        )
    for arg, expected in zip(prim.args, spec.signature):
        _check_arg(unit, prim, arg, expected)
    if prim.name == "FORWARD":
        port = prim.args[0].value
        if not 0 <= int(port) < 512:
            raise SemanticError(f"FORWARD port {port} out of range", prim.line)
    if prim.name == "MULTICAST":
        group = prim.args[0].value
        if not 1 <= int(group) < 0x10000:
            raise SemanticError(f"MULTICAST group {group} out of range", prim.line)


def _check_arg(unit: SourceUnit, prim: Primitive, arg: Arg, expected: ArgKind) -> None:
    if arg.kind is not expected:
        raise SemanticError(
            f"{prim.name}: expected {expected.value} argument, got {arg.kind.value} "
            f"({arg.value!r})",
            prim.line,
        )
    if expected is ArgKind.FIELD:
        _check_field(str(arg.value), prim.line)
    elif expected is ArgKind.MEMORY:
        if unit.memory(str(arg.value)) is None:
            raise SemanticError(
                f"{prim.name}: memory {arg.value!r} is not declared with an '@' annotation",
                prim.line,
            )
    elif expected is ArgKind.IMMEDIATE:
        value = int(arg.value)
        if value < 0 or value > REGISTER_MAX:
            raise SemanticError(
                f"{prim.name}: immediate {value} does not fit in {REGISTER_WIDTH} bits",
                prim.line,
            )


def _check_field(name: str, line: int | None) -> None:
    if not field_registry.is_known(name):
        raise SemanticError(f"unknown field {name!r}", line)


def _check_fits(value: int, field_name: str, line: int | None, what: str) -> None:
    spec = field_registry.lookup(field_name)
    if value < 0 or value > spec.max_value:
        raise SemanticError(
            f"{what} {value:#x} does not fit field {field_name} ({spec.width} bits)", line
        )
