"""Pretty-printer: format a P4runpro AST back to canonical source text.

Round-trips with the parser (``parse(print(unit))`` reproduces the same
AST up to line numbers) — property-tested in the test suite.  Used by the
runtime CLI's ``show`` command and by the incremental-update engine to
display the effective program after case-block edits.
"""

from __future__ import annotations

from .ast import (
    Arg,
    ArgKind,
    Branch,
    Case,
    Condition,
    Filter,
    Primitive,
    ProgramDecl,
    SourceUnit,
    Stmt,
)

_INDENT = "    "


def _format_value(value: int) -> str:
    """Integers print in hex when they look like masks/addresses."""
    if value > 9:
        return f"{value:#x}"
    return str(value)


def format_arg(arg: Arg) -> str:
    if arg.kind is ArgKind.IMMEDIATE:
        return _format_value(int(arg.value))
    return str(arg.value)


def format_condition(cond: Condition) -> str:
    return f"<{cond.register}, {_format_value(cond.value)}, {cond.mask:#x}>"


def format_filter(flt: Filter) -> str:
    return f"<{flt.field}, {_format_value(flt.value)}, {flt.mask:#x}>"


def _format_stmt(stmt: Stmt, depth: int) -> list[str]:
    pad = _INDENT * depth
    if isinstance(stmt, Branch):
        lines = [f"{pad}BRANCH:"]
        for case in stmt.cases:
            lines.extend(_format_case(case, depth))
        return lines
    assert isinstance(stmt, Primitive)
    if stmt.args:
        args = ", ".join(format_arg(a) for a in stmt.args)
        return [f"{pad}{stmt.name}({args});"]
    return [f"{pad}{stmt.name};"]


def _format_case(case: Case, depth: int) -> list[str]:
    pad = _INDENT * depth
    conditions = ", ".join(format_condition(c) for c in case.conditions)
    lines = [f"{pad}case({conditions}) {{"]
    for stmt in case.body:
        lines.extend(_format_stmt(stmt, depth + 1))
    lines.append(f"{pad}}}")
    return lines


def format_program(program: ProgramDecl) -> str:
    filters = ", ".join(format_filter(f) for f in program.filters)
    lines = [f"program {program.name}({filters}) {{"]
    for stmt in program.body:
        lines.extend(_format_stmt(stmt, 1))
    lines.append("}")
    return "\n".join(lines)


def format_unit(unit: SourceUnit) -> str:
    """Format a whole source unit back to parseable text."""
    parts = [f"@ {decl.name} {decl.size}" for decl in unit.memories]
    parts.extend(format_program(program) for program in unit.programs)
    return "\n".join(parts) + "\n"
