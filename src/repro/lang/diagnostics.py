"""Human-friendly diagnostics: annotated source excerpts for errors.

The toolchain's errors carry 1-based line numbers; this module renders
them against the source text the way modern compilers do:

    error: line 6: unknown field 'hdr.nc.bogus'
       4 |     <hdr.udp.dst_port, 7777, 0xffff>) {
       5 |     EXTRACT(hdr.nc.op, har);
    >  6 |     EXTRACT(hdr.nc.bogus, sar);
       7 |     BRANCH:

Used by the runtime CLI and handy in tests and notebooks.
"""

from __future__ import annotations

from .errors import P4runproError


def annotate(source: str, line: int | None, *, context: int = 2) -> str:
    """Render ``source`` around ``line`` with a marker column."""
    lines = source.splitlines()
    if line is None or not 1 <= line <= len(lines):
        return ""
    lo = max(1, line - context)
    hi = min(len(lines), line + context)
    width = len(str(hi))
    rendered = []
    for number in range(lo, hi + 1):
        marker = ">" if number == line else " "
        rendered.append(f"{marker} {number:>{width}} | {lines[number - 1]}")
    return "\n".join(rendered)


def explain(source: str, error: P4runproError, *, context: int = 2) -> str:
    """Format a toolchain error with its source excerpt."""
    line = getattr(error, "line", None)
    header = f"error: {error}"
    excerpt = annotate(source, line, context=context)
    if excerpt:
        return f"{header}\n{excerpt}"
    return header


def check_source(source: str) -> list[str]:
    """Run the full front end; return rendered diagnostics (empty = clean).

    A linting entry point: unlike ``parse_and_check`` it never raises and
    collects what it can (the front end stops at the first error per
    phase, so at most one diagnostic is returned today — the list return
    keeps the interface stable for multi-error recovery).
    """
    from .parser import parse_source
    from .semantics import check_unit

    try:
        unit = parse_source(source)
        check_unit(unit)
    except P4runproError as error:
        return [explain(source, error)]
    return []
