"""Diagnostics for the P4runpro language frontend and compiler."""

from __future__ import annotations


class P4runproError(Exception):
    """Base class for all P4runpro toolchain errors."""


class LexError(P4runproError):
    """Invalid character or malformed literal in the source text."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


class ParseError(P4runproError):
    """The source text does not conform to the P4runpro grammar."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


class SemanticError(P4runproError):
    """The program is grammatical but ill-typed or inconsistent."""

    def __init__(self, message: str, line: int | None = None):
        super().__init__(f"line {line}: {message}" if line is not None else message)
        self.line = line


class AllocationError(P4runproError):
    """The compiler could not find a feasible resource allocation."""
