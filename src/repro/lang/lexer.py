"""Tokenizer for P4runpro sources.

The paper's prototype uses PLY; this reproduction ships a self-contained
scanner with the same token language (Appendix B.1):

* ``IDENT`` — identifiers, including dotted field references
  (``hdr.udp.dst_port``) and the registers ``har``/``sar``/``mar``;
* ``INT`` — decimal, hexadecimal (``0x..``), and binary (``0b..``)
  integers, plus dotted-quad IP addresses (lexed to their integer value);
* punctuation ``@ ( ) { } < > , ; :``;
* keywords ``program`` and ``case``;
* ``//`` line comments and ``/* .. */`` block comments.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum

from .errors import LexError

KEYWORDS = frozenset({"program", "case"})


class TokenKind(Enum):
    IDENT = "IDENT"
    INT = "INT"
    KEYWORD = "KEYWORD"
    PUNCT = "PUNCT"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str | int
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.value}, {self.value!r}, line={self.line})"


_PUNCT = set("@(){}<>,;:")


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in "._"


#: One master pattern per token class (a compiled alternation scans an
#: order of magnitude faster than a per-character Python loop, and parse
#: time is the cold-deploy path's largest single cost).  Character classes
#: mirror the predicates above exactly: ``[^\W_]`` is "alphanumeric"
#: (``isalnum``), ``[^\W\d]`` is "letter or underscore" (ident start).
_MASTER = re.compile(
    r"//[^\n]*"
    r"|/\*(?s:.*?)\*/"
    r"|(?P<num>\d(?:[^\W_]|\.)*)"
    r"|(?P<ident>[^\W\d](?:[^\W_]|[._])*)"
    r"|(?P<punct>[@(){}<>,;:])"
)


def tokenize(source: str) -> list[Token]:
    """Scan ``source`` into a token list ending with an EOF token."""
    tokens: list[Token] = []
    append = tokens.append
    line = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch.isspace():
            j = i + 1
            while j < n and source[j].isspace():
                j += 1
            line += source.count("\n", i, j)
            i = j
            continue
        match = _MASTER.match(source, i)
        if match is None:
            if source.startswith("/*", i):
                raise LexError("unterminated block comment", line)
            raise LexError(f"unexpected character {ch!r}", line)
        group = match.lastgroup
        text = match.group()
        if group == "ident":
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            append(Token(kind, text, line))
        elif group == "num":
            append(Token(TokenKind.INT, _parse_number(text, line), line))
        elif group == "punct":
            append(Token(TokenKind.PUNCT, text, line))
        else:  # comment: no token, but keep the line count exact
            line += text.count("\n")
        i = match.end()
    append(Token(TokenKind.EOF, "", line))
    return tokens


def _parse_number(text: str, line: int) -> int:
    """Parse INT: decimal / hex / binary literal, or dotted-quad IP."""
    if "." in text:
        parts = text.split(".")
        if len(parts) != 4:
            raise LexError(f"malformed IP address literal {text!r}", line)
        value = 0
        for part in parts:
            if not part.isdigit() or not 0 <= int(part) <= 255:
                raise LexError(f"malformed IP address literal {text!r}", line)
            value = (value << 8) | int(part)
        return value
    try:
        if text.lower().startswith("0x"):
            return int(text, 16)
        if text.lower().startswith("0b"):
            return int(text, 2)
        return int(text, 10)
    except ValueError as exc:
        raise LexError(f"malformed integer literal {text!r}", line) from exc
