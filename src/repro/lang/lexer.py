"""Tokenizer for P4runpro sources.

The paper's prototype uses PLY; this reproduction ships a self-contained
scanner with the same token language (Appendix B.1):

* ``IDENT`` — identifiers, including dotted field references
  (``hdr.udp.dst_port``) and the registers ``har``/``sar``/``mar``;
* ``INT`` — decimal, hexadecimal (``0x..``), and binary (``0b..``)
  integers, plus dotted-quad IP addresses (lexed to their integer value);
* punctuation ``@ ( ) { } < > , ; :``;
* keywords ``program`` and ``case``;
* ``//`` line comments and ``/* .. */`` block comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .errors import LexError

KEYWORDS = frozenset({"program", "case"})


class TokenKind(Enum):
    IDENT = "IDENT"
    INT = "INT"
    KEYWORD = "KEYWORD"
    PUNCT = "PUNCT"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: str | int
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.value}, {self.value!r}, line={self.line})"


_PUNCT = set("@(){}<>,;:")


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch in "._"


def tokenize(source: str) -> list[Token]:
    """Scan ``source`` into a token list ending with an EOF token."""
    tokens: list[Token] = []
    line = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch.isspace():
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end == -1 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenKind.PUNCT, ch, line))
            i += 1
            continue
        if ch.isdigit():
            start = i
            while i < n and (source[i].isalnum() or source[i] == "."):
                i += 1
            text = source[start:i]
            tokens.append(Token(TokenKind.INT, _parse_number(text, line), line))
            continue
        if _is_ident_start(ch):
            start = i
            while i < n and _is_ident_char(source[i]):
                i += 1
            text = source[start:i]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, line))
            continue
        raise LexError(f"unexpected character {ch!r}", line)
    tokens.append(Token(TokenKind.EOF, "", line))
    return tokens


def _parse_number(text: str, line: int) -> int:
    """Parse INT: decimal / hex / binary literal, or dotted-quad IP."""
    if "." in text:
        parts = text.split(".")
        if len(parts) != 4:
            raise LexError(f"malformed IP address literal {text!r}", line)
        value = 0
        for part in parts:
            if not part.isdigit() or not 0 <= int(part) <= 255:
                raise LexError(f"malformed IP address literal {text!r}", line)
            value = (value << 8) | int(part)
        return value
    try:
        if text.lower().startswith("0x"):
            return int(text, 16)
        if text.lower().startswith("0b"):
            return int(text, 2)
        return int(text, 10)
    except ValueError as exc:
        raise LexError(f"malformed integer literal {text!r}", line) from exc
