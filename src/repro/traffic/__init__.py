"""Traffic substrate: flow populations, synthetic traces, replay engine."""

from .capture import (
    CaptureFormatError,
    capture_windows,
    iter_capture,
    load_capture,
    save_capture,
)
from .flows import Flow, FlowPopulation, make_population
from .replay import ReplayEngine, ReplayEvent, WindowStats, load_imbalance
from .topo import FabricTraffic, make_fabric_population
from .trace import (
    WINDOW_S,
    CacheTrace,
    CacheTraceConfig,
    CampusTrace,
    TraceConfig,
    Window,
)

__all__ = [
    "CacheTrace",
    "CaptureFormatError",
    "capture_windows",
    "iter_capture",
    "load_capture",
    "save_capture",
    "CacheTraceConfig",
    "CampusTrace",
    "FabricTraffic",
    "Flow",
    "FlowPopulation",
    "make_fabric_population",
    "ReplayEngine",
    "ReplayEvent",
    "TraceConfig",
    "WINDOW_S",
    "Window",
    "WindowStats",
    "load_imbalance",
    "make_population",
]
