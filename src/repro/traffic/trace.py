"""Synthetic campus-trace generation (the paper's dataset stand-in).

The paper replays ~1.3 GB of anonymized Tsinghua campus TCP/UDP traffic at
100 Mbps and samples statistics every 50 ms.  Without that dataset we
synthesize traces with the same *relevant* statistics: a fixed 5-tuple
population (4,096 combinations), heavy-tailed flow sizes, a TCP/UDP mix,
bursty packet sizes (small ACKs + large data segments — the "spikes ...
caused by large TCP packet transfers" of Fig. 13(a)), and deterministic
seeding so every experiment is reproducible.

Replay is *sampled*: each 50 ms window carries a bounded number of sample
packets, each representing an equal slice of the window's bytes, keeping
simulation cost independent of line rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..rmt.packet import PROTO_TCP, Packet, make_cache, make_tcp, make_udp
from .flows import Flow, FlowPopulation, make_population

#: Paper's sampling interval.
WINDOW_S = 0.05


@dataclass
class Window:
    """One 50 ms replay window."""

    start_s: float
    packets: list[Packet]
    offered_bytes: int  # wire bytes this window represents

    @property
    def offered_mbps(self) -> float:
        return self.offered_bytes * 8 / WINDOW_S / 1e6


@dataclass
class TraceConfig:
    rate_mbps: float = 100.0
    duration_s: float = 30.0
    samples_per_window: int = 40
    tcp_burst_probability: float = 0.06
    seed: int = 11


class CampusTrace:
    """A reproducible synthetic trace over a flow population."""

    def __init__(
        self,
        population: FlowPopulation | None = None,
        config: TraceConfig | None = None,
    ):
        self.config = config or TraceConfig()
        self.population = population or make_population(seed=self.config.seed)
        self._rng = random.Random(self.config.seed * 7919 + 17)

    def windows(self):
        """Yield :class:`Window` objects covering the configured duration."""
        cfg = self.config
        num_windows = int(round(cfg.duration_s / WINDOW_S))
        bytes_per_window = int(cfg.rate_mbps * 1e6 / 8 * WINDOW_S)
        for index in range(num_windows):
            start = index * WINDOW_S
            burst = self._rng.random() < cfg.tcp_burst_probability
            # Bursts model large TCP transfers: momentarily higher offered
            # bytes in the window (the spikes of Fig. 13(a)).
            offered = int(bytes_per_window * (1.6 if burst else 1.0))
            flows = self.population.sample(cfg.samples_per_window)
            packets = [self._packet_for(flow, start, burst) for flow in flows]
            yield Window(start, packets, offered)

    def _packet_for(self, flow: Flow, ts: float, burst: bool) -> Packet:
        if flow.proto == PROTO_TCP:
            size = 1460 if (burst or self._rng.random() < 0.35) else 80
            pkt = make_tcp(
                flow.src_ip, flow.dst_ip, flow.src_port, flow.dst_port, size=size
            )
        else:
            size = self._rng.choice([80, 128, 300, 512])
            pkt = make_udp(
                flow.src_ip, flow.dst_ip, flow.src_port, flow.dst_port, size=size
            )
        pkt.ts = ts
        return pkt


@dataclass
class CacheTraceConfig:
    """The in-network-cache workload of §6.4: UDP packets with a cache
    header, payloads discarded, destination port unified, hit rate 0.6."""

    rate_mbps: float = 100.0
    duration_s: float = 30.0
    samples_per_window: int = 40
    hit_rate: float = 0.6
    num_keys: int = 512
    hot_key: int = 0x8888
    dst_port: int = 7777
    seed: int = 23


class CacheTrace:
    """Cache read traffic with a controlled hit rate on ``hot_key``."""

    def __init__(self, config: CacheTraceConfig | None = None):
        self.config = config or CacheTraceConfig()
        self._rng = random.Random(self.config.seed)

    def windows(self):
        cfg = self.config
        num_windows = int(round(cfg.duration_s / WINDOW_S))
        bytes_per_window = int(cfg.rate_mbps * 1e6 / 8 * WINDOW_S)
        for index in range(num_windows):
            start = index * WINDOW_S
            packets = []
            for _ in range(cfg.samples_per_window):
                if self._rng.random() < cfg.hit_rate:
                    key = cfg.hot_key
                else:
                    key = 0x100000 + self._rng.randrange(cfg.num_keys)
                pkt = make_cache(
                    0x0A000000 | self._rng.randrange(1, 4096),
                    0x0A00FF01,
                    op=1,  # cache read
                    key=key,
                    dst_port=cfg.dst_port,
                    size=80,
                )
                pkt.ts = start
                packets.append(pkt)
            yield Window(start, packets, bytes_per_window)
