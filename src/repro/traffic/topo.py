"""Topology-aware traffic: flow populations pinned to fabric leaves.

:func:`make_fabric_population` reuses the single-switch Zipf machinery of
:func:`~.flows.make_population` — same heavy/light split, protocol mix,
and seeding — but draws every flow's addresses from the fabric's per-leaf
host subnets: the source address decides the ingress leaf, and a
``locality`` knob controls how much traffic stays on its ingress leaf
versus crossing the spine layer.  :class:`FabricTraffic` then turns
sampled flows into the ``(ingress_leaf, packet)`` assignments
:meth:`repro.fabric.Fabric.run` consumes, so fabric benches and
single-switch benches share one generator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..rmt.packet import PROTO_UDP, Packet, make_tcp, make_udp
from .flows import Flow, FlowPopulation, make_population


def make_fabric_population(
    topology,
    *,
    num_flows: int = 4096,
    heavy_flows: int = 100,
    heavy_share: float = 0.6,
    udp_fraction: float = 0.35,
    locality: float = 0.5,
    seed: int = 7,
) -> "FabricTraffic":
    """Build a leaf-aware population over ``topology``.

    Flow ``i`` sources from leaf ``i % num_leaves`` (so load spreads
    evenly); its destination stays on the same leaf with probability
    ``locality`` and otherwise lands on a uniformly chosen other leaf.
    """
    leaves = topology.leaves
    if not leaves:
        raise ValueError("topology has no leaves")
    if not 0.0 <= locality <= 1.0:
        raise ValueError("locality must be within [0, 1]")

    def addresser(rng: random.Random, index: int) -> tuple[int, int]:
        src_leaf = leaves[index % len(leaves)]
        if len(leaves) == 1 or rng.random() < locality:
            dst_leaf = src_leaf
        else:
            others = [leaf for leaf in leaves if leaf != src_leaf]
            dst_leaf = others[rng.randrange(len(others))]
        src_base, src_mask = topology.leaf_subnets[src_leaf]
        dst_base, dst_mask = topology.leaf_subnets[dst_leaf]
        src_span = (~src_mask) & 0xFFFFFFFF
        dst_span = (~dst_mask) & 0xFFFFFFFF
        return (
            src_base | rng.randrange(1, src_span + 1),
            dst_base | rng.randrange(1, dst_span + 1),
        )

    population = make_population(
        num_flows=num_flows,
        heavy_flows=heavy_flows,
        heavy_share=heavy_share,
        udp_fraction=udp_fraction,
        seed=seed,
        addresser=addresser,
    )
    return FabricTraffic(topology, population)


@dataclass
class FabricTraffic:
    """A flow population plus its ingress-leaf map."""

    topology: object
    population: FlowPopulation

    def __post_init__(self) -> None:
        self.ingress: dict[tuple, str] = {}
        for flow in self.population.flows:
            leaf = self.topology.leaf_of_ip(flow.src_ip)
            if leaf is None:
                raise ValueError(
                    f"flow source {flow.src_ip:#x} is outside every leaf subnet"
                )
            self.ingress[flow.five_tuple] = leaf

    def ingress_of(self, flow: Flow) -> str:
        return self.ingress[flow.five_tuple]

    def packet_of(self, flow: Flow, *, ts: float = 0.0, size: int = 64) -> Packet:
        maker = make_udp if flow.proto == PROTO_UDP else make_tcp
        packet = maker(
            flow.src_ip, flow.dst_ip, flow.src_port, flow.dst_port, size=size
        )
        packet.ts = ts
        return packet

    def assignments(
        self, count: int, *, inter_arrival_s: float = 1e-6, size: int = 64
    ) -> list[tuple[str, Packet]]:
        """Sample ``count`` packets as ``(ingress_leaf, packet)`` pairs,
        timestamped at a fixed inter-arrival spacing (arrival order ==
        injection order, which the fabric's reorder accounting relies on).
        """
        out = []
        for index, flow in enumerate(self.population.sample(count)):
            packet = self.packet_of(
                flow, ts=index * inter_arrival_s, size=size
            )
            out.append((self.ingress[flow.five_tuple], packet))
        return out

    def cross_leaf_share(self) -> float:
        """Fraction of sampling weight that crosses the spine layer."""
        total = sum(f.weight for f in self.population.flows)
        cross = sum(
            f.weight
            for f in self.population.flows
            if self.topology.leaf_of_ip(f.dst_ip) != self.ingress[f.five_tuple]
        )
        return cross / total if total else 0.0
