"""Replay engine: drive a data plane with a trace and measure RX series.

Plays the TRex/tcpreplay role from the paper's testbed (§5): pushes each
window's sample packets through the simulated switch, attributes the
window's offered bytes to the forwarding verdicts proportionally, and
produces the per-50 ms RX-rate series (and per-port split) the Fig. 13
case studies plot.

Mid-replay control-plane actions are supported through *events*: callables
scheduled at trace timestamps (deploy program X at t=5 s, delete one every
0.5 s, ...), executed between windows exactly like an operator driving the
CLI against live traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..rmt.pipeline import SwitchResult, Verdict
from .trace import WINDOW_S, Window


@dataclass
class WindowStats:
    """Measured outcome of one replay window."""

    start_s: float
    offered_mbps: float
    rx_mbps: float
    reflected_mbps: float
    dropped_mbps: float
    reported_packets: int
    rx_mbps_by_port: dict[int, float] = field(default_factory=dict)


@dataclass(frozen=True)
class ReplayEvent:
    """A control-plane action fired when replay time passes ``at_s``."""

    at_s: float
    action: Callable[[], None]
    label: str = ""


class ReplayEngine:
    """Replays windows against a data plane and collects statistics."""

    def __init__(
        self,
        dataplane,
        *,
        blackout: Callable[[float], bool] | None = None,
        queue_model=None,
    ):
        """``dataplane`` needs a ``process(packet) -> SwitchResult`` method.

        ``blackout``, when given, maps a timestamp to "switch unavailable"
        (the conventional-workflow reprovision window): unavailable windows
        measure zero RX regardless of the packets.

        ``queue_model`` (a :class:`repro.rmt.queueing.QueueModel`) makes
        packets observe live egress queue depths — window k's packets see
        the depths window k-1 left behind, and forwarded bytes feed the
        queues, giving ECN-style programs a real congestion signal.
        """
        self.dataplane = dataplane
        self.blackout = blackout
        self.queue_model = queue_model
        self.reported: list[SwitchResult] = []

    def run(
        self,
        windows: Iterable[Window],
        events: list[ReplayEvent] | None = None,
    ) -> list[WindowStats]:
        pending = sorted(events or [], key=lambda e: e.at_s)
        cursor = 0
        stats: list[WindowStats] = []
        for window in windows:
            while cursor < len(pending) and pending[cursor].at_s <= window.start_s:
                pending[cursor].action()
                cursor += 1
            stats.append(self._replay_window(window))
        return stats

    def _replay_window(self, window: Window) -> WindowStats:
        offered_mbps = window.offered_bytes * 8 / WINDOW_S / 1e6
        if self.blackout is not None and self.blackout(window.start_s):
            return WindowStats(window.start_s, offered_mbps, 0.0, 0.0, offered_mbps, 0)
        if not window.packets:
            return WindowStats(window.start_s, offered_mbps, 0.0, 0.0, 0.0, 0)
        per_packet_bytes = window.offered_bytes / len(window.packets)
        rx = reflected = dropped = 0.0
        reports = 0
        by_port: dict[int, float] = {}
        by_port_bytes: dict[int, float] = {}
        for packet in window.packets:
            packet = packet.clone()
            if self.queue_model is not None:
                # The congestion signal is dominated by the bottleneck
                # queue; packets observe the deepest current queue (their
                # own egress port is only known after processing).
                packet.queue_depth = max(
                    (q.depth_cells for q in self.queue_model.queues.values()),
                    default=0,
                )
            result = self.dataplane.process(packet)
            share = per_packet_bytes * 8 / WINDOW_S / 1e6
            if result.verdict is Verdict.DROP:
                dropped += share
            elif result.verdict is Verdict.REFLECT:
                reflected += share
            elif result.verdict is Verdict.TO_CPU:
                reports += 1
                self.reported.append(result)
            else:
                rx += share
                port = result.egress_port or 0
                by_port[port] = by_port.get(port, 0.0) + share
                by_port_bytes[port] = by_port_bytes.get(port, 0.0) + per_packet_bytes
        if self.queue_model is not None:
            self.queue_model.end_window(by_port_bytes, WINDOW_S)
        return WindowStats(
            window.start_s, offered_mbps, rx, reflected, dropped, reports, by_port
        )


def load_imbalance(stats: WindowStats, port_a: int, port_b: int) -> float:
    """The paper's imbalance metric: |rx_a - rx_b| / total rx (Fig. 13(c))."""
    rx_a = stats.rx_mbps_by_port.get(port_a, 0.0)
    rx_b = stats.rx_mbps_by_port.get(port_b, 0.0)
    total = rx_a + rx_b
    if total == 0:
        return 0.0
    return abs(rx_a - rx_b) / total
