"""Trace capture files: persist and replay packet streams byte-exactly.

The paper's testbed replays a recorded campus pcap with tcpreplay and
analyzes received packets with libpcap (§5).  This module is that
machinery for the simulator: a compact binary container ("RPCAP") that
serializes the structural packets deterministically, so an experiment's
exact traffic can be saved, shared, diffed, and replayed.

Format (all integers big-endian):

    magic   4s   b"RPC1"
    count   u32
    records:
        ts          f64 (seconds)
        ingress     u16
        size        u16 (wire bytes)
        queue_depth u32
        nheaders    u8
        headers:
            name_len u8, name bytes (ascii)
            nfields  u8
            fields:  name_len u8, name bytes, value u64

Values wider than 64 bits (Ethernet MACs fit; nothing wider exists in the
registry) would need a format bump — the writer validates this.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator

from ..rmt.packet import Packet

MAGIC = b"RPC1"


class CaptureFormatError(ValueError):
    """The file is not a valid RPCAP capture."""


def _write_str(out: BinaryIO, text: str) -> None:
    data = text.encode("ascii")
    if len(data) > 255:
        raise CaptureFormatError(f"name too long: {text!r}")
    out.write(struct.pack(">B", len(data)))
    out.write(data)


def _read_str(stream: BinaryIO) -> str:
    (length,) = struct.unpack(">B", _read_exact(stream, 1))
    return _read_exact(stream, length).decode("ascii")


def _read_exact(stream: BinaryIO, count: int) -> bytes:
    data = stream.read(count)
    if len(data) != count:
        raise CaptureFormatError("truncated capture file")
    return data


def write_packet(out: BinaryIO, packet: Packet) -> None:
    out.write(
        struct.pack(
            ">dHHI",
            packet.ts,
            packet.ingress_port,
            packet.size,
            packet.queue_depth,
        )
    )
    out.write(struct.pack(">B", len(packet.headers)))
    for header, fields in packet.headers.items():
        _write_str(out, header)
        out.write(struct.pack(">B", len(fields)))
        for name, value in fields.items():
            if not 0 <= value < (1 << 64):
                raise CaptureFormatError(
                    f"field {header}.{name} value {value} exceeds 64 bits"
                )
            _write_str(out, name)
            out.write(struct.pack(">Q", value))


def read_packet(stream: BinaryIO) -> Packet:
    ts, ingress, size, queue_depth = struct.unpack(">dHHI", _read_exact(stream, 16))
    (nheaders,) = struct.unpack(">B", _read_exact(stream, 1))
    headers: dict[str, dict[str, int]] = {}
    for _ in range(nheaders):
        header = _read_str(stream)
        (nfields,) = struct.unpack(">B", _read_exact(stream, 1))
        fields: dict[str, int] = {}
        for _ in range(nfields):
            name = _read_str(stream)
            (value,) = struct.unpack(">Q", _read_exact(stream, 8))
            fields[name] = value
        headers[header] = fields
    return Packet(
        headers=headers,
        size=size,
        ts=ts,
        ingress_port=ingress,
        queue_depth=queue_depth,
    )


def save_capture(path: str | Path, packets: Iterable[Packet]) -> int:
    """Write packets to a capture file; returns the record count."""
    buffer = io.BytesIO()
    count = 0
    for packet in packets:
        write_packet(buffer, packet)
        count += 1
    with open(path, "wb") as out:
        out.write(MAGIC)
        out.write(struct.pack(">I", count))
        out.write(buffer.getvalue())
    return count


def load_capture(path: str | Path) -> list[Packet]:
    """Read a whole capture file into memory."""
    return list(iter_capture(path))


def iter_capture(path: str | Path) -> Iterator[Packet]:
    """Stream packets from a capture file."""
    with open(path, "rb") as stream:
        magic = stream.read(4)
        if magic != MAGIC:
            raise CaptureFormatError(f"bad magic {magic!r} (expected {MAGIC!r})")
        (count,) = struct.unpack(">I", _read_exact(stream, 4))
        for _ in range(count):
            yield read_packet(stream)


def capture_windows(windows) -> list[Packet]:
    """Flatten a trace's windows into one timestamped packet list."""
    packets: list[Packet] = []
    for window in windows:
        packets.extend(window.packets)
    return packets
