"""Flow populations: 5-tuple pools with heavy-tailed packet counts.

The case studies (paper §6.4) use campus traffic reduced to 4,096 distinct
5-tuple combinations, with 100 ground-truth heavy flows for the
heavy-hitter study.  This module synthesizes such populations with a
seeded RNG: Zipf-like weights for the flow sizes, a configurable TCP/UDP
mix, and explicit control over which flows are heavy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ..rmt.packet import PROTO_TCP, PROTO_UDP

#: address assigner hook: ``(rng, flow_index) -> (src_ip, dst_ip)``
Addresser = Callable[[random.Random, int], tuple[int, int]]


@dataclass(frozen=True)
class Flow:
    """One synthetic flow."""

    src_ip: int
    dst_ip: int
    proto: int
    src_port: int
    dst_port: int
    weight: float  # relative packet share
    heavy: bool = False

    @property
    def five_tuple(self) -> tuple[int, int, int, int, int]:
        return (self.src_ip, self.dst_ip, self.proto, self.src_port, self.dst_port)


@dataclass
class FlowPopulation:
    """A fixed set of flows plus their sampling distribution."""

    flows: list[Flow]
    seed: int

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._weights = [flow.weight for flow in self.flows]

    def sample(self, count: int) -> list[Flow]:
        """Draw ``count`` flows (with replacement) by weight."""
        return self._rng.choices(self.flows, weights=self._weights, k=count)

    def heavy_flows(self) -> list[Flow]:
        return [flow for flow in self.flows if flow.heavy]

    def __len__(self) -> int:
        return len(self.flows)


def make_population(
    *,
    num_flows: int = 4096,
    heavy_flows: int = 100,
    heavy_share: float = 0.6,
    udp_fraction: float = 0.35,
    subnet: int = 0x0A000000,  # 10.0.0.0/16: matches the workload filters
    seed: int = 7,
    addresser: Addresser | None = None,
) -> FlowPopulation:
    """Build a heavy-tailed population.

    ``heavy_share`` of all packets belongs to the ``heavy_flows`` heaviest
    flows (uniformly among them); the rest follows a Zipf-ish tail over
    the light flows — the structure campus traffic showed in the paper's
    dataset.

    ``addresser`` overrides address assignment — the topology-aware
    sources in :mod:`repro.traffic.topo` pass one that draws src/dst from
    per-leaf subnets, so fabric and single-switch benches share this one
    generator (same Zipf weights, protocol mix, and seeding).
    """
    if heavy_flows > num_flows:
        raise ValueError("heavy_flows cannot exceed num_flows")
    rng = random.Random(seed)
    flows: list[Flow] = []
    light = num_flows - heavy_flows
    light_total = 1.0 - heavy_share if heavy_flows else 1.0
    for index in range(num_flows):
        heavy = index < heavy_flows
        if heavy:
            weight = heavy_share / heavy_flows
        else:
            rank = index - heavy_flows + 1
            zipf = 1.0 / rank**1.1
            weight = zipf  # normalized below
        proto = PROTO_UDP if rng.random() < udp_fraction else PROTO_TCP
        if addresser is not None:
            src_ip, dst_ip = addresser(rng, index)
        else:
            src_ip = subnet | rng.randrange(1, 1 << 16)
            dst_ip = subnet | rng.randrange(1, 1 << 16)
        flows.append(
            Flow(
                src_ip=src_ip,
                dst_ip=dst_ip,
                proto=proto,
                src_port=rng.randrange(1024, 65536),
                dst_port=rng.choice([80, 443, 53, 123, 8080, rng.randrange(1024, 65536)]),
                weight=weight,
                heavy=heavy,
            )
        )
    # Normalize the light tail to its share.
    light_sum = sum(f.weight for f in flows if not f.heavy)
    if light and light_sum:
        scale = light_total / light_sum
        flows = [
            f if f.heavy else Flow(*f.five_tuple, weight=f.weight * scale, heavy=False)
            for f in flows
        ]
    return FlowPopulation(flows, seed)
