"""P4runpro reproduction: runtime programmability for RMT switches.

Top-level facade re-exporting the most-used entry points:

    from repro import Controller, PROGRAMS
    controller, dataplane = Controller.with_simulator()
    controller.deploy(PROGRAMS["cache"].source)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .compiler import (
    ChainSpec,
    CompileOptions,
    TargetSpec,
    compile_source,
    emit_p4,
    f1,
    f2,
    f3,
    hierarchical,
)
from .controlplane import Controller, DeployedProgram
from .programs import ALL_PROGRAM_NAMES, PROGRAMS, source_with_memory

__version__ = "1.0.0"

__all__ = [
    "ALL_PROGRAM_NAMES",
    "ChainSpec",
    "CompileOptions",
    "Controller",
    "DeployedProgram",
    "PROGRAMS",
    "TargetSpec",
    "compile_source",
    "emit_p4",
    "f1",
    "f2",
    "f3",
    "hierarchical",
    "source_with_memory",
]
