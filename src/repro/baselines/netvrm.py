"""NetVRM baseline (Zhu et al., NSDI 2022), utility-driven memory model.

NetVRM virtualizes register memory for a *fixed* set of applications
defined at compile time: each application owns a virtual register space
whose physical backing grows and shrinks across reallocation epochs to
maximize aggregate utility (diminishing-returns curves over memory).  The
paper's positioning (§2.2): "NetVRM only supports dynamic memory of fixed
applications which are predefined at compile-time" — it cannot admit new
programs at runtime, the capability P4runpro adds.

The model here captures what the comparison needs:

* utility curves (concave, normalized) per application;
* epoch-based water-filling reallocation maximizing total utility;
* the fixed-application limitation, surfaced as a typed error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class FixedApplicationSetError(RuntimeError):
    """NetVRM cannot admit applications after provisioning."""


@dataclass(frozen=True)
class VRMApplication:
    """One compile-time application with a diminishing-returns utility.

    ``utility(m) = weight * log2(1 + m / scale)`` — the log-shaped curves
    NetVRM's evaluation uses for sketches (more memory, fewer collisions,
    diminishing benefit).
    """

    name: str
    weight: float = 1.0
    scale: float = 1024.0
    min_memory: int = 256

    def utility(self, memory: int) -> float:
        return self.weight * math.log2(1 + memory / self.scale)

    def marginal_utility(self, memory: int, step: int) -> float:
        return self.utility(memory + step) - self.utility(memory)


@dataclass
class NetVRM:
    """The register-memory manager over a fixed application set."""

    total_memory: int
    applications: list[VRMApplication]
    step: int = 256
    provisioned: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        floor = sum(app.min_memory for app in self.applications)
        if floor > self.total_memory:
            raise ValueError("minimum shares exceed total memory")
        self.allocation: dict[str, int] = {
            app.name: app.min_memory for app in self.applications
        }
        self.provisioned = True

    # -- the fixed-set limitation -----------------------------------------------
    def admit(self, application: VRMApplication) -> None:
        """Adding an application after provisioning is exactly what NetVRM
        cannot do (and what motivates P4runpro)."""
        raise FixedApplicationSetError(
            "NetVRM's application set is fixed at compile time; deploying "
            f"{application.name!r} requires reprovisioning the switch"
        )

    # -- epoch reallocation -------------------------------------------------------
    def reallocate(self) -> dict[str, int]:
        """Greedy water-filling: hand out memory in ``step`` chunks to the
        application with the highest marginal utility until exhausted."""
        allocation = {app.name: app.min_memory for app in self.applications}
        remaining = self.total_memory - sum(allocation.values())
        by_name = {app.name: app for app in self.applications}
        while remaining >= self.step:
            best = max(
                self.applications,
                key=lambda app: app.marginal_utility(allocation[app.name], self.step),
            )
            if by_name[best.name].marginal_utility(allocation[best.name], self.step) <= 0:
                break
            allocation[best.name] += self.step
            remaining -= self.step
        self.allocation = allocation
        return dict(allocation)

    def total_utility(self) -> float:
        by_name = {app.name: app for app in self.applications}
        return sum(
            by_name[name].utility(memory) for name, memory in self.allocation.items()
        )

    def utilization(self) -> float:
        return sum(self.allocation.values()) / self.total_memory
