"""Baseline systems the paper compares against: ActiveRMT, FlyMon, and
the conventional compile-time P4 workflow."""

from .activermt import (
    ACTIVE_HEADER_BYTES,
    ActiveAllocationError,
    ActiveProgram,
    ActiveRMTAllocator,
    ActiveRMTTiming,
    AllocationOutcome,
    WORKLOADS,
    goodput_fraction,
)
from .conventional import ConventionalWorkflow, ReprovisionEvent
from .netvrm import FixedApplicationSetError, NetVRM, VRMApplication
from .flymon import (
    FlyMonController,
    FlyMonTiming,
    MeasurementTask,
    TASKS,
    TaskDeployment,
    UNSUPPORTED,
    UnsupportedTaskError,
)
from .profiles import (
    SystemProfile,
    activermt_profile,
    all_profiles,
    flymon_profile,
    p4runpro_profile,
)

__all__ = [
    "ACTIVE_HEADER_BYTES",
    "ActiveAllocationError",
    "ActiveProgram",
    "ActiveRMTAllocator",
    "ActiveRMTTiming",
    "AllocationOutcome",
    "ConventionalWorkflow",
    "FixedApplicationSetError",
    "FlyMonController",
    "FlyMonTiming",
    "MeasurementTask",
    "NetVRM",
    "ReprovisionEvent",
    "SystemProfile",
    "TASKS",
    "TaskDeployment",
    "UNSUPPORTED",
    "VRMApplication",
    "UnsupportedTaskError",
    "WORKLOADS",
    "activermt_profile",
    "all_profiles",
    "flymon_profile",
    "goodput_fraction",
    "p4runpro_profile",
]
