"""Static resource/latency/power profiles for Fig. 10 and Table 2.

P4runpro's numbers are computed from the actually-built simulated data
plane (:func:`p4runpro_profile`).  ActiveRMT and FlyMon are not rebuilt on
the simulator; their profiles are static usage vectors assembled from the
shapes their papers describe (ActiveRMT: 20 memory-instruction stages with
maxed VLIW and per-stage SALUs; FlyMon: 9 egress CMU groups, almost no
ingress logic) and run through the *same* latency/power models — so the
comparison differences come from the configurations, not from different
formulas.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rmt import resources
from ..rmt.resources import ResourceUsage


@dataclass(frozen=True)
class SystemProfile:
    """One system's Fig. 10 / Table 2 row set."""

    name: str
    utilization: dict[str, float]  # percent per resource
    latency_cycles: tuple[int, int, int]  # ingress / egress / total
    power_watts: tuple[float, float, float]
    traffic_limit_load: float


def _profile(name: str, ingress: ResourceUsage, egress: ResourceUsage) -> SystemProfile:
    total = ingress + egress
    total.phv_bits = ingress.phv_bits  # PHV is shared, not per-gress
    util = resources.utilization_report(total)
    latency = resources.latency_cycles(ingress.active_stages, egress.active_stages)
    power_in = resources.power_watts(ingress)
    power_eg = resources.power_watts(egress)
    power = (power_in, power_eg, power_in + power_eg)
    return SystemProfile(
        name, util, latency, power, resources.traffic_limit_load(power[2])
    )


def p4runpro_profile() -> SystemProfile:
    """Computed from the built simulator data plane."""
    from ..dataplane.runpro import P4runproDataPlane

    dataplane = P4runproDataPlane()
    switch = dataplane.switch
    ingress = resources.account_gress(switch, "ingress")
    egress = resources.account_gress(switch, "egress")
    ingress.phv_bits = switch.layout.used_bits()
    return _profile("P4runpro", ingress, egress)


def activermt_profile() -> SystemProfile:
    """ActiveRMT: 20 active-instruction stages (10 per gress), each with a
    wide instruction table, a SALU register array, hash units for address
    computation, and fully used VLIW; plus capsule parse/strip stages."""
    ingress = ResourceUsage(
        sram_blocks=10 * 16 + 8,
        tcam_blocks=10 * 20 + 10,  # instruction tables are wide and deep
        vliw_slots=10 * 32 + 12,
        salus=10,  # one per instruction stage (20 total vs P4runpro's 22)
        hash_units=10 * 2,
        ltids=10 * 2 + 2,
        phv_bits=1350,  # capsule header + program state rides the PHV
        active_stages=12,
    )
    egress = ResourceUsage(
        sram_blocks=10 * 16 + 4,
        tcam_blocks=10 * 16 + 2,
        vliw_slots=10 * 32 + 6,
        salus=10,
        hash_units=10 * 2,
        ltids=10 * 2,
        phv_bits=0,
        active_stages=12,
    )
    return _profile("ActiveRMT", ingress, egress)


def flymon_profile() -> SystemProfile:
    """FlyMon: measurement-only — 9 egress CMU groups (2 SALUs each),
    nothing in ingress beyond basic forwarding."""
    ingress = ResourceUsage(
        sram_blocks=2,
        tcam_blocks=1,
        vliw_slots=4,
        salus=0,
        hash_units=0,
        ltids=2,
        phv_bits=700,
        active_stages=1,
    )
    egress = ResourceUsage(
        sram_blocks=9 * 4 * 16,  # CMU register arrays dominate
        tcam_blocks=9 * 6,
        vliw_slots=9 * 30,
        salus=9 * 4,
        hash_units=9 * 4,
        ltids=9 * 3,
        phv_bits=0,
        active_stages=11,
    )
    return _profile("FlyMon", ingress, egress)


def all_profiles() -> list[SystemProfile]:
    return [p4runpro_profile(), activermt_profile(), flymon_profile()]
