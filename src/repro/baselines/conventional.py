"""The conventional P4 workflow baseline (paper §2.1, §6.2.1, §6.4).

Changing anything under the conventional workflow means: edit the
monolithic P4 program, recompile it with P4C (minutes), reprovision the
switch with the new binary (seconds), and re-enable ports — during which
*all* traffic stops and *every* co-resident program restarts with cleared
state.  The case studies (Fig. 13) compare P4runpro's in-place deployment
against exactly this blackout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..controlplane.timing import ConventionalP4Timing


@dataclass
class ReprovisionEvent:
    """One conventional redeploy and its traffic impact."""

    started_at_s: float
    compile_s: float
    blackout_s: float

    @property
    def function_active_at_s(self) -> float:
        """When the new program starts doing useful work."""
        return self.started_at_s + self.blackout_s


@dataclass
class ConventionalWorkflow:
    """A switch running one monolithic compile-time P4 image."""

    timing: ConventionalP4Timing = field(default_factory=ConventionalP4Timing)
    programs: list[str] = field(default_factory=list)
    events: list[ReprovisionEvent] = field(default_factory=list)

    def deploy(
        self, program: str, p4_loc: int, at_s: float, *, precompiled: bool = True
    ) -> ReprovisionEvent:
        """Add a program: recompile (unless an image was prepared ahead of
        time) and reprovision.  Every already-running program restarts."""
        compile_s = 0.0 if precompiled else (
            self.timing.compile_s_base + self.timing.compile_s_per_loc * p4_loc
        )
        event = ReprovisionEvent(
            started_at_s=at_s + compile_s,
            compile_s=compile_s,
            blackout_s=self.timing.traffic_blackout_s,
        )
        self.programs.append(program)
        self.events.append(event)
        return event

    def remove(self, program: str, at_s: float) -> ReprovisionEvent:
        """Removing a program is also a full reprovision."""
        self.programs.remove(program)
        event = ReprovisionEvent(
            started_at_s=at_s,
            compile_s=0.0,
            blackout_s=self.timing.traffic_blackout_s,
        )
        self.events.append(event)
        return event

    def traffic_available(self, t_s: float) -> bool:
        """Whether the switch forwards traffic at simulated time ``t_s``."""
        for event in self.events:
            if event.started_at_s <= t_s < event.started_at_s + event.blackout_s:
                return False
        return True

    def function_active(self, t_s: float) -> bool:
        """Whether the most recently deployed program is operating."""
        if not self.events:
            return False
        last = self.events[-1]
        return t_s >= last.function_active_at_s
