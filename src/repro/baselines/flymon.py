"""FlyMon baseline (Zheng et al., SIGCOMM 2022), task model.

FlyMon reconfigures *network measurement* tasks at runtime by composing
flow keys and flow attributes on pre-built Composable Measurement Units
(CMUs).  It is tied to the measurement domain: it cannot host forwarding,
caching, or computation programs, which is exactly the generality gap the
paper's comparison highlights.  What it does support, it updates quickly
and with little extra hardware (no per-packet header, no extra stages for
generality) — Table 2 shows it adds no ingress logic at all.

We model the pieces the evaluation needs:

* the supported task set (CMS, BF, SuMax, HLL) with per-task CMU demand
  and reconfiguration entry counts, giving Table-1-style update delays;
* a static resource/latency profile for Fig. 10 / Table 2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

#: FlyMon deploys 9 CMU groups across the egress pipeline.
NUM_CMU_GROUPS = 9
CMUS_PER_GROUP = 2
CMU_MEMORY = 65536  # buckets per CMU


class UnsupportedTaskError(RuntimeError):
    """FlyMon only reconfigures measurement tasks."""


@dataclass(frozen=True)
class MeasurementTask:
    """One reconfigurable measurement task."""

    name: str
    cmus: int
    #: entries reconfigured per deployment (key/attribute/table configs)
    reconfig_entries: int


#: The tasks FlyMon's artifact supports, with entry counts calibrated to
#: its published update delays (Table 1: 27.46 / 32.09 / 22.88 / 17.37 ms).
TASKS: dict[str, MeasurementTask] = {
    "cms": MeasurementTask("cms", cmus=2, reconfig_entries=43),
    "bf": MeasurementTask("bf", cmus=2, reconfig_entries=50),
    "sumax": MeasurementTask("sumax", cmus=2, reconfig_entries=36),
    "hll": MeasurementTask("hll", cmus=1, reconfig_entries=27),
}

#: Programs from Table 1 that FlyMon cannot express at all.
UNSUPPORTED = frozenset(
    {
        "cache",
        "lb",
        "nc",
        "dqacc",
        "firewall",
        "l2fwd",
        "l3route",
        "tunnel",
        "calc",
        "ecn",
        "hh",  # hh needs forwarding-plane reports beyond FlyMon's queries
    }
)


@dataclass
class TaskDeployment:
    task: str
    cmu_group: int
    update_delay_ms: float


@dataclass(frozen=True)
class FlyMonTiming:
    entry_ms: float = 0.62
    base_ms: float = 0.8

    def update_delay_ms(self, task: MeasurementTask) -> float:
        return self.base_ms + task.reconfig_entries * self.entry_ms


class FlyMonController:
    """Runtime reconfiguration of measurement tasks on fixed CMUs."""

    def __init__(self, timing: FlyMonTiming | None = None):
        self.timing = timing or FlyMonTiming()
        self._free_cmus = [CMUS_PER_GROUP] * NUM_CMU_GROUPS
        self.deployed: list[TaskDeployment] = []

    def deploy(self, task_name: str) -> TaskDeployment:
        """Reconfigure a task onto a free CMU group."""
        if task_name in UNSUPPORTED:
            raise UnsupportedTaskError(
                f"FlyMon cannot express {task_name!r}: it is limited to "
                "composable measurement tasks"
            )
        task = TASKS.get(task_name)
        if task is None:
            raise UnsupportedTaskError(f"unknown task {task_name!r}")
        start = time.perf_counter()
        group = next(
            (g for g, free in enumerate(self._free_cmus) if free >= task.cmus), None
        )
        _ = time.perf_counter() - start  # placement is trivial by design
        if group is None:
            raise UnsupportedTaskError("no free CMU group")
        self._free_cmus[group] -= task.cmus
        deployment = TaskDeployment(task_name, group, self.timing.update_delay_ms(task))
        self.deployed.append(deployment)
        return deployment

    def revoke(self, deployment: TaskDeployment) -> None:
        task = TASKS[deployment.task]
        self._free_cmus[deployment.cmu_group] += task.cmus
        self.deployed.remove(deployment)
