"""ActiveRMT baseline (Das & Snoeren, SIGCOMM 2023), reimplemented.

ActiveRMT runs *active programs* — capsule-based instruction sequences
attached to every packet — and its allocator manages only memory: table
matching is simulated by memory loads and comparisons.  The properties the
paper's comparison leans on, all reproduced here:

* **Fair worst-fit memory allocation with elastic remapping**: a new
  program may shrink the memory of existing *elastic* programs down to
  their minimum share; the allocator re-evaluates every resident program
  when it does, so allocation time grows with the number of allocated
  programs (Fig. 7(a): beyond 1 s after hundreds of arrivals).
* **Fixed allocation granularity**: memory is carved in fixed-size blocks;
  finer granularity means more candidate placements to score, so
  allocation gets *slower* as granularity shrinks (Fig. 7(b)) — unlike
  P4runpro, whose solver cost is insensitive to the requested size.
* **Per-packet overhead**: every packet carries an active header (capsule),
  inflating wire size and costing end hosts header attach/strip work —
  the throughput overhead of §6.3 and Table 2.

The allocator below follows the published "least constraint" scheme:
enumerate candidate stage subsets for the program's memory objects, score
each by how much it constrains future allocations (a pass over all
resident programs), and pick the least constraining one.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

#: ActiveRMT's pipeline shape: 20 stages usable for active instructions.
NUM_STAGES = 20
STAGE_MEMORY = 65536  # 32-bit buckets per stage

#: Per-packet active header (capsule) bytes attached by the end host.
ACTIVE_HEADER_BYTES = 24


class ActiveAllocationError(RuntimeError):
    """No feasible memory allocation for the active program."""


@dataclass(frozen=True)
class ActiveProgram:
    """An active program's resource demand."""

    name: str
    instructions: int
    #: per-object memory demand, in buckets
    memory_objects: tuple[int, ...]
    #: elastic programs tolerate shrinking to min_share buckets per object
    elastic: bool = False
    min_share: int = 64


#: Active-program models of the paper's workload programs (cache is the
#: elastic one — ActiveRMT "treats the program cache as an elastic
#: program, allowing its memory to be subtracted for new programs", §6.2.2).
WORKLOADS: dict[str, ActiveProgram] = {
    "cache": ActiveProgram("cache", instructions=30, memory_objects=(256,), elastic=True),
    "lb": ActiveProgram("lb", instructions=22, memory_objects=(256, 256)),
    "hh": ActiveProgram("hh", instructions=38, memory_objects=(256, 256, 256, 256)),
}


@dataclass
class Residency:
    """One allocated program instance."""

    program: ActiveProgram
    #: (stage, base, size) per memory object
    placements: list[tuple[int, int, int]] = field(default_factory=list)


@dataclass
class AllocationOutcome:
    program: str
    success: bool
    delay_s: float
    stages: tuple[int, ...] = ()
    remapped_programs: int = 0


class ActiveRMTAllocator:
    """Fair worst-fit allocator with elastic remapping."""

    def __init__(self, *, granularity: int = 256, memory_size: int = STAGE_MEMORY):
        if granularity <= 0:
            raise ValueError("granularity must be positive")
        self.granularity = granularity
        self.blocks_per_stage = memory_size // granularity
        self.memory_size = memory_size
        self.free_blocks = [self.blocks_per_stage] * NUM_STAGES
        #: per-stage block occupancy bitmaps: placement scans these for a
        #: contiguous first-fit run, so finer granularity (more blocks)
        #: genuinely costs more search — the Fig. 7(b) effect
        self._bitmap: list[list[bool]] = [
            [False] * self.blocks_per_stage for _ in range(NUM_STAGES)
        ]
        self.resident: list[Residency] = []
        #: stage -> [(residency, size)] index so subset scoring only walks
        #: the residents actually sharing a candidate stage
        self._stage_residents: list[list[tuple[Residency, int]]] = [
            [] for _ in range(NUM_STAGES)
        ]

    # -- public API ----------------------------------------------------------
    def allocate(self, program: ActiveProgram) -> AllocationOutcome:
        """Place a program; measured wall time is the allocation delay."""
        start = time.perf_counter()
        blocks_needed = [self._blocks(size) for size in program.memory_objects]
        placement = self._least_constraint_placement(blocks_needed)
        remapped = 0
        if placement is None:
            remapped = self._remap_elastic(sum(blocks_needed))
            placement = self._least_constraint_placement(blocks_needed)
        elapsed = time.perf_counter() - start
        if placement is None:
            return AllocationOutcome(program.name, False, elapsed)
        subset, offsets = placement
        residency = Residency(program)
        for stage, blocks, offset in zip(subset, blocks_needed, offsets):
            self.free_blocks[stage] -= blocks
            for block in range(offset, offset + blocks):
                self._bitmap[stage][block] = True
            base = offset * self.granularity
            residency.placements.append((stage, base, blocks * self.granularity))
            self._stage_residents[stage].append((residency, blocks * self.granularity))
        self.resident.append(residency)
        return AllocationOutcome(
            program.name, True, elapsed, tuple(subset), remapped
        )

    def memory_utilization(self) -> float:
        used = sum(self.blocks_per_stage - free for free in self.free_blocks)
        return used / (self.blocks_per_stage * NUM_STAGES)

    def program_count(self) -> int:
        return len(self.resident)

    # -- scheme internals -------------------------------------------------------
    def _blocks(self, size: int) -> int:
        return -(-size // self.granularity)

    def _first_fit(self, stage: int, need: int) -> int | None:
        """Scan the stage's block bitmap for a contiguous free run.

        This per-block scan is where fixed-granularity allocation pays:
        finer granularity means more blocks to walk, and a fuller stage
        means longer occupied prefixes — both measured by Fig. 7.
        """
        bitmap = self._bitmap[stage]
        run = 0
        for index, used in enumerate(bitmap):
            run = 0 if used else run + 1
            if run == need:
                return index - need + 1
        return None

    def _least_constraint_placement(
        self, blocks_needed: list[int]
    ) -> tuple[tuple[int, ...], tuple[int, ...]] | None:
        """Enumerate ordered stage subsets; pick the least-constraining one.

        Memory objects must land on distinct stages in instruction order
        (ActiveRMT's program order maps to increasing stages).  The score
        of a candidate is how tightly it squeezes both the remaining free
        pool and the resident programs' headroom — evaluating it walks all
        residents, which is what makes allocation slow down as programs
        accumulate.
        """
        num_objects = len(blocks_needed)
        if num_objects == 0:
            return (), ()
        best: tuple[tuple[int, ...], tuple[int, ...]] | None = None
        best_score = float("inf")
        stages = range(NUM_STAGES)
        for subset in itertools.combinations(stages, num_objects):
            feasible = all(
                self.free_blocks[stage] >= need
                for stage, need in zip(subset, blocks_needed)
            )
            if not feasible:
                continue
            offsets = []
            for stage, need in zip(subset, blocks_needed):
                offset = self._first_fit(stage, need)
                if offset is None:
                    break  # fragmented: counted blocks are not contiguous
                offsets.append(offset)
            if len(offsets) != num_objects:
                continue
            score = 0.0
            for stage, need in zip(subset, blocks_needed):
                remaining = self.free_blocks[stage] - need
                # Worst-fit flavour: prefer leaving large runs (low score
                # for stages with plenty of room left).
                score += 1.0 / (1.0 + remaining)
                # Constraint on residents: every resident with memory on
                # this stage loses elastic headroom.  This walk is what
                # makes ActiveRMT's allocation slow down as programs pile
                # up (Fig. 7(a)).
                for residency, r_size in self._stage_residents[stage]:
                    headroom = r_size - residency.program.min_share
                    score += 0.001 / (1.0 + headroom)
            if score < best_score:
                best_score = score
                best = (subset, tuple(offsets))
        return best

    def _remap_elastic(self, blocks_wanted: int) -> int:
        """Shrink elastic residents toward their fair share to free blocks.

        Returns how many resident programs were remapped.  This is the
        expensive path: it rewrites placements (and, on hardware, migrates
        memory), touching every elastic program.
        """
        remapped = 0
        freed = 0
        for residency in self.resident:
            if not residency.program.elastic:
                continue
            new_placements = []
            for stage, base, size in residency.placements:
                min_size = residency.program.min_share
                shrinkable = (size - min_size) // self.granularity
                if shrinkable > 0 and freed < blocks_wanted:
                    take = min(shrinkable, blocks_wanted - freed)
                    self.free_blocks[stage] += take
                    # Release the trailing blocks of this placement.
                    end_block = (base + size) // self.granularity
                    for block in range(end_block - take, end_block):
                        self._bitmap[stage][block] = False
                    size -= take * self.granularity
                    freed += take
                    remapped += 1
                new_placements.append((stage, base, size))
            residency.placements = new_placements
            if freed >= blocks_wanted:
                break
        return remapped


# -- timing / overhead models ---------------------------------------------------
@dataclass(frozen=True)
class ActiveRMTTiming:
    """Update-delay model: instruction-table entries plus memory-remap
    migration dominate; calibrated to Table 1's ~200 ms updates."""

    entry_ms: float = 0.62
    instruction_entries_factor: int = 9  # entries per active instruction
    remap_ms_per_program: float = 14.0
    base_ms: float = 8.0

    def update_delay_ms(self, program: ActiveProgram, remapped_programs: int = 0) -> float:
        entries = program.instructions * self.instruction_entries_factor
        return (
            self.base_ms
            + entries * self.entry_ms
            + remapped_programs * self.remap_ms_per_program
        )


def goodput_fraction(packet_size: int) -> float:
    """Fraction of wire bandwidth left for payload once every packet
    carries the active header (the end-host/throughput overhead, §6.3)."""
    return packet_size / (packet_size + ACTIVE_HEADER_BYTES)
