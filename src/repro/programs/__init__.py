"""The Table-1 program library."""

from .library import (
    ALL_PROGRAM_NAMES,
    PROGRAMS,
    ProgramInfo,
    WORKLOAD_PROGRAMS,
    get,
    source_loc,
    source_with_memory,
)

__all__ = [
    "ALL_PROGRAM_NAMES",
    "PROGRAMS",
    "ProgramInfo",
    "WORKLOAD_PROGRAMS",
    "get",
    "source_loc",
    "source_with_memory",
]
