"""The 15 P4runpro programs of Table 1 (paper §6.1).

``cache``, ``lb``, and ``hh`` are transcribed from the paper's Figures 2,
16, and 17; the rest are written against the referenced literature using
only the Table-3 primitive set.  Two paper listings needed repair to be
executable under P4runpro's branch semantics (primitives following a
BRANCH only run when *no* case matched):

* ``lb`` (Fig. 16) reads the DIP pool *after* the port case blocks, which
  would never execute for matched packets — the DIP read/modify is moved
  into each port case (they align to one depth, so resource cost is the
  same);
* the 64-bit cache key halves follow our packet model (key1 = high word in
  ``sar``, key2 = low word in ``mar``).

Each entry records the paper's Table-1 numbers (P4 LoC, P4runpro LoC,
update delay, prior-work delay) so the Table-1 benchmark can print
paper-vs-measured side by side.
"""

from __future__ import annotations

import re
from dataclasses import dataclass


@dataclass(frozen=True)
class ProgramInfo:
    """One Table-1 program plus its paper-reported numbers."""

    name: str
    source: str
    description: str
    #: Table 1 columns
    paper_runpro_loc: int
    paper_p4_loc: int
    paper_update_ms: float
    prior_update_ms: float | None = None
    prior_system: str | None = None
    #: pre-order index of the BRANCH whose case blocks are elastic
    #: (lookup-style entries an operator grows at runtime), or None
    elastic_branch: int | None = None
    #: declared memory identifiers, in source order
    memories: tuple[str, ...] = ()
    #: does the program carry forwarding primitives (ingress-RPB-bound)?
    has_forwarding: bool = True


# ---------------------------------------------------------------------------
# Paper programs (Figures 2, 16, 17)
# ---------------------------------------------------------------------------

CACHE_SOURCE = """
@ mem1 256
program cache(
    /*filtering traffic*/
    <hdr.udp.dst_port, 7777, 0xffff>) {
    EXTRACT(hdr.nc.op, har);   //get opcode
    EXTRACT(hdr.nc.key1, sar); //get key[32:63]
    EXTRACT(hdr.nc.key2, mar); //get key[0:31]
    BRANCH:
    /*cache hit and cache read*/
    case(<har, 1, 0xff>, <sar, 0x0, 0xffffffff>, <mar, 0x8888, 0xffffffff>) {
        RETURN;            //return to client
        LOADI(mar, 128);   //load address
        MEMREAD(mem1);     //read cache
        MODIFY(hdr.nc.value, sar);
    }
    /*cache hit and cache write*/
    case(<har, 2, 0xff>, <sar, 0x0, 0xffffffff>, <mar, 0x8888, 0xffffffff>) {
        DROP;              //drop the packet
        LOADI(mar, 128);   //load address
        EXTRACT(hdr.nc.val, sar); //get value
        MEMWRITE(mem1);    //write cache
    }
    FORWARD(32); //cache miss
}
"""

LB_SOURCE = """
@ dip_pool 256
@ port_pool 256
program lb(
    /*filtering traffic*/
    <hdr.ipv4.dst, 0x0a000000, 0xffff0000>) {
    HASH_5_TUPLE_MEM(port_pool); //locate bucket
    MEMREAD(port_pool);          //get egress port
    BRANCH:
    case(<sar, 0, 0xffffffff>) {
        FORWARD(0);
        MEMREAD(dip_pool);          //get DIP
        MODIFY(hdr.ipv4.dst, sar);  //write DIP
    }
    case(<sar, 1, 0xffffffff>) {
        FORWARD(1);
        MEMREAD(dip_pool);
        MODIFY(hdr.ipv4.dst, sar);
    }
}
"""

HH_SOURCE = """
@ mem_cms_row1 256
@ mem_cms_row2 256
@ mem_bf_row1 256
@ mem_bf_row2 256
program hh(
    /*filtering traffic*/
    <hdr.ipv4.src, 0x0a000000, 0xffff0000>) {
    LOADI(sar, 1);
    HASH_5_TUPLE_MEM(mem_cms_row1);
    MEMADD(mem_cms_row1); //count packet
    LOADI(har, 1024);     //set threshold
    MIN(har, sar);        //compare with threshold
    LOADI(sar, 1);
    HASH_5_TUPLE_MEM(mem_cms_row2);
    MEMADD(mem_cms_row2);
    MIN(har, sar);
    BRANCH:
    /*flow count exceeds the threshold in both rows*/
    case(<har, 1024, 0xffffffff>) {
        LOADI(sar, 1);
        HASH_5_TUPLE_MEM(mem_bf_row1);
        MEMOR(mem_bf_row1); //check existence
        BRANCH:
        /*exists in row 1: check row 2 to rule out collision*/
        case(<sar, 1, 0xffffffff>) {
            LOADI(sar, 1);
            HASH_5_TUPLE_MEM(mem_bf_row2);
            MEMOR(mem_bf_row2); //check another
            BRANCH:
            case(<sar, 0, 0xffffffff>) {
                REPORT; //report this packet
            };
        };
        /*not in row 1: first detection*/
        case(<sar, 0, 0xffffffff>) {
            LOADI(sar, 1);
            HASH_5_TUPLE_MEM(mem_bf_row2);
            MEMOR(mem_bf_row2); //update another
            REPORT; //report this packet
        };
    };
}
"""

# ---------------------------------------------------------------------------
# Programs written from the referenced literature
# ---------------------------------------------------------------------------

NC_SOURCE = """
@ nc_cache 256
@ nc_cms1 256
@ nc_cms2 256
@ nc_bf 256
program nc(
    <hdr.udp.dst_port, 7777, 0xffff>) {
    EXTRACT(hdr.nc.op, har);
    EXTRACT(hdr.nc.key1, sar);
    EXTRACT(hdr.nc.key2, mar);
    BRANCH:
    /*cache hit, read*/
    case(<har, 1, 0xff>, <sar, 0x0, 0xffffffff>, <mar, 0x8888, 0xffffffff>) {
        RETURN;
        LOADI(mar, 128);
        MEMREAD(nc_cache);
        MODIFY(hdr.nc.value, sar);
    }
    /*cache hit, write*/
    case(<har, 2, 0xff>, <sar, 0x0, 0xffffffff>, <mar, 0x8888, 0xffffffff>) {
        DROP;
        LOADI(mar, 128);
        EXTRACT(hdr.nc.val, sar);
        MEMWRITE(nc_cache);
    }
    /*cache miss: count key popularity (NetCache hot-key statistics)*/
    FORWARD(32);
    MOVE(har, mar);          //har = key[0:31]
    LOADI(sar, 1);
    HASH_MEM(nc_cms1);
    MEMADD(nc_cms1);
    LOADI(har, 128);         //hot threshold
    MIN(har, sar);
    EXTRACT(hdr.nc.key2, mar);
    LOADI(sar, 1);
    HASH_5_TUPLE_MEM(nc_cms2);
    MEMADD(nc_cms2);
    MIN(har, sar);
    BRANCH:
    /*hot key: report once via bloom filter*/
    case(<har, 128, 0xffffffff>) {
        LOADI(sar, 1);
        HASH_5_TUPLE_MEM(nc_bf);
        MEMOR(nc_bf);
        BRANCH:
        case(<sar, 0, 0xffffffff>) {
            REPORT;
        };
    };
}
"""

DQACC_SOURCE = """
@ dq_agg 256
program dqacc(
    /*query packets*/
    <hdr.udp.dst_port, 7777, 0xffff>) {
    EXTRACT(hdr.nc.key2, har);  //query group key
    HASH_MEM(dq_agg);           //locate aggregation bucket
    EXTRACT(hdr.nc.val, sar);   //partial value
    MEMADD(dq_agg);             //in-network aggregation
    MODIFY(hdr.nc.val, sar);    //piggyback running sum
    FORWARD(32);
}
"""

FIREWALL_SOURCE = """
@ fw_flows 256
program firewall(
    <hdr.ipv4.ttl, 0, 0x0>) {
    EXTRACT(hdr.ipv4.src, har);
    EXTRACT(hdr.ipv4.dst, sar);
    ADD(har, sar);      //direction-symmetric host-pair key
    HASH_MEM(fw_flows); //single hash unit: both directions hit one bucket
    BRANCH:
    /*inbound to the protected 10.0/16 (dst is internal): admit only if
      the protected host initiated contact*/
    case(<sar, 0x0a000000, 0xffff0000>) {
        MEMREAD(fw_flows);
        BRANCH:
        case(<sar, 1, 0xffffffff>) {
            FORWARD(0);
        }
        DROP;
    }
    /*outbound: record the host pair*/
    LOADI(sar, 1);
    MEMWRITE(fw_flows);
    FORWARD(1);
}
"""

L2FWD_SOURCE = """
program l2fwd(
    <hdr.eth.etype, 0, 0x0>) {
    EXTRACT(hdr.eth.dst, har);
    BRANCH:
    case(<har, 0x00000001, 0xffffffff>) {
        FORWARD(1);
    }
    case(<har, 0x00000002, 0xffffffff>) {
        FORWARD(2);
    }
    FORWARD(0); //default port (flood stand-in)
}
"""

L3ROUTE_SOURCE = """
program l3route(
    <hdr.ipv4.ttl, 0, 0x0>) {
    EXTRACT(hdr.ipv4.dst, har);
    BRANCH:
    case(<har, 0x0a000000, 0xffff0000>) {
        FORWARD(1);
    }
    case(<har, 0x0a010000, 0xffff0000>) {
        FORWARD(2);
    }
}
"""

TUNNEL_SOURCE = """
program tunnel(
    <hdr.tun.id, 0, 0x0>) {
    EXTRACT(hdr.tun.id, har);
    BRANCH:
    case(<har, 100, 0xffffffff>) {
        FORWARD(1);
    }
    case(<har, 200, 0xffffffff>) {
        FORWARD(2);
    }
}
"""

CALC_SOURCE = """
program calc(
    <hdr.udp.dst_port, 8888, 0xffff>) {
    EXTRACT(hdr.calc.op, har);
    EXTRACT(hdr.calc.a, sar);
    EXTRACT(hdr.calc.b, mar);
    BRANCH:
    case(<har, 1, 0xff>) {
        RETURN;
        ADD(sar, mar);
        MODIFY(hdr.calc.result, sar);
    }
    case(<har, 2, 0xff>) {
        RETURN;
        SUB(sar, mar);
        MODIFY(hdr.calc.result, sar);
    }
    case(<har, 3, 0xff>) {
        RETURN;
        AND(sar, mar);
        MODIFY(hdr.calc.result, sar);
    }
    case(<har, 4, 0xff>) {
        RETURN;
        OR(sar, mar);
        MODIFY(hdr.calc.result, sar);
    }
    case(<har, 5, 0xff>) {
        RETURN;
        XOR(sar, mar);
        MODIFY(hdr.calc.result, sar);
    }
    DROP; //unknown opcode
}
"""

ECN_SOURCE = """
program ecn(
    <hdr.ipv4.ecn, 1, 0x3>) {
    EXTRACT(meta.queue_depth, har);
    LOADI(sar, 1000); //marking threshold
    MAX(sar, har);
    BRANCH:
    case(<sar, 1000, 0xffffffff>) {
        FORWARD(0); //below threshold: pass
    }
    LOADI(har, 3);
    MODIFY(hdr.ipv4.ecn, har); //mark CE
    FORWARD(0);
}
"""

CMS_SOURCE = """
@ cms_row1 256
@ cms_row2 256
program cms(
    <hdr.ipv4.ttl, 0, 0x0>) {
    LOADI(sar, 1);
    HASH_5_TUPLE_MEM(cms_row1);
    MEMADD(cms_row1);
    LOADI(sar, 1);
    HASH_5_TUPLE_MEM(cms_row2);
    MEMADD(cms_row2);
    FORWARD(0);
}
"""

BF_SOURCE = """
@ bf_row1 256
@ bf_row2 256
program bf(
    <hdr.ipv4.ttl, 0, 0x0>) {
    FORWARD(0);
    LOADI(sar, 1);
    HASH_5_TUPLE_MEM(bf_row1);
    MEMOR(bf_row1);
    LOADI(sar, 1);
    HASH_5_TUPLE_MEM(bf_row2);
    MEMOR(bf_row2);
}
"""

SUMAX_SOURCE = """
@ sumax_row1 256
@ sumax_row2 256
program sumax(
    <hdr.ipv4.ttl, 0, 0x0>) {
    EXTRACT(hdr.ipv4.len, sar);
    HASH_5_TUPLE_MEM(sumax_row1);
    MEMMAX(sumax_row1);
    EXTRACT(hdr.ipv4.len, sar);
    HASH_5_TUPLE_MEM(sumax_row2);
    MEMMAX(sumax_row2);
    FORWARD(0);
}
"""


def _hll_source() -> str:
    """HyperLogLog with a leading-zero rank BRANCH and a per-rank
    estimator update, giving the large inelastic case-block population
    that dominates HLL's update delay in Table 1."""
    header = """
@ hll_regs 64
@ hll_sum 256
program hll(
    <hdr.ipv4.ttl, 0, 0x0>) {
    HASH_5_TUPLE;
    MOVE(mar, har);  //mar = hash
    ANDI(mar, 63);   //register index = low 6 bits
    BRANCH:
"""
    cases = []
    # Rank of the first set bit among hash bits 15..6 (10 usable bits).
    for rank in range(1, 11):
        bit = 16 - rank
        value = 1 << bit
        mask = ((1 << rank) - 1) << (17 - rank - 1) if rank > 1 else 1 << 15
        mask = 0
        for j in range(rank):
            mask |= 1 << (15 - j)
        weight = 1 << (16 - rank)  # fixed-point 2^-rank estimator weight
        cases.append(
            f"""    case(<har, {value:#x}, {mask:#x}>) {{
        LOADI(sar, {rank});
        MEMMAX(hll_regs);
        BRANCH:
        case(<sar, {rank}, 0xffffffff>) {{
            LOADI(mar, 0);
            LOADI(sar, {weight});
            MEMADD(hll_sum);
        }};
    }};
"""
        )
    # All ten bits zero: saturated rank.
    zero_mask = 0
    for j in range(10):
        zero_mask |= 1 << (15 - j)
    cases.append(
        f"""    case(<har, 0x0, {zero_mask:#x}>) {{
        LOADI(sar, 11);
        MEMMAX(hll_regs);
        BRANCH:
        case(<sar, 11, 0xffffffff>) {{
            LOADI(mar, 0);
            LOADI(sar, {1 << 5});
            MEMADD(hll_sum);
        }};
    }};
"""
    )
    return header + "".join(cases) + "}\n"


HLL_SOURCE = _hll_source()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

PROGRAMS: dict[str, ProgramInfo] = {
    info.name: info
    for info in (
        ProgramInfo(
            "cache",
            CACHE_SOURCE,
            "In-network cache (NetCache's cache component)",
            paper_runpro_loc=26,
            paper_p4_loc=77,
            paper_update_ms=11.47,
            prior_update_ms=194.30,
            prior_system="ActiveRMT",
            elastic_branch=0,
            memories=("mem1",),
        ),
        ProgramInfo(
            "lb",
            LB_SOURCE,
            "Stateless load balancer (Cheetah-style)",
            paper_runpro_loc=15,
            paper_p4_loc=63,
            paper_update_ms=10.63,
            prior_update_ms=225.46,
            prior_system="ActiveRMT",
            elastic_branch=0,
            memories=("dip_pool", "port_pool"),
        ),
        ProgramInfo(
            "hh",
            HH_SOURCE,
            "Heavy-hitter detector (2-row CMS + 2-row BF)",
            paper_runpro_loc=36,
            paper_p4_loc=109,
            paper_update_ms=30.64,
            prior_update_ms=228.70,
            prior_system="ActiveRMT",
            elastic_branch=None,
            memories=("mem_cms_row1", "mem_cms_row2", "mem_bf_row1", "mem_bf_row2"),
        ),
        ProgramInfo(
            "nc",
            NC_SOURCE,
            "NetCache: cache + hot-key heavy-hitter statistics",
            paper_runpro_loc=60,
            paper_p4_loc=152,
            paper_update_ms=40.06,
            elastic_branch=0,
            memories=("nc_cache", "nc_cms1", "nc_cms2", "nc_bf"),
        ),
        ProgramInfo(
            "dqacc",
            DQACC_SOURCE,
            "DQAcc: in-network database query (aggregation) acceleration",
            paper_runpro_loc=16,
            paper_p4_loc=137,
            paper_update_ms=15.45,
            elastic_branch=None,
            memories=("dq_agg",),
        ),
        ProgramInfo(
            "firewall",
            FIREWALL_SOURCE,
            "Stateful firewall: outbound-initiated flows admit inbound",
            paper_runpro_loc=22,
            paper_p4_loc=88,
            paper_update_ms=19.70,
            elastic_branch=None,
            memories=("fw_flows",),
        ),
        ProgramInfo(
            "l2fwd",
            L2FWD_SOURCE,
            "L2 forwarding (MAC table)",
            paper_runpro_loc=10,
            paper_p4_loc=33,
            paper_update_ms=2.98,
            elastic_branch=0,
        ),
        ProgramInfo(
            "l3route",
            L3ROUTE_SOURCE,
            "L3 routing (prefix table via ternary masks)",
            paper_runpro_loc=6,
            paper_p4_loc=34,
            paper_update_ms=1.88,
            elastic_branch=0,
        ),
        ProgramInfo(
            "tunnel",
            TUNNEL_SOURCE,
            "Tunnel label switching",
            paper_runpro_loc=6,
            paper_p4_loc=51,
            paper_update_ms=2.38,
            elastic_branch=0,
        ),
        ProgramInfo(
            "calc",
            CALC_SOURCE,
            "In-network calculator (5 ALU opcodes, reflected results)",
            paper_runpro_loc=26,
            paper_p4_loc=53,
            paper_update_ms=26.74,
            elastic_branch=None,
        ),
        ProgramInfo(
            "ecn",
            ECN_SOURCE,
            "ECN marking on queue depth",
            paper_runpro_loc=9,
            paper_p4_loc=18,
            paper_update_ms=4.84,
            elastic_branch=None,
        ),
        ProgramInfo(
            "cms",
            CMS_SOURCE,
            "Count-Min Sketch (2 rows)",
            paper_runpro_loc=14,
            paper_p4_loc=78,
            paper_update_ms=14.21,
            prior_update_ms=27.46,
            prior_system="FlyMon",
            elastic_branch=None,
            memories=("cms_row1", "cms_row2"),
        ),
        ProgramInfo(
            "bf",
            BF_SOURCE,
            "Bloom filter (2 rows) with new-flow reports",
            paper_runpro_loc=14,
            paper_p4_loc=78,
            paper_update_ms=12.51,
            prior_update_ms=32.09,
            prior_system="FlyMon",
            elastic_branch=None,
            memories=("bf_row1", "bf_row2"),
        ),
        ProgramInfo(
            "sumax",
            SUMAX_SOURCE,
            "SuMax sketch (per-flow maxima, 2 rows)",
            paper_runpro_loc=14,
            paper_p4_loc=80,
            paper_update_ms=19.94,
            prior_update_ms=22.88,
            prior_system="FlyMon",
            elastic_branch=None,
            memories=("sumax_row1", "sumax_row2"),
        ),
        ProgramInfo(
            "hll",
            HLL_SOURCE,
            "HyperLogLog cardinality estimator (rank cases + estimator sum)",
            paper_runpro_loc=167,
            paper_p4_loc=180,
            paper_update_ms=166.90,
            prior_update_ms=17.37,
            prior_system="FlyMon",
            elastic_branch=None,
            memories=("hll_regs", "hll_sum"),
            has_forwarding=False,
        ),
    )
}

#: The workload names used throughout §6.2.
WORKLOAD_PROGRAMS = ("cache", "lb", "hh")
ALL_PROGRAM_NAMES = tuple(PROGRAMS)


def get(name: str) -> ProgramInfo:
    try:
        return PROGRAMS[name]
    except KeyError as exc:
        raise KeyError(f"unknown program {name!r}; known: {sorted(PROGRAMS)}") from exc


_MEM_DECL_RE = re.compile(r"^(@\s+\w+)\s+\d+\s*$", re.MULTILINE)


def source_with_memory(name: str, buckets: int) -> str:
    """Rewrite a program's ``@`` declarations to request ``buckets`` each.

    Used by the granularity/capacity sweeps (Fig. 7(b), Fig. 9); the
    requested size must be a power of two.
    """
    if buckets & (buckets - 1):
        raise ValueError("memory size must be a power of two")
    info = get(name)
    return _MEM_DECL_RE.sub(rf"\1 {buckets}", info.source)


def source_loc(source: str) -> int:
    """LoC the way Table 1 counts: non-blank, non-comment-only lines."""
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith(("//", "/*")) and not stripped.rstrip("*/ ").rstrip():
            # A pure comment line like "/*filtering traffic*/".
            if stripped.startswith("/*") and stripped.endswith("*/"):
                continue
            if stripped.startswith("//"):
                continue
        if stripped in ("}", "};", "{"):
            continue
        count += 1
    return count
