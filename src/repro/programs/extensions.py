"""Extension programs beyond the paper's Table 1.

These exercise the reproduction's extensions and double as reusable
building blocks for the examples:

* ``mlagg`` — SwitchML-style in-network gradient aggregation, enabled by
  the MULTICAST primitive (the paper's §7 observation that "implementing
  the simple aggregation logic in SwitchML requires only modifying
  P4runpro to support multicast");
* ``ratelimit`` — a per-flow packet-budget rate limiter (the multi-tenant
  example's tenant B);
* ``syncount`` — TCP SYN counter with flood reporting, a classic security
  monitor composed from the standard primitive set.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExtensionProgram:
    name: str
    source: str
    description: str
    #: multicast group ids the program expects the operator to configure
    multicast_groups: tuple[int, ...] = ()


def make_mlagg(
    *, num_workers: int = 4, group: int = 1, port: int = 9999
) -> ExtensionProgram:
    """Parameterized in-network aggregation: sums ``num_workers`` partial
    values per chunk, absorbing intermediates and multicasting the final
    aggregate to ``group``.  Requires a parser that extracts the nc header
    on ``port`` (``default_parse_machine(nc_port=port)``)."""
    source = f"""
@ agg_val 256
@ agg_cnt 256
program mlagg(
    <hdr.udp.dst_port, {port}, 0xffff>) {{
    EXTRACT(hdr.nc.key2, har);  //chunk index
    HASH_MEM(agg_val);          //aggregation slot
    EXTRACT(hdr.nc.val, sar);   //worker's partial value
    MEMADD(agg_val);            //sum in-network
    MODIFY(hdr.nc.val, sar);    //piggyback the running sum
    LOADI(sar, 1);
    MEMADD(agg_cnt);            //arrival counter
    BRANCH:
    case(<sar, {num_workers}, 0xffffffff>) {{
        MULTICAST({group});     //round complete: broadcast the aggregate
    }}
    DROP;                       //absorb intermediate arrivals
}}
"""
    return ExtensionProgram(
        "mlagg",
        source,
        f"in-network aggregation over {num_workers} workers (MULTICAST ext.)",
        multicast_groups=(group,),
    )


def make_ratelimit(*, budget: int = 50, port: int = 9000, egress: int = 4) -> ExtensionProgram:
    """Per-flow packet budget: flows on UDP ``port`` are dropped once they
    exceed ``budget`` packets (counters reset by the control plane)."""
    source = f"""
@ rl_counts 256
program ratelimit(
    <hdr.udp.dst_port, {port}, 0xffff>) {{
    LOADI(sar, 1);
    HASH_5_TUPLE_MEM(rl_counts);
    MEMADD(rl_counts);          //per-flow packet count
    LOADI(har, {budget});       //budget
    MIN(har, sar);
    BRANCH:
    case(<har, {budget}, 0xffffffff>) {{
        DROP;                   //over budget
    }}
    FORWARD({egress});
}}
"""
    return ExtensionProgram(
        "ratelimit", source, f"per-flow rate limiter (budget {budget})"
    )


def make_syncount(*, threshold: int = 64, report_port_mask: int = 0x2) -> ExtensionProgram:
    """SYN-flood monitor: counts TCP SYNs per destination and reports a
    destination once its SYN count crosses ``threshold`` (BF-deduped)."""
    source = f"""
@ syn_counts 256
@ syn_seen 256
program syncount(
    <hdr.tcp.flags, {report_port_mask}, 0x2>) {{
    EXTRACT(hdr.ipv4.dst, har); //victim candidate
    HASH_MEM(syn_counts);
    LOADI(sar, 1);
    MEMADD(syn_counts);
    LOADI(har, {threshold});
    MIN(har, sar);
    BRANCH:
    case(<har, {threshold}, 0xffffffff>) {{
        EXTRACT(hdr.ipv4.dst, har);
        HASH_MEM(syn_seen);
        LOADI(sar, 1);
        MEMOR(syn_seen);        //first report only
        BRANCH:
        case(<sar, 0, 0xffffffff>) {{
            REPORT;
        }};
    }};
    FORWARD(0);
}}
"""
    return ExtensionProgram(
        "syncount", source, f"TCP SYN-flood monitor (threshold {threshold})"
    )


EXTENSION_PROGRAMS = {
    "mlagg": make_mlagg(),
    "ratelimit": make_ratelimit(),
    "syncount": make_syncount(),
}
