"""Analysis helpers shared by tests and benchmarks."""

from .experiments import (
    CapacityResult,
    EpochResult,
    ObjectiveComparison,
    compare_objectives,
    continuous_deployment,
    pick_program,
    program_capacity,
)
from .metrics import f1_score, moving_average, precision_recall
from .sketches import (
    bf_contains,
    bf_false_positive_rate,
    cms_error_bound,
    cms_estimate,
    hll_estimate,
    hll_standard_error,
    sumax_query,
)

__all__ = [
    "CapacityResult",
    "EpochResult",
    "ObjectiveComparison",
    "compare_objectives",
    "continuous_deployment",
    "bf_contains",
    "bf_false_positive_rate",
    "cms_error_bound",
    "cms_estimate",
    "f1_score",
    "hll_estimate",
    "hll_standard_error",
    "moving_average",
    "pick_program",
    "precision_recall",
    "program_capacity",
    "sumax_query",
]
