"""Control-plane decoders for the in-switch measurement programs.

The data plane maintains raw sketch state (CMS counters, Bloom bits, SuMax
maxima, HLL rank registers); turning that state into answers — frequency
estimates, membership, cardinality — is the control plane's job, fed by
``Controller.snapshot_memory``.  These decoders implement the standard
estimators from the papers the programs cite (Cormode-Muthukrishnan CMS,
Flajolet et al. HyperLogLog).
"""

from __future__ import annotations

import math

from ..rmt.hashing import HashUnit

#: The CRC variants the entry generator assigns to a program's hash ops in
#: depth order (mirrors dataplane.constants.HASH_ALGORITHM_CYCLE).
ROW_ALGORITHMS = ("crc_16_buypass", "crc_16_mcrf4xx", "crc_aug_ccitt", "crc_16_dds_110")


def _row_units(rows: int) -> list[HashUnit]:
    return [HashUnit(ROW_ALGORITHMS[i % len(ROW_ALGORITHMS)]) for i in range(rows)]


# ---------------------------------------------------------------------------
# Count-Min Sketch
# ---------------------------------------------------------------------------
def cms_estimate(
    rows: list[list[int]], five_tuple: tuple[int, int, int, int, int]
) -> int:
    """Point query: min over each row's hashed counter.

    ``rows`` are the memory snapshots of the program's CMS rows, in
    declaration order (matching the hash-unit assignment).
    """
    if not rows:
        raise ValueError("need at least one CMS row")
    units = _row_units(len(rows))
    estimate = None
    for row, unit in zip(rows, units):
        index = unit.hash_five_tuple(five_tuple) & (len(row) - 1)
        value = row[index]
        estimate = value if estimate is None else min(estimate, value)
    return int(estimate or 0)


def cms_error_bound(rows: list[list[int]], confidence: float = 0.95) -> float:
    """The classic CMS additive-error bound: eps * N with
    eps = e / width, holding with probability 1 - (1/e)^depth."""
    if not rows:
        raise ValueError("need at least one CMS row")
    width = len(rows[0])
    total = sum(rows[0])
    return math.e / width * total


# ---------------------------------------------------------------------------
# Bloom filter
# ---------------------------------------------------------------------------
def bf_contains(
    rows: list[list[int]], five_tuple: tuple[int, int, int, int, int]
) -> bool:
    """Membership: every row's hashed bit must be set."""
    if not rows:
        raise ValueError("need at least one Bloom row")
    units = _row_units(len(rows))
    for row, unit in zip(rows, units):
        index = unit.hash_five_tuple(five_tuple) & (len(row) - 1)
        if not row[index]:
            return False
    return True


def bf_false_positive_rate(rows: list[list[int]]) -> float:
    """Estimated FPR from the observed fill fractions: prod(fill_i)."""
    rate = 1.0
    for row in rows:
        rate *= sum(1 for bit in row if bit) / len(row)
    return rate


# ---------------------------------------------------------------------------
# SuMax
# ---------------------------------------------------------------------------
def sumax_query(
    rows: list[list[int]], five_tuple: tuple[int, int, int, int, int]
) -> int:
    """Per-flow maximum estimate: min over rows (collisions only inflate)."""
    if not rows:
        raise ValueError("need at least one SuMax row")
    units = _row_units(len(rows))
    return min(
        row[unit.hash_five_tuple(five_tuple) & (len(row) - 1)]
        for row, unit in zip(rows, units)
    )


# ---------------------------------------------------------------------------
# HyperLogLog
# ---------------------------------------------------------------------------
def hll_alpha(m: int) -> float:
    """Bias-correction constant (Flajolet et al. 2007)."""
    if m <= 16:
        return 0.673
    if m <= 32:
        return 0.697
    if m <= 64:
        return 0.709
    return 0.7213 / (1 + 1.079 / m)


def hll_estimate(registers: list[int]) -> float:
    """Cardinality estimate from rank registers, with the standard
    small-range (linear counting) correction."""
    m = len(registers)
    if m == 0 or m & (m - 1):
        raise ValueError("register count must be a power of two")
    raw = hll_alpha(m) * m * m / sum(2.0 ** -rank for rank in registers)
    zeros = registers.count(0)
    if raw <= 2.5 * m and zeros:
        return m * math.log(m / zeros)
    return raw


def hll_standard_error(m: int) -> float:
    """Relative standard error ~ 1.04 / sqrt(m)."""
    return 1.04 / math.sqrt(m)
