"""One-shot reproduction report: run every experiment, emit markdown.

``python -m repro.analysis.report [--scale tiny|quick] [--out REPORT.md]``
re-runs the paper's evaluation through the same library engines the
benchmarks use and renders a self-contained markdown report with
paper-reference annotations.  ``tiny`` finishes in well under a minute
(CI-sized); ``quick`` matches the benchmarks' default scale.
"""

from __future__ import annotations

import argparse
import statistics
import sys
from dataclasses import dataclass

from ..baselines.activermt import ActiveRMTTiming, WORKLOADS as ACTIVE_WORKLOADS
from ..baselines.flymon import TASKS as FLYMON_TASKS, FlyMonTiming
from ..baselines.profiles import all_profiles
from ..compiler import compile_source, emit_p4, p4_loc, parse_and_check
from ..compiler.objectives import f1, f2, f3, hierarchical
from ..controlplane import Controller
from ..programs import ALL_PROGRAM_NAMES, PROGRAMS, source_loc
from ..rmt.parser import default_parse_machine
from ..rmt.pipeline import Switch, SwitchConfig
from .experiments import compare_objectives, continuous_deployment


@dataclass(frozen=True)
class Scale:
    name: str
    update_repeats: int
    fig7_epochs: int
    fig12_epochs: int
    fig12_elastic: int


SCALES = {
    "tiny": Scale("tiny", 3, 40, 120, 64),
    "quick": Scale("quick", 10, 150, 1200, 64),
}


class ReportBuilder:
    def __init__(self) -> None:
        self.lines: list[str] = []

    def heading(self, text: str, level: int = 2) -> None:
        self.lines.append("")
        self.lines.append("#" * level + " " + text)
        self.lines.append("")

    def para(self, text: str) -> None:
        self.lines.append(text)
        self.lines.append("")

    def table(self, headers: list[str], rows: list[list]) -> None:
        self.lines.append("| " + " | ".join(headers) + " |")
        self.lines.append("|" + "|".join("---" for _ in headers) + "|")
        for row in rows:
            self.lines.append("| " + " | ".join(str(c) for c in row) + " |")
        self.lines.append("")

    def render(self) -> str:
        return "\n".join(self.lines).strip() + "\n"


# ---------------------------------------------------------------------------
# Sections
# ---------------------------------------------------------------------------
def section_table1(report: ReportBuilder, scale: Scale) -> None:
    report.heading("Table 1 — LoC and update delay (15 programs)")
    rows = []
    for name in ALL_PROGRAM_NAMES:
        info = PROGRAMS[name]
        ctl = Controller()
        delays = []
        for _ in range(scale.update_repeats):
            handle = ctl.deploy(info.source)
            delays.append(handle.stats.update_ms)
            ctl.revoke(handle)
        unit = parse_and_check(info.source)
        generated = p4_loc(emit_p4(unit, unit.programs[0]))
        rows.append(
            [
                name,
                source_loc(info.source),
                info.paper_runpro_loc,
                generated,
                info.paper_p4_loc,
                f"{statistics.mean(delays):.2f}",
                f"{info.paper_update_ms:.2f}",
            ]
        )
    report.table(
        ["program", "LoC", "LoC paper", "P4 gen", "P4 paper", "update ms", "paper ms"],
        rows,
    )


def section_table2(report: ReportBuilder) -> None:
    report.heading("Table 2 — latency, power, traffic limit load")
    rows = []
    for profile in all_profiles():
        rows.append(
            [
                profile.name,
                "/".join(str(c) for c in profile.latency_cycles),
                f"{profile.power_watts[2]:.2f}",
                f"{profile.traffic_limit_load:.1%}",
            ]
        )
    report.table(["system", "cycles in/eg/total", "power W", "load"], rows)
    report.para(
        "paper: P4runpro 622cy/40.74W/98%, ActiveRMT 620cy/43.7W/91%, "
        "FlyMon 336cy/34.05W/100%."
    )


def section_fig7(report: ReportBuilder, scale: Scale) -> None:
    report.heading("Fig. 7(a) — allocation delay over sequential deployments")
    rows = []
    for workload in ("cache", "lb", "hh", "mixed"):
        results = continuous_deployment(workload, scale.fig7_epochs, seed=1)
        delays = [r.allocation_ms for r in results if r.success]
        n = max(len(delays) // 5, 1)
        rows.append(
            [
                workload,
                f"{statistics.mean(delays[:n]):.2f}",
                f"{statistics.mean(delays[-n:]):.2f}",
                f"{max(delays):.2f}",
            ]
        )
    report.table(["workload", "early ms", "late ms", "max ms"], rows)
    report.para(
        "P4runpro's delay tracks program depth, not occupancy; the "
        "ActiveRMT contrast (growth past 1 s) runs in "
        "`benchmarks/bench_fig7_allocation_delay.py`."
    )


def section_fig11(report: ReportBuilder) -> None:
    report.heading("Fig. 11 — recirculation impact")
    switch = Switch(default_parse_machine(), SwitchConfig())
    rows = []
    for size in (128, 512, 1500):
        throughput = [
            f"{switch.max_lossless_throughput_gbps(size, k):.1f}" for k in range(4)
        ]
        rows.append([f"{size} B", *throughput])
    report.table(["packet size", "R=0", "R=1", "R=2", "R=3"], rows)
    report.para("paper: R=1 loss 1-10% by packet size; Gbps columns show the bound.")


def section_fig12(report: ReportBuilder, scale: Scale) -> None:
    report.heading("Fig. 12 — allocation objectives (all-mixed until failure)")
    rows = compare_objectives(
        {"f1": f1(), "f2": f2(), "f3": f3(), "hierarchical": hierarchical()},
        workload="all-mixed",
        seed=1,
        max_epochs=scale.fig12_epochs,
        elastic_blocks=scale.fig12_elastic,
    )
    report.table(
        ["objective", "capacity", "entries %", "mean alloc ms"],
        [
            [
                row.objective,
                row.capacity,
                f"{row.entry_utilization:.0%}",
                f"{row.mean_allocation_ms:.2f}",
            ]
            for row in rows
        ],
    )
    report.para(
        "paper shape: f3 wins capacity/utilization, f2/hierarchical worst; "
        "see EXPERIMENTS.md for the documented f3-delay deviation."
    )


def section_prior_work(report: ReportBuilder) -> None:
    report.heading("Prior-work update delays (Table 1 companions)")
    rows = []
    timing = ActiveRMTTiming()
    for name in ("cache", "lb", "hh"):
        rows.append([f"{name} (ActiveRMT)", f"{timing.update_delay_ms(ACTIVE_WORKLOADS[name]):.2f}"])
    flymon = FlyMonTiming()
    for name, task in FLYMON_TASKS.items():
        rows.append([f"{name} (FlyMon)", f"{flymon.update_delay_ms(task):.2f}"])
    report.table(["system/program", "update ms"], rows)


def section_recirculating_programs(report: ReportBuilder) -> None:
    report.heading("Recirculation census (§6.3: 13 of 15 without)")
    recirculating = [
        name
        for name in ALL_PROGRAM_NAMES
        if compile_source(PROGRAMS[name].source).allocation.max_iteration > 0
    ]
    report.para(
        f"programs needing recirculation: {sorted(recirculating)} "
        f"({len(ALL_PROGRAM_NAMES) - len(recirculating)} of "
        f"{len(ALL_PROGRAM_NAMES)} run in one pass)."
    )


def generate_report(scale_name: str = "tiny") -> str:
    """Run the evaluation at the given scale; return markdown."""
    scale = SCALES[scale_name]
    report = ReportBuilder()
    report.heading("P4runpro reproduction report", level=1)
    report.para(
        f"Generated by `repro.analysis.report` at scale `{scale.name}`. "
        "Shapes are the reproduction target; see EXPERIMENTS.md for the "
        "full paper-vs-measured record and deviations."
    )
    section_table1(report, scale)
    section_table2(report)
    section_fig7(report, scale)
    section_fig11(report)
    section_fig12(report, scale)
    section_prior_work(report)
    section_recirculating_programs(report)
    return report.render()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="generate the reproduction report")
    parser.add_argument("--scale", choices=sorted(SCALES), default="tiny")
    parser.add_argument("--out", default="-", help="output path ('-' = stdout)")
    ns = parser.parse_args(argv)
    text = generate_report(ns.scale)
    if ns.out == "-":
        sys.stdout.write(text)
    else:
        with open(ns.out, "w") as out:
            out.write(text)
        print(f"wrote {ns.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
