"""Shared experiment runners for the paper's evaluation (§6.2, Appendix C).

Benchmarks stay thin wrappers around these functions, and the integration
tests exercise the same code paths at reduced scale.

Workload conventions follow §6.2: ``cache``, ``lb``, ``hh`` are the named
workloads; ``mixed`` picks one of those three at random per epoch;
``all-mixed`` picks any of the 15 library programs.  Unless stated
otherwise programs request 1,024 B of memory (256 32-bit buckets) and 2
elastic case blocks, matching the paper's defaults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..compiler.compiler import CompileOptions
from ..compiler.objectives import Objective, f1
from ..controlplane.controller import Controller
from ..lang.errors import AllocationError, P4runproError
from ..controlplane.freelist import OutOfMemoryError
from ..programs import library

DEFAULT_MEMORY_BUCKETS = 256  # 1,024 B
DEFAULT_ELASTIC_BLOCKS = 2


@dataclass
class EpochResult:
    """Outcome of one deployment epoch."""

    epoch: int
    program: str
    success: bool
    allocation_ms: float
    update_ms: float
    memory_utilization: float
    entry_utilization: float
    per_rpb_memory: list[float] = field(default_factory=list)
    per_rpb_entries: list[float] = field(default_factory=list)


def pick_program(workload: str, rng: random.Random) -> str:
    """Resolve a workload name to a concrete program for this epoch."""
    if workload == "mixed":
        return rng.choice(library.WORKLOAD_PROGRAMS)
    if workload == "all-mixed":
        return rng.choice(library.ALL_PROGRAM_NAMES)
    if workload in library.PROGRAMS:
        return workload
    raise ValueError(f"unknown workload {workload!r}")


def deploy_options(
    info: library.ProgramInfo,
    *,
    elastic_blocks: int | None,
    objective: Objective | None,
) -> CompileOptions:
    options = CompileOptions(objective=objective)
    if elastic_blocks is not None and info.elastic_branch is not None:
        options.elastic_branch = info.elastic_branch
        options.elastic_cases = elastic_blocks
    return options


def continuous_deployment(
    workload: str,
    epochs: int,
    *,
    memory_buckets: int = DEFAULT_MEMORY_BUCKETS,
    elastic_blocks: int | None = DEFAULT_ELASTIC_BLOCKS,
    objective: Objective | None = None,
    stop_on_failure: bool = False,
    seed: int = 1,
    controller: Controller | None = None,
    snapshot_rpbs: bool = False,
) -> list[EpochResult]:
    """Deploy ``epochs`` programs sequentially on one controller.

    This is the engine behind Fig. 7(a) (allocation delay), Fig. 8
    (utilization until failure, pass ``stop_on_failure=True``), Fig. 9
    (capacity), Fig. 12 (objective comparison), and Fig. 18/19 (pass
    ``snapshot_rpbs=True``).  Failed allocations record ``success=False``
    with ``allocation_ms=0`` — the paper's convention ("when allocation
    fails, the allocation time is set to 0").
    """
    rng = random.Random(seed)
    ctl = controller or Controller()
    objective = objective or f1()
    results: list[EpochResult] = []
    for epoch in range(epochs):
        name = pick_program(workload, rng)
        info = library.get(name)
        source = library.source_with_memory(name, memory_buckets)
        options = deploy_options(
            info, elastic_blocks=elastic_blocks, objective=objective
        )
        try:
            deployed = ctl.deploy(source, options=options)
            result = EpochResult(
                epoch=epoch,
                program=name,
                success=True,
                allocation_ms=deployed.stats.allocation_ms,
                update_ms=deployed.stats.update_ms,
                memory_utilization=ctl.manager.memory_utilization(),
                entry_utilization=ctl.manager.entry_utilization(),
            )
        except (AllocationError, OutOfMemoryError, P4runproError):
            result = EpochResult(
                epoch=epoch,
                program=name,
                success=False,
                allocation_ms=0.0,
                update_ms=0.0,
                memory_utilization=ctl.manager.memory_utilization(),
                entry_utilization=ctl.manager.entry_utilization(),
            )
        if snapshot_rpbs:
            snap = ctl.manager.utilization_snapshot()
            result.per_rpb_memory = snap["memory"]
            result.per_rpb_entries = snap["entries"]
        results.append(result)
        if stop_on_failure and not result.success:
            break
    return results


@dataclass
class CapacityResult:
    workload: str
    memory_buckets: int
    elastic_blocks: int
    capacity: int
    memory_utilization: float
    entry_utilization: float


def program_capacity(
    workload: str,
    *,
    memory_buckets: int = DEFAULT_MEMORY_BUCKETS,
    elastic_blocks: int = DEFAULT_ELASTIC_BLOCKS,
    objective: Objective | None = None,
    seed: int = 1,
    max_epochs: int = 4000,
) -> CapacityResult:
    """Deploy until the first failure; capacity = successful deployments
    (Fig. 9)."""
    results = continuous_deployment(
        workload,
        max_epochs,
        memory_buckets=memory_buckets,
        elastic_blocks=elastic_blocks,
        objective=objective,
        stop_on_failure=True,
        seed=seed,
    )
    successes = [r for r in results if r.success]
    last = results[-1]
    return CapacityResult(
        workload=workload,
        memory_buckets=memory_buckets,
        elastic_blocks=elastic_blocks,
        capacity=len(successes),
        memory_utilization=last.memory_utilization,
        entry_utilization=last.entry_utilization,
    )


@dataclass
class ObjectiveComparison:
    objective: str
    capacity: int
    memory_utilization: float
    entry_utilization: float
    mean_allocation_ms: float
    p99_allocation_ms: float


def compare_objectives(
    objectives: dict[str, Objective],
    *,
    workload: str = "all-mixed",
    seed: int = 1,
    max_epochs: int = 4000,
    elastic_blocks: int = DEFAULT_ELASTIC_BLOCKS,
) -> list[ObjectiveComparison]:
    """Deploy the all-mixed workload until failure under each objective
    (Fig. 12 / Appendix C)."""
    rows = []
    for name, objective in objectives.items():
        results = continuous_deployment(
            workload,
            max_epochs,
            objective=objective,
            elastic_blocks=elastic_blocks,
            stop_on_failure=True,
            seed=seed,
        )
        delays = sorted(r.allocation_ms for r in results if r.success)
        successes = len(delays)
        last = results[-1]
        mean = sum(delays) / successes if successes else 0.0
        p99 = delays[min(successes - 1, int(successes * 0.99))] if successes else 0.0
        rows.append(
            ObjectiveComparison(
                objective=name,
                capacity=successes,
                memory_utilization=last.memory_utilization,
                entry_utilization=last.entry_utilization,
                mean_allocation_ms=mean,
                p99_allocation_ms=p99,
            )
        )
    return rows
