"""Analysis helpers: scores and smoothing used by the evaluation."""

from __future__ import annotations

from collections.abc import Sequence


def moving_average(values: Sequence[float], window: int = 31) -> list[float]:
    """Centered moving average with edge shrinking (paper Fig. 7(a) uses
    a window of 31 over the allocation-delay series)."""
    if window <= 0:
        raise ValueError("window must be positive")
    half = window // 2
    out = []
    n = len(values)
    for i in range(n):
        lo = max(0, i - half)
        hi = min(n, i + half + 1)
        out.append(sum(values[lo:hi]) / (hi - lo))
    return out


def f1_score(true_positives: int, false_positives: int, false_negatives: int) -> float:
    """F1 = 2TP / (2TP + FP + FN); 0 when undefined."""
    denom = 2 * true_positives + false_positives + false_negatives
    if denom == 0:
        return 0.0
    return 2 * true_positives / denom


def precision_recall(
    detected: set, ground_truth: set
) -> tuple[float, float, float]:
    """(precision, recall, f1) of a detection set vs ground truth."""
    tp = len(detected & ground_truth)
    fp = len(detected - ground_truth)
    fn = len(ground_truth - detected)
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    return precision, recall, f1_score(tp, fp, fn)
