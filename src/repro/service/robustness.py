"""Southbound robustness: bounded retry with exponential backoff.

RBFRT's motivating observation is that runtime control at scale lives or
dies on how the controller handles a flaky switch connection.  The
service therefore never talks to the raw binding: every southbound entry
update goes through :class:`RetryingBinding`, which retries *transient*
failures (connection resets, timeouts — in tests, injected
:class:`~repro.controlplane.update.SouthboundError`) with exponential
backoff, up to a bounded attempt budget.  Anything non-transient — an
unknown table, a semantic error — propagates immediately; retrying it
would just repeat the bug.

When retries are exhausted the last transient error propagates and the
update engine's rollback path takes over, so a dead link degrades to a
clean failed deploy, never a half-installed program.

The sleep function is injectable so tests (and the simulated clock) do
not wait real wall-time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..controlplane.update import DataPlaneBinding, SouthboundError


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff: delays base, base*m, base*m^2, ..."""

    max_attempts: int = 4
    base_delay_s: float = 0.005
    multiplier: float = 2.0
    max_delay_s: float = 0.25
    #: exception types considered transient (retried); everything else
    #: propagates on first occurrence
    transient: tuple = (SouthboundError, ConnectionError, TimeoutError)

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return min(self.base_delay_s * self.multiplier ** (attempt - 1), self.max_delay_s)


@dataclass
class RetryStats:
    """Aggregate retry behaviour, surfaced through the metrics RPC."""

    attempts: int = 0
    retries: int = 0
    gave_up: int = 0
    backoff_s: float = 0.0
    last_error: str | None = None

    def as_dict(self) -> dict:
        return {
            "attempts": self.attempts,
            "retries": self.retries,
            "gave_up": self.gave_up,
            "backoff_s": round(self.backoff_s, 6),
            "last_error": self.last_error,
        }


class RetryingBinding:
    """Wraps any :class:`DataPlaneBinding` with the retry policy.

    Only the three mutating southbound calls are wrapped; reads and any
    binding extras (``read_bucket``, counters, multicast config) delegate
    untouched via ``__getattr__``.
    """

    def __init__(
        self,
        inner: DataPlaneBinding,
        policy: RetryPolicy | None = None,
        *,
        sleep=time.sleep,
    ):
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.sleep = sleep
        self.stats = RetryStats()

    def _call(self, fn, *args):
        policy = self.policy
        attempt = 0
        while True:
            attempt += 1
            self.stats.attempts += 1
            try:
                return fn(*args)
            except policy.transient as exc:
                self.stats.last_error = f"{type(exc).__name__}: {exc}"
                if attempt >= policy.max_attempts:
                    self.stats.gave_up += 1
                    raise
                self.stats.retries += 1
                delay = policy.delay(attempt)
                self.stats.backoff_s += delay
                self.sleep(delay)

    def insert_entry(self, entry) -> int:
        return self._call(self.inner.insert_entry, entry)

    def insert_entries(self, entries) -> list[int]:
        """Grouped insert with a per-entry retry budget.

        When the inner binding offers a group-atomic ``insert_entries``
        (the engine's pipelined fan-out frames), the whole group goes
        through it first — one southbound call instead of N.  If that
        single attempt fails transiently, the inner contract guarantees
        nothing from the group is installed, so the redo degrades to the
        per-entry path, where each entry retries independently (retrying
        the *group* would re-count every entry against a deterministic
        fault schedule and never converge).  A non-transient or exhausted
        failure rolls back this group's partial inserts before
        propagating, preserving the group-atomic contract upward.
        """
        # Class-level detection: never reach through an inner wrapper's
        # __getattr__ delegation (that would bypass its per-entry hooks).
        inner_many = None
        if getattr(type(self.inner), "insert_entries", None) is not None:
            inner_many = self.inner.insert_entries
        if callable(inner_many):
            self.stats.attempts += 1
            try:
                return inner_many(entries)
            except self.policy.transient as exc:
                self.stats.last_error = f"{type(exc).__name__}: {exc}"
                self.stats.retries += 1
        handles: list[int] = []
        for entry in entries:
            try:
                handles.append(self._call(self.inner.insert_entry, entry))
            except Exception:
                for done, handle in reversed(list(zip(entries, handles))):
                    self._call(self.inner.delete_entry, done.table, handle)
                raise
        return handles

    def delete_entry(self, table: str, handle: int) -> None:
        self._call(self.inner.delete_entry, table, handle)

    def reset_memory(self, phys_rpb: int, base: int, size: int) -> None:
        self._call(self.inner.reset_memory, phys_rpb, base, size)

    def __getattr__(self, name):
        return getattr(self.inner, name)
