"""The northbound control service: asyncio server over one controller.

Turns the in-process :class:`~repro.controlplane.Controller` into a
long-lived daemon serving many concurrent tenants over the NDJSON-RPC
protocol (:mod:`repro.service.protocol`).  Layering:

* :class:`ControlService` is the transport-independent request executor:
  tenancy + quotas, the admission queue, deadlines, audit, metrics.
* :class:`ServiceServer` binds it to a TCP listener via asyncio streams.
* :class:`ServerThread` runs a server on a background thread for
  synchronous callers (the CLI, benchmarks, tests).

Concurrency model: requests from different connections are handled
concurrently on the event loop.  State-changing methods (deploy, revoke,
add_case, remove_case, write_mem, set_quota, inject) funnel through one FIFO
admission lock — the compiler and allocator always observe a quiescent
resource manager, and the audit log's order *is* the execution order
(which makes replay exact).  Read-only methods bypass the queue entirely,
so monitoring stays responsive while a deploy is in flight.  Handler
bodies are synchronous (controller calls take at most a few ms at
simulation scale), so within one handler nothing interleaves.

Robustness: the controller's southbound binding is wrapped in
:class:`~repro.service.robustness.RetryingBinding` at service
construction; per-request deadlines are enforced when a queued request is
finally admitted; shutdown drains the admission queue before the listener
closes (in-flight writes finish, queued-but-undispatched writes are
refused with ``SHUTTING_DOWN``).
"""

from __future__ import annotations

import asyncio
import time

from ..controlplane.controller import Controller
from ..controlplane.manager import ProgramNotFoundError, ProgramState
from ..lang.errors import AllocationError, P4runproError
from .audit import STATE_CHANGING_METHODS, AuditLog, compile_options_from_params
from .metrics import MetricsRegistry
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ErrorCode,
    Request,
    ServiceError,
    decode_binary_frame,
    decode_frame,
    encode_binary_frame,
    encode_frame,
    error_response,
    ok_response,
)
from .robustness import RetryingBinding, RetryPolicy
from .tenants import TenantQuota, TenantRegistry
from .wire import FRAME_EVENT, FRAME_HEADER, FRAME_REQUEST, FRAME_RESPONSE, PREAMBLE

#: Methods serialized through the admission queue.  ``inject`` drives
#: traffic through the data plane: it mutates register arrays and
#: counters, so it must not interleave with a deploy's entry updates —
#: but it is deliberately *not* in STATE_CHANGING_METHODS, so audit
#: replay skips it (replay restores control-plane state, not traffic).
#: ``abort_deploy`` is a synthetic audit-only record, never a client RPC.
#: The batch RPCs (``deploy_many``/``add_cases``/``write_mems``/``batch``)
#: ride along from STATE_CHANGING_METHODS: N ops under ONE admission
#: ticket, one audit record, one response frame.
#: The elastic-engine RPCs (``scale``/``migrate``/``rebalance``) mutate
#: fleet topology and register placement, so they serialize through the
#: same queue but — like ``inject`` — stay out of audit replay (replay
#: restores control-plane state, not engine topology).
WRITE_METHODS = (STATE_CHANGING_METHODS - {"abort_deploy"}) | {
    "set_quota",
    "inject",
    "scale",
    "migrate",
    "rebalance",
}

#: Methods served without queueing.
READ_METHODS = frozenset(
    {
        "ping",
        "list",
        "stats",
        "read_mem",
        "snapshot",
        "utilization",
        "tenants",
        "metrics",
        "audit",
        "fingerprint",
    }
)


def _build_packet(spec: dict):
    """Build one packet from a JSON inject spec (kind + kind-specific args)."""
    from ..rmt import packet as pkt

    kind = spec.get("kind", "udp")
    src_ip = spec.get("src_ip", 0x0A00_0001)
    dst_ip = spec.get("dst_ip", 0x0A00_0002)
    try:
        if kind == "l2":
            packet = pkt.make_l2(size=spec.get("size", 64))
        elif kind == "udp":
            packet = pkt.make_udp(
                src_ip,
                dst_ip,
                spec.get("src_port", 10000),
                spec.get("dst_port", 20000),
                size=spec.get("size", 64),
            )
        elif kind == "tcp":
            packet = pkt.make_tcp(
                src_ip,
                dst_ip,
                spec.get("src_port", 10000),
                spec.get("dst_port", 20000),
                flags=spec.get("flags", 0x10),
                size=spec.get("size", 64),
            )
        elif kind == "cache":
            op = spec.get("op", "read")
            if op == "read":
                op = pkt.NC_READ
            elif op == "write":
                op = pkt.NC_WRITE
            if not isinstance(op, int):
                raise ValueError(f"unknown cache op {op!r}")
            packet = pkt.make_cache(
                src_ip,
                dst_ip,
                op=op,
                key=spec.get("key", 0),
                value=spec.get("value", 0),
                dst_port=spec.get("dst_port", 7777),
            )
        elif kind == "calc":
            packet = pkt.make_calc(
                src_ip,
                dst_ip,
                op=spec.get("op", 1),
                a=spec.get("a", 0),
                b=spec.get("b", 0),
                dst_port=spec.get("dst_port", 8888),
            )
        else:
            raise ServiceError(
                ErrorCode.BAD_REQUEST, f"unknown packet kind {kind!r}"
            )
    except ServiceError:
        raise
    except (TypeError, ValueError) as exc:
        raise ServiceError(ErrorCode.BAD_REQUEST, f"bad packet spec: {exc}") from exc
    packet.ingress_port = spec.get("ingress_port", 0)
    packet.queue_depth = spec.get("queue_depth", 0)
    return packet


class ControlService:
    """Transport-independent executor for northbound requests."""

    def __init__(
        self,
        controller: Controller | None = None,
        dataplane=None,
        *,
        engine=None,
        fabric=None,
        tenants: TenantRegistry | None = None,
        retry_policy: RetryPolicy | None = None,
        retry_sleep=None,
        audit: AuditLog | None = None,
        metrics: MetricsRegistry | None = None,
        clock=time.monotonic,
        pipelined_install: bool = True,
        min_workers: int | None = None,
        max_workers: int | None = None,
        rebalance_threshold: float | None = None,
    ):
        if fabric is not None:
            # Fabric mode: the service fronts a FabricController federating
            # one control plane per switch.  There is no single controller
            # or data plane; every handler routes through the fabric.
            if controller is not None or dataplane is not None or engine is not None:
                raise ValueError("pass either fabric or engine/controller/dataplane")
        elif engine is not None:
            # Sharded mode: the engine's coordinator controller is the
            # control plane (its FanoutBinding keeps every shard in sync),
            # and inject routes batches through the engine instead of the
            # coordinator's local replica.
            if controller is not None or dataplane is not None:
                raise ValueError("pass either engine or controller/dataplane")
            controller = engine.controller
            dataplane = engine.dataplane
        elif controller is None:
            controller, dataplane = Controller.with_simulator()
        self.engine = engine
        self.fabric = fabric
        self.controller = controller
        self.dataplane = dataplane
        retry_kwargs = {"sleep": retry_sleep} if retry_sleep is not None else {}
        if fabric is not None:
            # Every node's southbound gets the same retry armour; the
            # first wrapper doubles as the policy reference for error
            # mapping, and metrics report per-node retry stats.
            self._node_retrying = {}
            for name, node in fabric.topology.nodes.items():
                node_binding = node.controller.updater.binding
                if not isinstance(node_binding, RetryingBinding):
                    node_binding = RetryingBinding(
                        node_binding, retry_policy, **retry_kwargs
                    )
                    node.controller.updater.binding = node_binding
                self._node_retrying[name] = node_binding
            binding = next(iter(self._node_retrying.values()))
        else:
            self._node_retrying = None
            binding = controller.updater.binding
            if not isinstance(binding, RetryingBinding):
                binding = RetryingBinding(binding, retry_policy, **retry_kwargs)
                controller.updater.binding = binding
        self.retrying = binding
        self.tenants = tenants or TenantRegistry()
        self.audit = audit or AuditLog()
        self.metrics = metrics or MetricsRegistry()
        self.clock = clock
        self.draining = False
        #: overlap tenant A's entry installation with tenant B's solve
        #: (False restores the fully serialized reference path)
        self.pipelined_install = pipelined_install
        #: elastic-fleet bounds enforced by the ``scale`` RPC, and the
        #: skew threshold above which inject auto-triggers a rebalance
        #: (None disables auto-rebalancing)
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.rebalance_threshold = rebalance_threshold
        import weakref

        self._write_locks = weakref.WeakKeyDictionary()
        self._install_locks = weakref.WeakKeyDictionary()
        self._cases: dict[tuple[str, int], tuple[int, object]] = {}
        self._next_case_id = 1

    # -- dispatch ----------------------------------------------------------------
    def _lock(self) -> asyncio.Lock:
        # One admission lock per event loop (an asyncio.Lock binds to the
        # loop it first awaits on; a service may outlive short test loops).
        # Serialization across loops is not needed — a loop runs one thread.
        loop = asyncio.get_running_loop()
        lock = self._write_locks.get(loop)
        if lock is None:
            lock = asyncio.Lock()
            self._write_locks[loop] = lock
        return lock

    def _install_lock(self) -> asyncio.Lock:
        # The install half of pipelined deploys serializes on its own
        # lock: tenant B's solve (under the admission lock) overlaps
        # tenant A's entry writes.  asyncio.Lock wakes waiters FIFO, so
        # install order always equals admission order — which keeps the
        # audit journal's order equal to the southbound mutation order.
        loop = asyncio.get_running_loop()
        lock = self._install_locks.get(loop)
        if lock is None:
            lock = asyncio.Lock()
            self._install_locks[loop] = lock
        return lock

    async def handle_frame(self, line: bytes) -> dict:
        """One wire line in, one response object out (never raises)."""
        try:
            payload = decode_frame(line)
        except ServiceError as exc:
            return error_response(None, exc)
        return await self.handle_payload(payload)

    async def handle_payload(self, payload: dict) -> dict:
        """One decoded request envelope in (either codec), one response
        object out (never raises)."""
        try:
            request = Request.from_wire(payload)
        except ServiceError as exc:
            return error_response(payload.get("id") if isinstance(payload, dict) else None, exc)
        return await self.handle_request(request)

    async def handle_request(self, request: Request) -> dict:
        arrival = self.clock()
        method = request.method
        try:
            if method in WRITE_METHODS:
                result = await self._execute_write(request, arrival)
            elif method in READ_METHODS:
                self._check_deadline(request, arrival)
                result = self._execute(request)
                self._observe(method, "ok", arrival)
            else:
                raise ServiceError(
                    ErrorCode.UNKNOWN_METHOD, f"unknown method {method!r}"
                )
        except ServiceError as exc:
            self._observe(method, exc.code.value, arrival)
            return error_response(request.id, exc)
        except Exception as exc:  # pragma: no cover - defensive
            error = ServiceError(ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}")
            self._observe(method, error.code.value, arrival)
            return error_response(request.id, error)
        return ok_response(request.id, result)

    async def _execute_write(self, request: Request, arrival: float) -> dict:
        # Fabric deploys are not pipelined: the solve/install split assumes
        # one resource manager, while a fabric deploy is an all-or-nothing
        # transaction over many of them.
        if request.method == "deploy" and self.pipelined_install and self.fabric is None:
            return await self._execute_deploy_pipelined(request, arrival)
        async with self._lock():
            admitted = self.clock()
            queue_ms = (admitted - arrival) * 1e3
            try:
                if self.draining:
                    raise ServiceError(
                        ErrorCode.SHUTTING_DOWN, "service is draining; write refused"
                    )
                self._check_deadline(request, arrival)
                result = self._execute(request)
            except ServiceError as exc:
                self._audit(request, f"error:{exc.code.value}", {}, queue_ms, admitted)
                raise
            except Exception as exc:
                error = self._map_error(request.method, exc)
                self._audit(request, f"error:{error.code.value}", {}, queue_ms, admitted)
                raise error from exc
            self._audit(request, "ok", result, queue_ms, admitted)
            self._observe(request.method, "ok", arrival)
            return result

    def _execute(self, request: Request) -> dict:
        handler = getattr(self, f"_rpc_{request.method}")
        try:
            return handler(request.tenant, request.params)
        except ServiceError:
            raise
        except Exception as exc:
            raise self._map_error(request.method, exc) from exc

    def _map_error(self, method: str, exc: Exception) -> ServiceError:
        if isinstance(exc, ServiceError):
            return exc
        if isinstance(exc, self.retrying.policy.transient):
            return ServiceError(
                ErrorCode.SOUTHBOUND_FAILURE,
                f"southbound update failed after retries: {exc}",
            )
        if isinstance(exc, ProgramNotFoundError):
            return ServiceError(ErrorCode.NOT_FOUND, str(exc.args[0]) if exc.args else str(exc))
        if isinstance(exc, AllocationError):
            return ServiceError(ErrorCode.ALLOCATION_ERROR, str(exc))
        if isinstance(exc, P4runproError):
            code = ErrorCode.COMPILE_ERROR if method == "deploy" else ErrorCode.BAD_REQUEST
            return ServiceError(code, str(exc))
        if isinstance(exc, (KeyError, ValueError, TypeError)):
            return ServiceError(ErrorCode.BAD_REQUEST, str(exc))
        from ..engine import MigrationError

        if isinstance(exc, MigrationError):
            # Invalid migration requests (unpinned program, unknown
            # target, already migrating) are caller mistakes, not engine
            # failures.
            return ServiceError(ErrorCode.BAD_REQUEST, str(exc))
        return ServiceError(ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}")

    def _check_deadline(self, request: Request, arrival: float) -> None:
        if request.deadline_ms is None:
            return
        elapsed_ms = (self.clock() - arrival) * 1e3
        if elapsed_ms > request.deadline_ms:
            raise ServiceError(
                ErrorCode.DEADLINE_EXCEEDED,
                f"deadline of {request.deadline_ms} ms exceeded after "
                f"{elapsed_ms:.1f} ms in queue",
            )

    def _observe(self, method: str, outcome: str, arrival: float) -> None:
        latency_ms = (self.clock() - arrival) * 1e3
        suffix = "ok" if outcome == "ok" else "error"
        self.metrics.counter(f"rpc.{method}.{suffix}").inc()
        if outcome not in ("ok",):
            self.metrics.counter(f"rpc.{method}.error.{outcome}").inc()
        self.metrics.histogram(f"rpc.{method}.latency_ms").observe(latency_ms)

    def _audit(
        self, request: Request, outcome: str, result: dict, queue_ms: float, admitted: float
    ) -> None:
        self.audit.append(
            request.tenant,
            request.method,
            request.params,
            outcome,
            result,
            queue_ms=queue_ms,
            execute_ms=(self.clock() - admitted) * 1e3,
        )

    # -- shutdown ---------------------------------------------------------------
    async def drain(self) -> None:
        """Refuse new writes, then wait for in-flight work to finish —
        both the admitted write and any pipelined install still landing
        entries (acquiring both locks guarantees quiescence)."""
        self.draining = True
        async with self._lock():
            async with self._install_lock():
                pass

    # -- param plumbing ---------------------------------------------------------
    @staticmethod
    def _require(params: dict, key: str):
        if key not in params:
            raise ServiceError(ErrorCode.BAD_REQUEST, f"missing param {key!r}")
        return params[key]

    def _program_id(self, tenant_name: str, params: dict) -> int:
        program_id = self._require(params, "program_id")
        if not isinstance(program_id, int):
            raise ServiceError(ErrorCode.BAD_REQUEST, "program_id must be an integer")
        self.tenants.get(tenant_name).require(program_id)
        return program_id

    def _require_running(self, program_id: int) -> None:
        # With pipelined installs a program is visible (charged, id
        # minted) before its entries finish landing; mutating it mid-
        # install would race the southbound stream.
        if self.fabric is not None:
            return  # fabric deploys are never pipelined
        record = self.controller.manager.get(program_id)
        if record.state is ProgramState.INSTALLING:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"program {program_id} is still installing; retry shortly",
            )

    # -- the pipelined deploy fast path ------------------------------------------
    async def _execute_deploy_pipelined(self, request: Request, arrival: float) -> dict:
        """Deploy split into solve and install halves (deploy fast path).

        The solve half — compile, quota checks, admission, tenant charge —
        runs under the admission lock and appends the deploy's audit
        record *at admission time* (outcome ``installing``), because the
        audit order must equal the manager-mutation order for replay to
        reproduce first-fit memory bases byte-for-byte.  The install half
        streams grouped entry updates under a separate FIFO lock, handing
        the event loop back between groups so another tenant's solve can
        run concurrently.  A failed install aborts the admission and
        appends a synthetic ``abort_deploy`` record at the abort's
        position in the mutation order, keeping replay exact even across
        failures.
        """
        async with self._lock():
            admitted = self.clock()
            queue_ms = (admitted - arrival) * 1e3
            try:
                if self.draining:
                    raise ServiceError(
                        ErrorCode.SHUTTING_DOWN, "service is draining; write refused"
                    )
                self._check_deadline(request, arrival)
                prepared, tenant = self._deploy_prepare(request.tenant, request.params)
            except ServiceError as exc:
                self._audit(request, f"error:{exc.code.value}", {}, queue_ms, admitted)
                raise
            except Exception as exc:
                error = self._map_error(request.method, exc)
                self._audit(request, f"error:{error.code.value}", {}, queue_ms, admitted)
                raise error from exc
            record = self.audit.append(
                request.tenant,
                request.method,
                request.params,
                "installing",
                {"program_id": prepared.program_id},
                queue_ms=queue_ms,
            )
        try:
            async with self._install_lock():
                result = await self._install_chunks(prepared)
        except Exception as exc:
            # install_steps aborted the admission synchronously with the
            # failure; release the charge and log the abort at its
            # position in the mutation order (replay re-enacts both).
            tenant.release(prepared.program_id)
            self.audit.append(
                request.tenant, "abort_deploy", {"program_id": prepared.program_id}, "ok"
            )
            error = self._map_error(request.method, exc)
            record.outcome = f"error:{error.code.value}"
            record.execute_ms = (self.clock() - admitted) * 1e3
            if isinstance(exc, ServiceError):
                raise
            raise error from exc
        record.outcome = "ok"
        record.result = result
        record.execute_ms = (self.clock() - admitted) * 1e3
        self._observe(request.method, "ok", arrival)
        return result

    def _deploy_prepare(self, tenant_name: str, params: dict):
        """Solve half of a deploy: everything that must see (and mutate) a
        quiescent resource manager.  Caller holds the admission lock."""
        from .tenants import TenantProgram

        source = self._require(params, "source")
        tenant = self.tenants.get(tenant_name)
        # Program-count quota first: no compile time for a full namespace.
        tenant.check_admission(entries=0, memory_buckets=0)
        options = compile_options_from_params(params)
        compiled = self.controller.compile(
            source, program_name=params.get("program"), options=options
        )
        buckets = sum(size for _phys, size in compiled.memory_requests().values())
        # Exact entry footprint without reserving anything: emission is pure,
        # and the entry *count* does not depend on the real bases/id.
        probe_bases = {
            mid: (phys, [(0, 0, size)])
            for mid, (phys, size) in compiled.memory_requests().items()
        }
        entries = len(compiled.emit_entries(self.controller.spec, 0, probe_bases))
        tenant.check_admission(entries=entries, memory_buckets=buckets)
        prepared = self.controller.prepare_deploy(compiled)
        # Charge now, under the admission lock: a concurrently solving
        # tenant must count this deployment against the quota even though
        # its entries have not landed yet (released if the install fails).
        tenant.charge(
            TenantProgram(prepared.program_id, compiled.name, entries, buckets)
        )
        return prepared, tenant

    async def _install_chunks(self, prepared) -> dict:
        """Install half: drive the grouped southbound updates, yielding to
        the event loop between groups.  Caller holds the install lock."""
        for _installed in self.controller.install_steps(prepared):
            await asyncio.sleep(0)
        handle = prepared.result
        return self._deploy_result(handle)

    @staticmethod
    def _deploy_result(handle) -> dict:
        stats = handle.stats
        return {
            "program_id": handle.program_id,
            "name": handle.name,
            "entries": stats.entries,
            "logic_rpbs": stats.logic_rpbs,
            "parse_ms": stats.parse_ms,
            "allocation_ms": stats.allocation_ms,
            "update_ms": stats.update_ms,
            "overlap_warnings": [str(w) for w in stats.overlap_warnings],
            "cache_hit": stats.cache_hit,
        }

    # -- state-changing RPCs ----------------------------------------------------
    def _rpc_deploy(self, tenant_name: str, params: dict) -> dict:
        """Reference (fully serialized) deploy path, used when
        ``pipelined_install`` is off and for every batched sub-deploy:
        solve and install back-to-back under the admission lock."""
        if self.fabric is not None:
            return self._fabric_deploy(tenant_name, params)
        return self._deploy_sub(tenant_name, params)

    def _deploy_sub(self, tenant_name: str, params: dict) -> dict:
        """One serialized deploy (compile, quota, admit, install, charge).

        On an install failure the admission is already aborted by
        ``install_steps``; the burned program id is attached to the raised
        exception (``exc.program_id``) so batch callers can record it —
        audit replay must skip the same ids the live run consumed.
        """
        from .tenants import TenantProgram

        source = self._require(params, "source")
        tenant = self.tenants.get(tenant_name)
        # Program-count quota first: no compile time for a full namespace.
        tenant.check_admission(entries=0, memory_buckets=0)
        options = compile_options_from_params(params)
        compiled = self.controller.compile(
            source, program_name=params.get("program"), options=options
        )
        buckets = sum(size for _phys, size in compiled.memory_requests().values())
        if tenant.quota.max_table_entries is not None:
            # Exact entry footprint without reserving anything: emission is
            # pure, and the entry *count* does not depend on the real
            # bases/id.  Skipped for unlimited-entry tenants — the charge
            # below uses the real post-install count either way, and the
            # probe emission is the dominant per-deploy cost on the warm
            # batch path.
            probe_bases = {
                mid: (phys, [(0, 0, size)])
                for mid, (phys, size) in compiled.memory_requests().items()
            }
            entries = len(compiled.emit_entries(self.controller.spec, 0, probe_bases))
        else:
            entries = 0
        tenant.check_admission(entries=entries, memory_buckets=buckets)
        prepared = self.controller.prepare_deploy(compiled)
        try:
            for _installed in self.controller.install_steps(prepared):
                pass
        except Exception as exc:
            try:
                exc.program_id = prepared.program_id
            except AttributeError:  # pragma: no cover - exotic exceptions
                pass
            raise
        handle = prepared.result
        tenant.charge(
            TenantProgram(handle.program_id, handle.name, handle.stats.entries, buckets)
        )
        return self._deploy_result(handle)

    # -- multi-op batch RPCs -----------------------------------------------------
    #: sub-methods the generic ``batch`` envelope may carry (no nesting)
    BATCH_METHODS = frozenset(
        {"deploy", "revoke", "add_case", "remove_case", "write_mem", "set_quota"}
    )

    def _rpc_deploy_many(self, tenant_name: str, params: dict) -> dict:
        """All-or-nothing multi-deploy: N sources under one admission
        ticket, one audit record, one response frame.

        Each op is a deploy-params object (or a bare source string).  Any
        failure unwinds the installed prefix in reverse order (the
        fabric's rollback choreography) and the response reports per-op
        status with ``rolled_back`` markers; nothing stays deployed.  The
        audit record keeps every burned program id so replay reproduces
        the id counter — and hence the state fingerprint — byte-for-byte.
        """
        if self.fabric is not None:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                "deploy_many is not supported fabric-wide; deploy one at a time",
            )
        sources = self._require(params, "sources")
        if not isinstance(sources, list) or not sources:
            raise ServiceError(ErrorCode.BAD_REQUEST, "sources must be a non-empty list")
        tenant = self.tenants.get(tenant_name)
        results: list[dict] = []
        installed: list[int] = []
        failure: ServiceError | None = None
        for op_params in sources:
            if isinstance(op_params, str):
                op_params = {"source": op_params}
            if not isinstance(op_params, dict):
                failure = ServiceError(
                    ErrorCode.BAD_REQUEST, "each source must be a string or an object"
                )
                results.append({"ok": False, "error": failure.to_wire()})
                break
            try:
                result = self._deploy_sub(tenant_name, op_params)
            except Exception as exc:
                failure = self._map_error("deploy", exc)
                sub = {"ok": False, "error": failure.to_wire()}
                burned = getattr(exc, "program_id", None)
                if burned is not None:
                    sub["program_id"] = burned
                results.append(sub)
                break
            result["ok"] = True
            results.append(result)
            installed.append(result["program_id"])
        if failure is not None:
            # Reverse-order rollback: revoke what landed, release charges.
            for program_id in reversed(installed):
                self.controller.revoke(program_id)
                tenant.release(program_id)
            for sub in results:
                if sub.get("ok"):
                    sub["ok"] = False
                    sub["rolled_back"] = True
            return {"committed": False, "results": results, "error": failure.to_wire()}
        return {"committed": True, "results": results}

    def _rpc_add_cases(self, tenant_name: str, params: dict) -> dict:
        """N incremental cases on one program under one admission ticket.

        Per-op status, no rollback: a bad case spec fails alone while the
        rest land (audit replay applies exactly the ok sub-ops)."""
        program_id = self._program_id(tenant_name, params)
        self._require_running(program_id)
        if self.fabric is not None:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                "incremental cases are not supported fabric-wide; "
                "use the FabricController API directly",
            )
        specs = self._require(params, "cases")
        if not isinstance(specs, list) or not specs:
            raise ServiceError(ErrorCode.BAD_REQUEST, "cases must be a non-empty list")
        results: list[dict] = []
        for spec in specs:
            try:
                if not isinstance(spec, dict):
                    raise ServiceError(ErrorCode.BAD_REQUEST, "case spec must be an object")
                conditions = [tuple(c) for c in self._require(spec, "conditions")]
                case = self.controller.add_case(
                    program_id,
                    conditions,
                    branch_index=spec.get("branch_index", 0),
                    template_case=spec.get("template_case", 0),
                    loadi_values=spec.get("loadi_values"),
                )
            except Exception as exc:
                error = self._map_error("add_case", exc)
                results.append({"ok": False, "error": error.to_wire()})
                continue
            case_id = self._next_case_id
            self._next_case_id += 1
            self._cases[(tenant_name, case_id)] = (program_id, case)
            results.append({"ok": True, "case_id": case_id, "branch_id": case.branch_id})
        return {
            "results": results,
            "ok_count": sum(1 for r in results if r["ok"]),
        }

    def _rpc_write_mems(self, tenant_name: str, params: dict) -> dict:
        """N memory writes (possibly across programs) under one admission
        ticket; per-op status, no rollback."""
        writes = self._require(params, "writes")
        if not isinstance(writes, list) or not writes:
            raise ServiceError(ErrorCode.BAD_REQUEST, "writes must be a non-empty list")
        results: list[dict] = []
        for spec in writes:
            try:
                if not isinstance(spec, dict):
                    raise ServiceError(ErrorCode.BAD_REQUEST, "write spec must be an object")
                self._rpc_write_mem(tenant_name, spec)
            except Exception as exc:
                error = self._map_error("write_mem", exc)
                results.append({"ok": False, "error": error.to_wire()})
                continue
            results.append({"ok": True})
        return {
            "results": results,
            "ok_count": sum(1 for r in results if r["ok"]),
        }

    def _rpc_batch(self, tenant_name: str, params: dict) -> dict:
        """Generic multi-op envelope: ``ops`` is a list of
        ``{"method": ..., "params": {...}}`` drawn from
        :data:`BATCH_METHODS` (no nesting).  Per-op status, no rollback;
        audit replay re-applies exactly the ok sub-ops."""
        ops = self._require(params, "ops")
        if not isinstance(ops, list) or not ops:
            raise ServiceError(ErrorCode.BAD_REQUEST, "ops must be a non-empty list")
        results: list[dict] = []
        for op in ops:
            if not isinstance(op, dict) or not isinstance(op.get("method"), str):
                error = ServiceError(
                    ErrorCode.BAD_REQUEST, "each op must be a {method, params} object"
                )
                results.append({"ok": False, "error": error.to_wire()})
                continue
            method = op["method"]
            op_params = op.get("params") or {}
            if method not in self.BATCH_METHODS:
                error = ServiceError(
                    ErrorCode.BAD_REQUEST,
                    f"method {method!r} is not allowed inside a batch",
                )
                results.append({"ok": False, "error": error.to_wire()})
                continue
            try:
                result = getattr(self, f"_rpc_{method}")(tenant_name, op_params)
            except Exception as exc:
                error = self._map_error(method, exc)
                sub = {"ok": False, "error": error.to_wire()}
                burned = getattr(exc, "program_id", None)
                if method == "deploy" and burned is not None:
                    sub["program_id"] = burned
                results.append(sub)
                continue
            sub = dict(result)
            sub["ok"] = True
            results.append(sub)
        return {
            "results": results,
            "ok_count": sum(1 for r in results if r["ok"]),
        }

    def _fabric_deploy(self, tenant_name: str, params: dict) -> dict:
        """All-or-nothing fabric-wide deploy: one program on every switch.

        Quotas charge the *fabric-wide* footprint (entries and buckets
        summed across nodes — a fabric deploy really does consume that
        much hardware).  A quota breach after install rolls the program
        back off every switch before the error propagates, preserving the
        deploy's atomicity from the tenant's point of view.
        """
        from .tenants import TenantProgram

        source = self._require(params, "source")
        tenant = self.tenants.get(tenant_name)
        tenant.check_admission(entries=0, memory_buckets=0)
        options = compile_options_from_params(params)
        program = self.fabric.deploy(
            source, program_name=params.get("program"), options=options
        )
        entries = sum(program.stats["entries_per_node"].values())
        buckets = 0
        for node, handle in program.handles.items():
            record = self.fabric.topology.nodes[node].controller.manager.get(
                handle.program_id
            )
            buckets += sum(alloc.size for alloc in record.memory.values())
        try:
            tenant.check_admission(entries=entries, memory_buckets=buckets)
        except Exception:
            self.fabric.revoke(program)
            raise
        tenant.charge(
            TenantProgram(program.program_id, program.name, entries, buckets)
        )
        return {
            "program_id": program.program_id,
            "name": program.name,
            "entries": entries,
            "nodes": {n: h.program_id for n, h in program.handles.items()},
            "entries_per_node": dict(program.stats["entries_per_node"]),
            "update_ms": dict(program.stats["update_ms"]),
        }

    def _rpc_revoke(self, tenant_name: str, params: dict) -> dict:
        program_id = self._program_id(tenant_name, params)
        self._require_running(program_id)
        if self.fabric is not None:
            delays = self.fabric.revoke(program_id)
            self.tenants.get(tenant_name).release(program_id)
            return {"program_id": program_id, "update_ms_per_node": delays}
        delay_ms = self.controller.revoke(program_id)
        self.tenants.get(tenant_name).release(program_id)
        self._cases = {
            key: value
            for key, value in self._cases.items()
            if value[0] != program_id
        }
        return {"program_id": program_id, "update_ms": delay_ms}

    def _rpc_add_case(self, tenant_name: str, params: dict) -> dict:
        program_id = self._program_id(tenant_name, params)
        self._require_running(program_id)
        if self.fabric is not None:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                "incremental cases are not supported fabric-wide; "
                "use the FabricController API directly",
            )
        conditions = [tuple(c) for c in self._require(params, "conditions")]
        case = self.controller.add_case(
            program_id,
            conditions,
            branch_index=params.get("branch_index", 0),
            template_case=params.get("template_case", 0),
            loadi_values=params.get("loadi_values"),
        )
        case_id = self._next_case_id
        self._next_case_id += 1
        self._cases[(tenant_name, case_id)] = (program_id, case)
        return {"case_id": case_id, "branch_id": case.branch_id}

    def _rpc_remove_case(self, tenant_name: str, params: dict) -> dict:
        program_id = self._program_id(tenant_name, params)
        self._require_running(program_id)
        if self.fabric is not None:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                "incremental cases are not supported fabric-wide; "
                "use the FabricController API directly",
            )
        case_id = self._require(params, "case_id")
        entry = self._cases.get((tenant_name, case_id))
        if entry is None or entry[0] != program_id:
            raise ServiceError(
                ErrorCode.NOT_FOUND,
                f"tenant {tenant_name!r} has no case {case_id} on program {program_id}",
            )
        self.controller.remove_case(program_id, entry[1])
        del self._cases[(tenant_name, case_id)]
        return {"case_id": case_id}

    def _rpc_write_mem(self, tenant_name: str, params: dict) -> dict:
        program_id = self._program_id(tenant_name, params)
        if self.fabric is not None:
            self.fabric.write_memory(
                program_id,
                self._require(params, "mid"),
                self._require(params, "vaddr"),
                self._require(params, "value"),
            )
            return {}
        self.controller.write_memory(
            program_id,
            self._require(params, "mid"),
            self._require(params, "vaddr"),
            self._require(params, "value"),
        )
        return {}

    #: hard cap on packets per inject request (keeps one RPC from
    #: monopolizing the admission queue)
    MAX_INJECT_PACKETS = 65536

    def _rpc_inject(self, tenant_name: str, params: dict) -> dict:
        """Drive a batch of packets through the data plane's fast path.

        Each spec in ``packets`` is ``{"kind": ..., "count": N, ...}`` with
        kind-specific fields (see :mod:`repro.rmt.packet` constructors).
        Returns verdict counts and the measured packet rate, making the
        batch path reachable over the wire for load tests and benchmarks.
        In fabric mode each spec may name its ingress ``leaf`` (default:
        the first leaf) and the response accounts deliveries and drops by
        cause instead of raw verdicts.
        """
        if self.fabric is not None:
            return self._fabric_inject(params)
        if self.dataplane is None:
            raise ServiceError(
                ErrorCode.BAD_REQUEST, "service has no data-plane binding"
            )
        specs = self._require(params, "packets")
        if not isinstance(specs, list) or not specs:
            raise ServiceError(
                ErrorCode.BAD_REQUEST, "packets must be a non-empty list"
            )
        batch = []
        for spec in specs:
            if not isinstance(spec, dict):
                raise ServiceError(ErrorCode.BAD_REQUEST, "packet spec must be an object")
            count = spec.get("count", 1)
            if not isinstance(count, int) or count < 1:
                raise ServiceError(ErrorCode.BAD_REQUEST, "count must be a positive integer")
            if len(batch) + count > self.MAX_INJECT_PACKETS:
                raise ServiceError(
                    ErrorCode.BAD_REQUEST,
                    f"inject batch exceeds {self.MAX_INJECT_PACKETS} packets",
                )
            template = _build_packet(spec)
            batch.append(template)
            for _ in range(count - 1):
                batch.append(template.clone())
        started = time.perf_counter()
        verdicts: dict[str, int] = {}
        recirculations = 0
        if self.engine is not None:
            # Sharded path: the engine returns lightweight (verdict,
            # egress_port, recirculations) tuples in arrival order.
            outcomes = self.engine.inject(batch, mode="verdicts")
            elapsed = time.perf_counter() - started
            for verdict, _port, recircs in outcomes:
                verdicts[verdict] = verdicts.get(verdict, 0) + 1
                recirculations += recircs
            processed = len(outcomes)
        else:
            results = self.dataplane.process_many(batch)
            elapsed = time.perf_counter() - started
            for result in results:
                verdicts[result.verdict.value] = (
                    verdicts.get(result.verdict.value, 0) + 1
                )
                recirculations += result.recirculations
            processed = len(results)
        response = {
            "processed": processed,
            "verdicts": verdicts,
            "recirculations": recirculations,
            "elapsed_ms": elapsed * 1e3,
            "pps": processed / elapsed if elapsed > 0 else 0.0,
        }
        if self.engine is not None:
            response["workers"] = self.engine.num_workers
            shard_counts = list(
                self.engine.last_inject_stats.get("shard_counts", [])
            )
            response["shard_counts"] = shard_counts
            self._note_placement_skew(shard_counts)
            if self.rebalance_threshold is not None:
                report = self.engine.maybe_rebalance(self.rebalance_threshold)
                if report is not None and report.get("triggered"):
                    self.metrics.counter("engine.rebalance.auto").inc()
                    for migration in report.get("migrations", ()):
                        self._note_migration(migration)
                    response["rebalanced"] = {
                        "skew_before": report.get("skew_before"),
                        "migrations": len(report.get("migrations", ())),
                        "reweighted": report.get("reweighted", False),
                    }
        return response

    #: fraction of routed flows on one shard above which a pinned-owner
    #: placement counts as pathologically skewed (the worst case: every
    #: flow of a pinned program lands on its owner shard)
    PLACEMENT_SKEW_WARN = 0.8

    def _note_placement_skew(self, shard_counts: list) -> None:
        """Publish placement skew from the last engine inject.

        ``engine.placement_skew`` gauges the hottest shard's share of the
        routed flows; when it crosses :data:`PLACEMENT_SKEW_WARN` *and*
        some program is pinned to a shard (the only placement mode that
        defeats hash spreading), a structured warning counter increments
        so operators see it in the ``metrics`` RPC without log scraping.
        """
        total = sum(shard_counts)
        if len(shard_counts) < 2 or total == 0:
            return
        hottest = max(range(len(shard_counts)), key=shard_counts.__getitem__)
        skew = shard_counts[hottest] / total
        self.metrics.gauge("engine.placement_skew").set(round(skew, 4))
        self.metrics.gauge("engine.placement_skew_shard").set(hottest)
        placement = getattr(self.engine, "placement", None) or {}
        pinned = any(shard is not None for shard in placement.values())
        if skew > self.PLACEMENT_SKEW_WARN and pinned:
            self.metrics.counter("engine.placement_skew_warnings").inc()

    def _fabric_inject(self, params: dict) -> dict:
        """Fabric inject: drive packet specs through the fabric engine."""
        specs = self._require(params, "packets")
        if not isinstance(specs, list) or not specs:
            raise ServiceError(
                ErrorCode.BAD_REQUEST, "packets must be a non-empty list"
            )
        leaves = self.fabric.topology.leaves
        assignments = []
        for spec in specs:
            if not isinstance(spec, dict):
                raise ServiceError(ErrorCode.BAD_REQUEST, "packet spec must be an object")
            count = spec.get("count", 1)
            if not isinstance(count, int) or count < 1:
                raise ServiceError(ErrorCode.BAD_REQUEST, "count must be a positive integer")
            if len(assignments) + count > self.MAX_INJECT_PACKETS:
                raise ServiceError(
                    ErrorCode.BAD_REQUEST,
                    f"inject batch exceeds {self.MAX_INJECT_PACKETS} packets",
                )
            leaf = spec.get("leaf", leaves[0])
            if leaf not in leaves:
                raise ServiceError(
                    ErrorCode.BAD_REQUEST, f"unknown ingress leaf {leaf!r}"
                )
            template = _build_packet(spec)
            assignments.append((leaf, template))
            for _ in range(count - 1):
                assignments.append((leaf, template.clone()))
        started = time.perf_counter()
        report = self.fabric.fabric.run(assignments)
        elapsed = time.perf_counter() - started
        return {
            "processed": report.injected,
            "delivered": report.delivered,
            "drops": dict(report.drops),
            "reorders": report.reorders,
            "elapsed_ms": elapsed * 1e3,
            "pps": report.injected / elapsed if elapsed > 0 else 0.0,
        }

    # -- elastic engine RPCs ------------------------------------------------------
    def _require_engine(self):
        if self.engine is None:
            raise ServiceError(
                ErrorCode.BAD_REQUEST, "service has no sharded engine"
            )
        return self.engine

    def _note_migration(self, report: dict) -> None:
        """Feed one migration report into the wall-latency histograms."""
        self.metrics.counter("engine.migration.completed").inc()
        self.metrics.histogram("engine.migration.quiesce_ms").observe(
            report.get("quiesce_ms", 0.0)
        )
        self.metrics.histogram("engine.migration.flip_ms").observe(
            report.get("flip_ms", 0.0)
        )

    def _rpc_scale(self, tenant_name: str, params: dict) -> dict:
        """Grow or shrink the engine's worker fleet to ``workers``.

        New workers bootstrap from the coordinator's provisioning and
        merged register state; departing workers migrate their pinned
        programs away and have their counters harvested, so aggregate
        statistics never regress.  The consistent-hash ring remaps only
        ~1/N of hash-routed flows per step.
        """
        engine = self._require_engine()
        workers = self._require(params, "workers")
        if not isinstance(workers, int) or workers < 1:
            raise ServiceError(
                ErrorCode.BAD_REQUEST, "workers must be a positive integer"
            )
        if self.min_workers is not None and workers < self.min_workers:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"workers below the service floor of {self.min_workers}",
            )
        if self.max_workers is not None and workers > self.max_workers:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"workers above the service ceiling of {self.max_workers}",
            )
        added: list[int] = []
        removed: list[int] = []
        while engine.num_workers < workers:
            added.append(engine.add_worker())
        while engine.num_workers > workers:
            removed.append(engine.remove_worker())
        self.metrics.gauge("engine.workers").set(engine.num_workers)
        return {
            "workers": engine.num_workers,
            "worker_ids": engine.worker_ids,
            "added": added,
            "removed": removed,
        }

    def _rpc_migrate(self, tenant_name: str, params: dict) -> dict:
        """Live-migrate one pinned program to another shard (default:
        the least-loaded peer).  Zero packets dropped or reordered: the
        program's flows park during the quiesce and replay after the
        placement flip."""
        engine = self._require_engine()
        program_id = self._program_id(tenant_name, params)
        target = params.get("target")
        if target is not None and not isinstance(target, int):
            raise ServiceError(ErrorCode.BAD_REQUEST, "target must be a worker id")
        report = engine.migrate(program_id, target)
        self._note_migration(report)
        return report

    def _rpc_rebalance(self, tenant_name: str, params: dict) -> dict:
        """Run the load-aware rebalancer once: migrate hot pinned
        programs and reweight the hash ring when the skew threshold is
        exceeded."""
        engine = self._require_engine()
        threshold = params.get("threshold", 0.7)
        if not isinstance(threshold, (int, float)) or not 0.0 < threshold <= 1.0:
            raise ServiceError(
                ErrorCode.BAD_REQUEST, "threshold must be in (0, 1]"
            )
        report = engine.rebalance(float(threshold))
        if report.get("triggered"):
            self.metrics.counter("engine.rebalance.triggered").inc()
            for migration in report.get("migrations", ()):
                self._note_migration(migration)
        return report

    def _rpc_set_quota(self, tenant_name: str, params: dict) -> dict:
        target = params.get("tenant", tenant_name)
        quota = TenantQuota(
            max_programs=params.get("max_programs"),
            max_memory_buckets=params.get("max_memory_buckets"),
            max_table_entries=params.get("max_table_entries"),
        )
        self.tenants.set_quota(target, quota)
        return {"tenant": target, "quota": quota.__dict__}

    # -- read-only RPCs ---------------------------------------------------------
    def _rpc_ping(self, tenant_name: str, params: dict) -> dict:
        if self.fabric is not None:
            topo = self.fabric.topology
            return {
                "version": PROTOCOL_VERSION,
                "draining": self.draining,
                "programs": len(self.fabric.programs),
                "workers": 0,
                "fabric": {
                    "leaves": len(topo.leaves),
                    "spines": len(topo.spines),
                    "routing": self.fabric.fabric.routing,
                },
            }
        return {
            "version": PROTOCOL_VERSION,
            "draining": self.draining,
            "programs": len(self.controller.running_programs()),
            "workers": self.engine.num_workers if self.engine is not None else 0,
        }

    def _rpc_list(self, tenant_name: str, params: dict) -> dict:
        if self.fabric is not None:
            listing = self.fabric.list_programs()
        else:
            listing = self.controller.list_programs()
        if params.get("all"):
            for info in listing:
                info["tenant"] = self.tenants.owner_of(info["program_id"])
            return {"programs": listing}
        tenant = self.tenants.get(tenant_name)
        return {"programs": [p for p in listing if tenant.owns(p["program_id"])]}

    def _rpc_stats(self, tenant_name: str, params: dict) -> dict:
        if self.fabric is not None:
            # Fabric-wide breakdown: per-switch pipeline counters and
            # per-link drops by cause; with a program_id, that program's
            # per-node and summed counters too.
            stats = self.fabric.stats()
            if params.get("program_id") is not None:
                program_id = self._program_id(tenant_name, params)
                stats["program"] = self.fabric.program_stats(program_id)
            return stats
        if params.get("program_id") is None:
            # Service-wide overview: engine mode reports the aggregated
            # shard totals plus the migration section (so ``p4runpro
            # client stats`` surfaces elastic-fleet health without
            # naming a program); single-process mode reports the data
            # plane's own counters.
            if self.engine is not None:
                engine_stats = self.engine.stats()
                return {
                    "workers": engine_stats["workers"],
                    "worker_ids": engine_stats["worker_ids"],
                    "totals": engine_stats["totals"],
                    "migration": engine_stats["migration"],
                    "transport": engine_stats["transport"],
                }
            if self.dataplane is not None:
                return {"dataplane": self.dataplane.stats()}
            raise ServiceError(ErrorCode.BAD_REQUEST, "missing param 'program_id'")
        program_id = self._program_id(tenant_name, params)
        stats = self.controller.program_stats(program_id)
        flow_cache = self._flow_cache_stats()
        if flow_cache is not None:
            stats["flow_cache"] = flow_cache
        codegen = self._codegen_stats()
        if codegen is not None:
            stats["codegen"] = codegen
        return stats

    def _flow_cache_stats(self) -> dict | None:
        """Data-plane flow-cache counters (aggregated in engine mode)."""
        if self.engine is not None:
            return self.engine.stats()["totals"].get("flow_cache")
        cache = getattr(self.dataplane, "flow_cache", None)
        return cache.stats() if cache is not None else None

    def _codegen_stats(self) -> dict | None:
        """Codegen-tier counters (aggregated in engine mode)."""
        if self.engine is not None:
            return self.engine.stats()["totals"].get("codegen")
        cache = getattr(self.dataplane, "codegen", None)
        return cache.stats() if cache is not None else None

    def _rpc_read_mem(self, tenant_name: str, params: dict) -> dict:
        program_id = self._program_id(tenant_name, params)
        if self.fabric is not None:
            # Cross-device read: the merged value (per MERGE_SEMANTICS)
            # as "value", with the per-node breakdown alongside.
            merged = self.fabric.read_memory(
                program_id,
                self._require(params, "mid"),
                self._require(params, "vaddr"),
            )
            return {
                "value": merged["aggregate"],
                "kind": merged["kind"],
                "per_node": merged["per_node"],
            }
        value = self.controller.read_memory(
            program_id, self._require(params, "mid"), self._require(params, "vaddr")
        )
        return {"value": value}

    def _rpc_snapshot(self, tenant_name: str, params: dict) -> dict:
        program_id = self._program_id(tenant_name, params)
        if self.fabric is not None:
            merged = self.fabric.snapshot_memory(
                program_id, self._require(params, "mid")
            )
            return {
                "values": merged["aggregate"],
                "kind": merged["kind"],
                "per_node": merged["per_node"],
            }
        values = self.controller.snapshot_memory(program_id, self._require(params, "mid"))
        return {"values": values}

    def _rpc_utilization(self, tenant_name: str, params: dict) -> dict:
        if self.fabric is not None:
            per_node = {}
            for name, node in self.fabric.topology.nodes.items():
                util = node.controller.utilization()
                util["per_rpb"] = node.controller.manager.utilization_snapshot()
                per_node[name] = util
            return {"per_node": per_node}
        util = self.controller.utilization()
        util["per_rpb"] = self.controller.manager.utilization_snapshot()
        return util

    def _rpc_tenants(self, tenant_name: str, params: dict) -> dict:
        return {
            "tenants": [
                {"name": t.name, "quota": t.quota.__dict__, "usage": t.usage()}
                for t in self.tenants.tenants()
            ]
        }

    def _rpc_metrics(self, tenant_name: str, params: dict) -> dict:
        from ..compiler import solver

        snapshot = self.metrics.snapshot()
        snapshot["audit_records"] = len(self.audit)
        if self.fabric is not None:
            snapshot["southbound_retries"] = {
                name: wrapper.stats.as_dict()
                for name, wrapper in self._node_retrying.items()
            }
            snapshot["caches"] = {"solver": solver.cache_stats()}
            snapshot["fabric"] = self.fabric.stats()
            return snapshot
        snapshot["southbound_retries"] = self.retrying.stats.as_dict()
        snapshot["caches"] = {
            "deploy_cache": self.controller.deploy_cache.stats(),
            "solver": solver.cache_stats(),
        }
        flow_cache = self._flow_cache_stats()
        if flow_cache is not None:
            snapshot["caches"]["flow_cache"] = flow_cache
        codegen = self._codegen_stats()
        if codegen is not None:
            snapshot["caches"]["codegen"] = codegen
        if self.engine is not None:
            snapshot["engine"] = {
                "workers": self.engine.num_workers,
                "worker_ids": self.engine.worker_ids,
                "migration": self.engine.migration_stats(),
                "transport": self.engine.transport_stats(),
            }
        return snapshot

    def _rpc_audit(self, tenant_name: str, params: dict) -> dict:
        limit = params.get("limit", 0)
        records = self.audit.tail(limit) if limit else self.audit.records()
        return {"records": [r.as_dict() for r in records]}

    def _rpc_fingerprint(self, tenant_name: str, params: dict) -> dict:
        if self.fabric is not None:
            prints = self.fabric.state_fingerprints()
            return {"fingerprint": prints.pop("combined"), "per_node": prints}
        return {"fingerprint": self.controller.manager.state_fingerprint()}

    # -- streaming ---------------------------------------------------------------
    def stream_stats(self, tenant_name: str, program_id: int | None = None) -> dict:
        """One sample for the ``stats`` subscription stream (never raises)."""
        if self.fabric is not None:
            return self.fabric.stats()
        sample: dict = {"programs": len(self.controller.running_programs())}
        if self.engine is not None:
            sample["dataplane"] = self.engine.stats()["totals"]
        elif self.dataplane is not None:
            sample["dataplane"] = self.dataplane.stats()
        if program_id is not None:
            try:
                self.tenants.get(tenant_name).require(program_id)
                sample["program"] = self.controller.program_stats(program_id)
            except Exception as exc:
                sample["program_error"] = str(exc)
        return sample


class _Connection:
    """Per-connection push state: the subscription channel.

    A ``subscribe`` RPC flips the connection into push mode — alongside
    the usual request/response exchange, a background task periodically
    writes server-initiated messages (``FRAME_EVENT`` frames on a binary
    connection, NDJSON lines with an ``event`` key otherwise).  Streams:

    * ``metrics`` — counter *deltas* since the previous push plus current
      gauges (cheap to diff client-side, no unbounded growth);
    * ``stats``  — control/data-plane sample from ``stream_stats``;
    * ``audit``  — live tail: records appended since the previous push.
    """

    SUBSCRIBE_STREAMS = ("metrics", "stats", "audit")
    MIN_INTERVAL_MS = 10.0

    def __init__(self, service: ControlService, writer):
        self.service = service
        self.writer = writer
        self.binary = False
        self._task: asyncio.Task | None = None
        self._streams: tuple[str, ...] = ()
        self._interval_s = 0.5
        self._seq = 0
        self._audit_pos = 0
        self._last_counters: dict[str, int] = {}
        self._stats_program: int | None = None
        self._tenant = "default"

    def subscribe(self, request: Request) -> dict:
        streams = request.params.get("streams") or ["stats"]
        if not isinstance(streams, list) or not streams:
            raise ServiceError(ErrorCode.BAD_REQUEST, "streams must be a non-empty list")
        unknown = [s for s in streams if s not in self.SUBSCRIBE_STREAMS]
        if unknown:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"unknown stream(s) {unknown!r}; expected subset of "
                f"{list(self.SUBSCRIBE_STREAMS)}",
            )
        interval_ms = request.params.get("interval_ms", 500)
        if not isinstance(interval_ms, (int, float)) or interval_ms < self.MIN_INTERVAL_MS:
            raise ServiceError(
                ErrorCode.BAD_REQUEST,
                f"interval_ms must be a number >= {self.MIN_INTERVAL_MS}",
            )
        self._streams = tuple(dict.fromkeys(streams))
        self._interval_s = interval_ms / 1e3
        self._tenant = request.tenant
        program_id = request.params.get("program_id")
        self._stats_program = program_id if isinstance(program_id, int) else None
        # Tail from "now": the subscriber sees what happens after the ack.
        self._audit_pos = len(self.service.audit)
        self._last_counters = dict(self.service.metrics.snapshot()["counters"])
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._push_loop())
        return {
            "streams": list(self._streams),
            "interval_ms": interval_ms,
            "push": "binary" if self.binary else "ndjson",
        }

    async def unsubscribe(self) -> dict:
        await self._cancel()
        return {"unsubscribed": True}

    async def aclose(self) -> None:
        await self._cancel()

    async def _cancel(self) -> None:
        task, self._task = self._task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
            except Exception:  # pragma: no cover - defensive
                pass

    async def _push_loop(self) -> None:
        try:
            while True:
                await asyncio.sleep(self._interval_s)
                for stream in self._streams:
                    data = self._build_event(stream)
                    if data is None:
                        continue
                    self._seq += 1
                    await self._send({"event": stream, "seq": self._seq, "data": data})
        except asyncio.CancelledError:
            raise
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            # Peer went away (or the loop is closing): stop pushing.
            pass

    def _build_event(self, stream: str):
        if stream == "audit":
            records = self.service.audit.records()[self._audit_pos :]
            self._audit_pos += len(records)
            if not records:
                return None
            return {"records": [r.as_dict() for r in records]}
        if stream == "metrics":
            snapshot = self.service.metrics.snapshot()
            counters = snapshot["counters"]
            delta = {
                name: value - self._last_counters.get(name, 0)
                for name, value in counters.items()
                if value != self._last_counters.get(name, 0)
            }
            self._last_counters = dict(counters)
            return {
                "counters_delta": delta,
                "gauges": snapshot["gauges"],
                "audit_records": len(self.service.audit),
            }
        return self.service.stream_stats(self._tenant, self._stats_program)

    async def _send(self, obj: dict) -> None:
        if self.binary:
            self.writer.write(encode_binary_frame(FRAME_EVENT, obj))
        else:
            self.writer.write(encode_frame(obj))
        await self.writer.drain()


class ServiceServer:
    """TCP front end: one asyncio stream server over a ControlService.

    Codec negotiation is first-byte sniffing (see
    :mod:`repro.service.wire`): a connection opening with the binary
    preamble speaks length-prefixed frames; anything else speaks NDJSON.
    """

    def __init__(self, service: ControlService | None = None, host: str = "127.0.0.1", port: int = 0):
        self.service = service or ControlService()
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_FRAME_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful drain: finish the in-flight write, then close."""
        await self.service.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def _handle_payload(self, payload, conn: _Connection) -> dict:
        """Dispatch one decoded envelope; subscription RPCs are handled at
        the transport layer (they need the connection), everything else
        goes to the service."""
        method = payload.get("method") if isinstance(payload, dict) else None
        if method in ("subscribe", "unsubscribe"):
            try:
                request = Request.from_wire(payload)
                if method == "subscribe":
                    result = conn.subscribe(request)
                else:
                    result = await conn.unsubscribe()
            except ServiceError as exc:
                return error_response(
                    payload.get("id") if isinstance(payload, dict) else None, exc
                )
            return ok_response(request.id, result)
        return await self.service.handle_payload(payload)

    async def _handle_connection(self, reader: asyncio.StreamReader, writer) -> None:
        conn = _Connection(self.service, writer)
        try:
            first = await reader.read(1)
            if first:
                if first == PREAMBLE[:1]:
                    await self._serve_binary(reader, writer, conn, first)
                else:
                    await self._serve_ndjson(reader, writer, conn, first)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            await conn.aclose()
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,  # event loop tearing down mid-close
            ):  # pragma: no cover
                pass

    async def _serve_ndjson(
        self, reader, writer, conn: _Connection, prefix: bytes
    ) -> None:
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                error = ServiceError(ErrorCode.PARSE_ERROR, "oversized frame")
                writer.write(encode_frame(error_response(None, error)))
                await writer.drain()
                break
            if prefix:
                line, prefix = prefix + line, b""
            if not line:
                break
            if not line.strip():
                continue
            try:
                payload = decode_frame(line)
            except ServiceError as exc:
                response = error_response(None, exc)
            else:
                response = await self._handle_payload(payload, conn)
            writer.write(encode_frame(response))
            await writer.drain()

    async def _serve_binary(
        self, reader, writer, conn: _Connection, first: bytes
    ) -> None:
        try:
            preamble = first + await reader.readexactly(len(PREAMBLE) - len(first))
        except asyncio.IncompleteReadError:
            return
        if preamble != PREAMBLE:
            error = ServiceError(
                ErrorCode.PARSE_ERROR,
                f"unsupported wire preamble {preamble!r}",
            )
            writer.write(encode_binary_frame(FRAME_RESPONSE, error_response(None, error)))
            await writer.drain()
            return
        conn.binary = True
        while True:
            try:
                header = await reader.readexactly(FRAME_HEADER.size)
            except asyncio.IncompleteReadError:
                break  # clean EOF (or truncated header): drop the connection
            kind, length = FRAME_HEADER.unpack(header)
            if kind != FRAME_REQUEST or length > MAX_FRAME_BYTES:
                message = (
                    "oversized frame"
                    if length > MAX_FRAME_BYTES
                    else f"unexpected frame kind {kind}"
                )
                error = ServiceError(ErrorCode.PARSE_ERROR, message)
                writer.write(
                    encode_binary_frame(FRAME_RESPONSE, error_response(None, error))
                )
                await writer.drain()
                break
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                break  # truncated mid-payload: drop the connection
            try:
                payload = decode_binary_frame(header + body)
            except ServiceError as exc:
                response = error_response(None, exc)
            else:
                response = await self._handle_payload(payload, conn)
            try:
                frame = encode_binary_frame(FRAME_RESPONSE, response)
            except ServiceError as exc:
                frame = encode_binary_frame(
                    FRAME_RESPONSE, error_response(response.get("id"), exc)
                )
            writer.write(frame)
            await writer.drain()


class ServerThread:
    """Runs a ServiceServer on a daemon thread (for synchronous callers).

    ::

        server = ServerThread(ControlService())
        server.start()                     # returns once the port is bound
        client = ServiceClient("127.0.0.1", server.port)
        ...
        server.stop()
    """

    def __init__(self, service: ControlService | None = None, host: str = "127.0.0.1", port: int = 0):
        self.service = service or ControlService()
        self.host = host
        self.port = port
        self._thread = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopped: asyncio.Event | None = None
        self._ready = None

    def start(self) -> "ServerThread":
        import threading

        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("control service failed to start within 10 s")
        return self

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        server = ServiceServer(self.service, self.host, self.port)
        await server.start()
        self.port = server.port
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._ready.set()
        await self._stopped.wait()
        await server.stop()

    def stop(self) -> None:
        if self._loop is not None and self._stopped is not None:
            self._loop.call_soon_threadsafe(self._stopped.set)
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


async def serve(
    host: str = "127.0.0.1",
    port: int = 9400,
    service: ControlService | None = None,
) -> None:
    """Run a control service until cancelled (the ``p4runpro serve`` entry)."""
    server = ServiceServer(service, host, port)
    await server.start()
    try:
        await server.serve_forever()
    except asyncio.CancelledError:  # graceful drain on cancellation
        await server.stop()
        raise
