"""Multi-tenant namespaces and admission quotas.

The controller itself is single-operator: program ids are global and any
caller may revoke anything.  The service layers tenancy on top (the
NetVRM-style virtualization the ROADMAP points at): every RPC carries a
tenant name, each tenant only sees and addresses its own programs, and a
deploy is admitted only if it fits the tenant's quota.  The program-count
quota is checked before the compiler runs (an over-quota tenant cannot
burn compile time on doomed work); the entry and memory-bucket quotas are
checked against the compiled program's actual footprint, before any
resource is reserved.

Quotas are three-dimensional, mirroring the resources the resource
manager tracks: program count, memory buckets, and table entries.
Accounting is charge/release exact: a deploy charges what the compiled
program actually uses, a revoke releases exactly what its deploy charged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .protocol import ErrorCode, ServiceError


class QuotaExceededError(ServiceError):
    """Raised when an admission would take a tenant over quota."""

    def __init__(self, tenant: str, dimension: str, used, requested, limit):
        super().__init__(
            ErrorCode.QUOTA_EXCEEDED,
            f"tenant {tenant!r} over {dimension} quota: "
            f"{used} used + {requested} requested > {limit} allowed",
        )
        self.dimension = dimension


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits (None = unlimited)."""

    max_programs: int | None = 8
    max_memory_buckets: int | None = 65536
    max_table_entries: int | None = 512

    @classmethod
    def unlimited(cls) -> "TenantQuota":
        return cls(None, None, None)


@dataclass
class TenantProgram:
    """What one deployed program costs its tenant."""

    program_id: int
    name: str
    entries: int
    memory_buckets: int


@dataclass
class Tenant:
    """One namespace: its quota and its live programs."""

    name: str
    quota: TenantQuota
    programs: dict[int, TenantProgram] = field(default_factory=dict)

    @property
    def used_programs(self) -> int:
        return len(self.programs)

    @property
    def used_memory_buckets(self) -> int:
        return sum(p.memory_buckets for p in self.programs.values())

    @property
    def used_entries(self) -> int:
        return sum(p.entries for p in self.programs.values())

    def check_admission(self, entries: int, memory_buckets: int) -> None:
        """Raise :class:`QuotaExceededError` if one more program with the
        given footprint would not fit."""
        quota = self.quota
        if quota.max_programs is not None and self.used_programs + 1 > quota.max_programs:
            raise QuotaExceededError(
                self.name, "program", self.used_programs, 1, quota.max_programs
            )
        if (
            quota.max_memory_buckets is not None
            and self.used_memory_buckets + memory_buckets > quota.max_memory_buckets
        ):
            raise QuotaExceededError(
                self.name,
                "memory-bucket",
                self.used_memory_buckets,
                memory_buckets,
                quota.max_memory_buckets,
            )
        if (
            quota.max_table_entries is not None
            and self.used_entries + entries > quota.max_table_entries
        ):
            raise QuotaExceededError(
                self.name, "table-entry", self.used_entries, entries, quota.max_table_entries
            )

    def charge(self, program: TenantProgram) -> None:
        self.programs[program.program_id] = program

    def release(self, program_id: int) -> TenantProgram:
        program = self.programs.pop(program_id, None)
        if program is None:
            raise ServiceError(
                ErrorCode.NOT_FOUND,
                f"tenant {self.name!r} owns no program with id {program_id}",
            )
        return program

    def owns(self, program_id: int) -> bool:
        return program_id in self.programs

    def require(self, program_id: int) -> TenantProgram:
        """Ownership check: tenants cannot address other namespaces."""
        program = self.programs.get(program_id)
        if program is None:
            raise ServiceError(
                ErrorCode.NOT_FOUND,
                f"tenant {self.name!r} owns no program with id {program_id}",
            )
        return program

    def usage(self) -> dict:
        return {
            "programs": self.used_programs,
            "memory_buckets": self.used_memory_buckets,
            "table_entries": self.used_entries,
        }


class TenantRegistry:
    """All namespaces the service knows, created on first use.

    ``default_quota`` applies to tenants the operator never configured;
    :meth:`set_quota` pins a specific tenant's limits (takes effect for
    future admissions only — already-running programs are never evicted).
    """

    def __init__(self, default_quota: TenantQuota | None = None):
        self.default_quota = default_quota or TenantQuota()
        self._tenants: dict[str, Tenant] = {}

    def get(self, name: str) -> Tenant:
        tenant = self._tenants.get(name)
        if tenant is None:
            tenant = Tenant(name, self.default_quota)
            self._tenants[name] = tenant
        return tenant

    def set_quota(self, name: str, quota: TenantQuota) -> None:
        self.get(name).quota = quota

    def tenants(self) -> list[Tenant]:
        return [self._tenants[name] for name in sorted(self._tenants)]

    def owner_of(self, program_id: int) -> str | None:
        for tenant in self._tenants.values():
            if tenant.owns(program_id):
                return tenant.name
        return None
