"""repro.service — the multi-tenant northbound control service.

The paper's operator interface is a single-user CLI over an in-process
:class:`~repro.controlplane.Controller`.  This package is the layer a
production deployment puts between operators and the switch (cf. RBFRT
and the P4ContainerFlow control plane): a long-lived asyncio daemon that
serves many tenants over a newline-delimited JSON-RPC protocol, with

* per-tenant namespaces and admission quotas (:mod:`.tenants`),
* an admission queue serializing compiler/allocator access while reads
  stay concurrent, per-request deadlines, and graceful drain
  (:mod:`.server`),
* bounded-retry/exponential-backoff southbound robustness
  (:mod:`.robustness`),
* a structured audit journal whose replay reconstructs controller state,
  plus counters and latency histograms (:mod:`.audit`, :mod:`.metrics`).

Start one with ``p4runpro serve`` or::

    from repro.service import ControlService, ServerThread, ServiceClient

    with ServerThread(ControlService()) as server:
        client = ServiceClient(port=server.port, tenant="alice")
        info = client.deploy(source)
        client.revoke(info["program_id"])
"""

from .audit import AuditLog, AuditRecord, replay
from .client import AsyncServiceClient, ServiceClient
from .metrics import Counter, Histogram, MetricsRegistry
from .protocol import (
    PROTOCOL_VERSION,
    ErrorCode,
    Request,
    ServiceError,
    decode_frame,
    encode_frame,
)
from .robustness import RetryingBinding, RetryPolicy, RetryStats
from .server import ControlService, ServerThread, ServiceServer, serve
from .tenants import (
    QuotaExceededError,
    Tenant,
    TenantProgram,
    TenantQuota,
    TenantRegistry,
)

__all__ = [
    "AsyncServiceClient",
    "AuditLog",
    "AuditRecord",
    "ControlService",
    "Counter",
    "ErrorCode",
    "Histogram",
    "MetricsRegistry",
    "PROTOCOL_VERSION",
    "QuotaExceededError",
    "Request",
    "RetryPolicy",
    "RetryStats",
    "RetryingBinding",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "Tenant",
    "TenantProgram",
    "TenantQuota",
    "TenantRegistry",
    "decode_frame",
    "encode_frame",
    "replay",
    "serve",
]
