"""Lightweight in-process metrics: counters and latency histograms.

Prometheus-shaped but dependency-free.  Every RPC the server handles
increments ``rpc.<method>.<outcome>`` and observes its wall-clock latency
in ``rpc.<method>.latency_ms``; the ``metrics`` RPC returns the whole
registry as one JSON snapshot, so a scraper (or the benchmark harness)
needs nothing beyond the service's own wire protocol.

Histograms use fixed logarithmic bucket bounds.  Quantiles are estimated
by linear interpolation inside the winning bucket — coarse, but stable
memory (no reservoir) and accurate enough to track p50/p99 trends across
PRs.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

#: Default latency bounds (ms): ~exponential from 50us to 10s.
DEFAULT_BOUNDS = (
    0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
    1000, 2500, 5000, 10000,
)


@dataclass
class Counter:
    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time measurement (last write wins, unlike a Counter)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Fixed-bucket histogram with count/sum/min/max and quantile estimates."""

    name: str
    bounds: tuple = DEFAULT_BOUNDS
    counts: list[int] = field(default_factory=list)
    total: int = 0
    sum: float = 0.0
    min: float | None = None
    max: float | None = None

    def __post_init__(self) -> None:
        if not self.counts:
            # one bucket per bound plus the +inf overflow bucket
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        self.counts[index] += 1
        self.total += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def quantile(self, q: float) -> float | None:
        """Estimated q-quantile (0 < q <= 1); None when empty."""
        if self.total == 0:
            return None
        rank = q * self.total
        seen = 0.0
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            if seen + count >= rank:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else (self.max if self.max is not None else lower)
                )
                fraction = (rank - seen) / count
                return lower + (upper - lower) * fraction
            seen += count
        return self.max

    @property
    def mean(self) -> float | None:
        return self.sum / self.total if self.total else None

    def as_dict(self) -> dict:
        return {
            "count": self.total,
            "sum_ms": round(self.sum, 4),
            "mean": round(self.mean, 4) if self.total else None,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named counters and histograms, created on first touch."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = Gauge(name)
            self._gauges[name] = gauge
        return gauge

    def histogram(self, name: str, bounds: tuple = DEFAULT_BOUNDS) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(name, bounds)
            self._histograms[name] = histogram
        return histogram

    def snapshot(self) -> dict:
        """The whole registry as one JSON-serializable mapping."""
        return {
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].as_dict()
                for name in sorted(self._histograms)
            },
        }
