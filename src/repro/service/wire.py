"""Binary wire codec for the control plane (RBFRT-style fast path).

A length-prefixed frame format with a msgpack-style payload encoding,
pure stdlib (``struct`` + bytes), shared by the northbound service (as
the negotiated alternative to NDJSON framing) and the engine's
coordinator→worker southbound pipes (replacing per-command pickling).

Connection negotiation
----------------------

A binary client opens with the 5-byte preamble ``b"P4RB" + version``.
The server sniffs the first byte of a connection: ``0x50`` (``"P"``)
selects binary framing, anything else — NDJSON starts with ``"{"`` —
falls back to the line protocol, so existing clients keep working
unchanged.

Frame format
------------

Every message after the preamble is one frame::

    !B  kind        (FRAME_REQUEST / FRAME_RESPONSE / FRAME_EVENT)
    !I  length      payload byte count
    ... payload     one encoded value

Payload encoding
----------------

One tag byte per value, big-endian fixed-width scalars, 4-byte lengths
for variable-size values (a deliberate simplification of msgpack's
variable-width headers — control-plane frames are not space-critical,
and fixed widths keep the pure-Python encoder fast):

======  ========================================================
0xC0    None
0xC2    False
0xC3    True
0xC6    bytes          (!I length + raw bytes)
0xC7    pickle ext     (!I length + pickle blob; opt-in, see below)
0xCB    float64        (!d)
0xD3    int64          (!q)
0xD9    bigint         (!I length + signed big-endian bytes)
0xDB    str            (!I length + UTF-8)
0xDD    list           (!I count + items)
0xDE    tuple          (!I count + items; only with preserve_tuples)
0xDF    dict           (!I count + alternating key/value items)
======  ========================================================

The pickle extension exists for the *southbound* pipes only, where both
ends are processes of one engine and already exchange pickles today.  It
is disabled by default and the northbound service never enables it on
decode — a pickle tag from an untrusted client is a protocol error, not
a code path.  ``preserve_tuples`` likewise serves the southbound, where
command payloads are tuple-shaped; the northbound sticks to the JSON
data model (tuples encode as lists) so both codecs carry identical
requests.
"""

from __future__ import annotations

import pickle
import struct

MAGIC = b"P4RB"
WIRE_VERSION = 1
#: the full client preamble that selects binary framing
PREAMBLE = MAGIC + bytes([WIRE_VERSION])

FRAME_REQUEST = 1
FRAME_RESPONSE = 2
FRAME_EVENT = 3
_FRAME_KINDS = frozenset({FRAME_REQUEST, FRAME_RESPONSE, FRAME_EVENT})

FRAME_HEADER = struct.Struct("!BI")

#: refuse frames larger than this on decode (mirrors the NDJSON limit)
DEFAULT_MAX_FRAME_BYTES = 4 * 1024 * 1024


class WireError(ValueError):
    """Malformed or oversized binary wire data."""


_TAG_NONE = 0xC0
_TAG_FALSE = 0xC2
_TAG_TRUE = 0xC3
_TAG_BYTES = 0xC6
_TAG_PICKLE = 0xC7
_TAG_FLOAT = 0xCB
_TAG_INT64 = 0xD3
_TAG_BIGINT = 0xD9
_TAG_STR = 0xDB
_TAG_LIST = 0xDD
_TAG_TUPLE = 0xDE
_TAG_DICT = 0xDF

_I64 = struct.Struct("!Bq")
_F64 = struct.Struct("!Bd")
_LEN = struct.Struct("!BI")
_U32 = struct.Struct("!I")
_Q = struct.Struct("!q")
_D = struct.Struct("!d")

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def _encode_into(out: bytearray, obj, preserve_tuples: bool, allow_pickle: bool) -> None:
    # Exact-type dispatch first (covers the hot paths and sidesteps the
    # bool-is-int trap); isinstance fallbacks below catch str/int enums
    # and other well-behaved subclasses.
    t = type(obj)
    if t is str:
        data = obj.encode("utf-8")
        out += _LEN.pack(_TAG_STR, len(data))
        out += data
    elif t is int:
        if _INT64_MIN <= obj <= _INT64_MAX:
            out += _I64.pack(_TAG_INT64, obj)
        else:
            data = obj.to_bytes((obj.bit_length() + 8) // 8, "big", signed=True)
            out += _LEN.pack(_TAG_BIGINT, len(data))
            out += data
    elif t is dict:
        out += _LEN.pack(_TAG_DICT, len(obj))
        for key, value in obj.items():
            _encode_into(out, key, preserve_tuples, allow_pickle)
            _encode_into(out, value, preserve_tuples, allow_pickle)
    elif t is list:
        out += _LEN.pack(_TAG_LIST, len(obj))
        for item in obj:
            _encode_into(out, item, preserve_tuples, allow_pickle)
    elif t is tuple:
        out += _LEN.pack(_TAG_TUPLE if preserve_tuples else _TAG_LIST, len(obj))
        for item in obj:
            _encode_into(out, item, preserve_tuples, allow_pickle)
    elif obj is None:
        out.append(_TAG_NONE)
    elif t is bool:
        out.append(_TAG_TRUE if obj else _TAG_FALSE)
    elif t is float:
        out += _F64.pack(_TAG_FLOAT, obj)
    elif t is bytes or t is bytearray or t is memoryview:
        out += _LEN.pack(_TAG_BYTES, len(obj))
        out += obj
    elif isinstance(obj, bool):
        out.append(_TAG_TRUE if obj else _TAG_FALSE)
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        out += _LEN.pack(_TAG_STR, len(data))
        out += data
    elif isinstance(obj, int):
        _encode_into(out, int(obj), preserve_tuples, allow_pickle)
    elif isinstance(obj, float):
        out += _F64.pack(_TAG_FLOAT, float(obj))
    elif isinstance(obj, (list, tuple)):
        _encode_into(
            out,
            list(obj) if not isinstance(obj, tuple) else tuple(obj),
            preserve_tuples,
            allow_pickle,
        )
    elif isinstance(obj, dict):
        _encode_into(out, dict(obj), preserve_tuples, allow_pickle)
    elif allow_pickle:
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        out += _LEN.pack(_TAG_PICKLE, len(data))
        out += data
    else:
        raise WireError(f"cannot encode {type(obj).__name__} without allow_pickle")


def encode_payload(
    obj,
    *,
    preserve_tuples: bool = False,
    allow_pickle: bool = False,
    out: bytearray | None = None,
) -> bytes | bytearray:
    """Encode one value; pass ``out`` to append into a reusable buffer
    (cleared first) instead of allocating a fresh one."""
    if out is None:
        out = bytearray()
    else:
        out.clear()
    _encode_into(out, obj, preserve_tuples, allow_pickle)
    return out


def _decode(buf, pos: int, end: int, allow_pickle: bool):
    if pos >= end:
        raise WireError("truncated payload")
    tag = buf[pos]
    pos += 1
    if tag == _TAG_STR:
        if pos + 4 > end:
            raise WireError("truncated payload")
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        if pos + n > end:
            raise WireError("truncated payload")
        return str(buf[pos : pos + n], "utf-8"), pos + n
    if tag == _TAG_INT64:
        if pos + 8 > end:
            raise WireError("truncated payload")
        return _Q.unpack_from(buf, pos)[0], pos + 8
    if tag == _TAG_DICT:
        if pos + 4 > end:
            raise WireError("truncated payload")
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        result = {}
        for _ in range(n):
            key, pos = _decode(buf, pos, end, allow_pickle)
            value, pos = _decode(buf, pos, end, allow_pickle)
            result[key] = value
        return result, pos
    if tag == _TAG_LIST or tag == _TAG_TUPLE:
        if pos + 4 > end:
            raise WireError("truncated payload")
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        items = []
        for _ in range(n):
            item, pos = _decode(buf, pos, end, allow_pickle)
            items.append(item)
        return (tuple(items) if tag == _TAG_TUPLE else items), pos
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag == _TAG_FLOAT:
        if pos + 8 > end:
            raise WireError("truncated payload")
        return _D.unpack_from(buf, pos)[0], pos + 8
    if tag == _TAG_BYTES:
        if pos + 4 > end:
            raise WireError("truncated payload")
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        if pos + n > end:
            raise WireError("truncated payload")
        return bytes(buf[pos : pos + n]), pos + n
    if tag == _TAG_BIGINT:
        if pos + 4 > end:
            raise WireError("truncated payload")
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        if pos + n > end:
            raise WireError("truncated payload")
        return int.from_bytes(buf[pos : pos + n], "big", signed=True), pos + n
    if tag == _TAG_PICKLE:
        if not allow_pickle:
            raise WireError("pickle extension not allowed on this channel")
        if pos + 4 > end:
            raise WireError("truncated payload")
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        if pos + n > end:
            raise WireError("truncated payload")
        return pickle.loads(bytes(buf[pos : pos + n])), pos + n
    raise WireError(f"unknown wire tag 0x{tag:02X}")


def decode_payload(data, *, allow_pickle: bool = False):
    """Decode one encoded value; raises :class:`WireError` on malformed,
    truncated, or trailing data."""
    value, pos = _decode(data, 0, len(data), allow_pickle)
    if pos != len(data):
        raise WireError(f"trailing bytes after payload ({len(data) - pos})")
    return value


def encode_wire_frame(
    kind: int,
    obj,
    *,
    preserve_tuples: bool = False,
    allow_pickle: bool = False,
    out: bytearray | None = None,
) -> bytes | bytearray:
    """One complete frame (header + payload), ready to write.

    With ``out``, the frame is built in the caller's reusable buffer —
    the southbound fan-out encodes every broadcast into one preallocated
    bytearray per worker pipe instead of allocating per command.
    """
    if out is None:
        out = bytearray()
    else:
        out.clear()
    out += FRAME_HEADER.pack(kind, 0)
    _encode_into(out, obj, preserve_tuples, allow_pickle)
    FRAME_HEADER.pack_into(out, 0, kind, len(out) - FRAME_HEADER.size)
    return out


def decode_wire_frame(
    data,
    *,
    allow_pickle: bool = False,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
):
    """Decode one complete frame; returns ``(kind, value)``."""
    if len(data) < FRAME_HEADER.size:
        raise WireError("truncated frame header")
    kind, length = FRAME_HEADER.unpack_from(data, 0)
    if kind not in _FRAME_KINDS:
        raise WireError(f"unknown frame kind {kind}")
    if length > max_frame_bytes:
        raise WireError(f"frame of {length} bytes exceeds limit {max_frame_bytes}")
    if len(data) != FRAME_HEADER.size + length:
        raise WireError("frame length mismatch")
    value, pos = _decode(data, FRAME_HEADER.size, len(data), allow_pickle)
    if pos != len(data):
        raise WireError(f"trailing bytes after frame payload ({len(data) - pos})")
    return kind, value
