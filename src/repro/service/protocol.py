"""Wire protocol of the northbound control service.

Newline-delimited JSON-RPC over a plain TCP stream — the same shape the
P4ContainerFlow control plane exposes over HTTP, collapsed to one framed
socket so a session can pipeline requests.  One request per line, one
response per line, always in request order per connection::

    -> {"id": 1, "tenant": "alice", "method": "deploy",
        "params": {"source": "..."}, "deadline_ms": 2000}
    <- {"id": 1, "ok": true, "result": {"program_id": 3, ...}}

    -> {"id": 2, "tenant": "alice", "method": "revoke",
        "params": {"program_id": 99}}
    <- {"id": 2, "ok": false,
        "error": {"code": "NOT_FOUND", "message": "no program with id 99"}}

``id`` is caller-chosen and echoed verbatim; ``tenant`` scopes the request
to a namespace (defaults to ``"default"``); ``deadline_ms`` is an optional
per-request budget measured from arrival — a state-changing request still
waiting in the admission queue when it expires is rejected with
``DEADLINE_EXCEEDED`` instead of executing late.

Every error is structured: a stable machine-readable ``code`` from
:class:`ErrorCode` plus a human message.  Clients re-raise them as
:class:`ServiceError`.

Binary framing (negotiated)
---------------------------

Alongside NDJSON the server speaks the length-prefixed binary codec of
:mod:`repro.service.wire`.  Negotiation is first-byte sniffing: a binary
client's first bytes are the preamble ``b"P4RB" + version`` (``0x50``,
which no JSON request line starts with); anything else selects NDJSON.
After the preamble, requests travel as ``FRAME_REQUEST`` frames and
responses as ``FRAME_RESPONSE`` frames carrying the *same* envelope
dicts as the JSON lines — the codec changes the framing and value
encoding, never the RPC surface.  Server-initiated subscription pushes
use ``FRAME_EVENT`` (binary) or plain NDJSON lines with an ``event``
key (line protocol).

Elastic-engine RPCs (engine mode only)
--------------------------------------

When the service fronts a sharded engine, three additional write
methods manage the worker fleet; all serialize through the admission
queue and are excluded from audit replay (they mutate engine topology,
not control-plane state):

* ``scale``     — ``{"workers": N}``: grow/shrink the fleet to N;
  response lists added/removed worker ids.  The consistent-hash ring
  remaps only ~1/N of hash-routed flows per step.
* ``migrate``   — ``{"program_id": P, "target": W?}``: live-migrate a
  pinned program (default target: least-loaded peer); response reports
  moved buckets, parked packets, and quiesce/flip wall latencies.
* ``rebalance`` — ``{"threshold": 0.7?}``: run the load-aware
  rebalancer once (pinned migrations + ring reweighting) if the
  hottest shard's traffic share exceeds the threshold.

``stats`` with no ``program_id`` returns the service-wide overview —
in engine mode the aggregated shard totals plus the ``migration``
section (migrations started/completed, parked packets, latency
summaries).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum

from .wire import (  # noqa: F401  (re-exported: the service's framing surface)
    FRAME_EVENT,
    FRAME_REQUEST,
    FRAME_RESPONSE,
    PREAMBLE,
    WIRE_VERSION,
    WireError,
    decode_wire_frame,
    encode_wire_frame,
)

#: Protocol revision, reported by the ``ping`` RPC.
PROTOCOL_VERSION = 1

#: Frame size guard: a single request/response line may not exceed this
#: (a P4runpro source is a few KB; 4 MiB leaves room for big snapshots).
MAX_FRAME_BYTES = 4 * 1024 * 1024


class ErrorCode(str, Enum):
    """Stable machine-readable failure categories."""

    PARSE_ERROR = "PARSE_ERROR"  # request line was not valid JSON
    BAD_REQUEST = "BAD_REQUEST"  # malformed envelope or params
    UNKNOWN_METHOD = "UNKNOWN_METHOD"
    NOT_FOUND = "NOT_FOUND"  # unknown program id / memory id
    COMPILE_ERROR = "COMPILE_ERROR"  # source rejected by the compiler
    ALLOCATION_ERROR = "ALLOCATION_ERROR"  # data plane cannot host it
    QUOTA_EXCEEDED = "QUOTA_EXCEEDED"  # tenant over its admission quota
    DEADLINE_EXCEEDED = "DEADLINE_EXCEEDED"
    SOUTHBOUND_FAILURE = "SOUTHBOUND_FAILURE"  # retries exhausted
    SHUTTING_DOWN = "SHUTTING_DOWN"  # service draining; writes refused
    INTERNAL = "INTERNAL"


class ServiceError(Exception):
    """A structured RPC failure (raised server-side, re-raised client-side)."""

    def __init__(self, code: ErrorCode | str, message: str):
        super().__init__(message)
        self.code = ErrorCode(code)
        self.message = message

    def to_wire(self) -> dict:
        return {"code": self.code.value, "message": self.message}

    @classmethod
    def from_wire(cls, error: dict) -> "ServiceError":
        return cls(error.get("code", ErrorCode.INTERNAL), error.get("message", ""))


@dataclass
class Request:
    """A decoded request envelope."""

    id: object
    method: str
    params: dict
    tenant: str = "default"
    deadline_ms: float | None = None

    @classmethod
    def from_wire(cls, payload: dict) -> "Request":
        if not isinstance(payload, dict):
            raise ServiceError(ErrorCode.BAD_REQUEST, "request must be a JSON object")
        method = payload.get("method")
        if not isinstance(method, str) or not method:
            raise ServiceError(ErrorCode.BAD_REQUEST, "missing request method")
        params = payload.get("params") or {}
        if not isinstance(params, dict):
            raise ServiceError(ErrorCode.BAD_REQUEST, "params must be an object")
        tenant = payload.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise ServiceError(ErrorCode.BAD_REQUEST, "tenant must be a non-empty string")
        deadline = payload.get("deadline_ms")
        if deadline is not None and (
            not isinstance(deadline, (int, float)) or deadline <= 0
        ):
            raise ServiceError(ErrorCode.BAD_REQUEST, "deadline_ms must be positive")
        return cls(
            id=payload.get("id"),
            method=method,
            params=params,
            tenant=tenant,
            deadline_ms=deadline,
        )


def encode_frame(payload: dict) -> bytes:
    """One JSON object -> one newline-terminated wire frame."""
    line = json.dumps(payload, separators=(",", ":")).encode()
    if len(line) > MAX_FRAME_BYTES:
        raise ServiceError(ErrorCode.BAD_REQUEST, "frame exceeds size limit")
    return line + b"\n"


def decode_frame(line: bytes) -> dict:
    """One wire line -> JSON object; PARSE_ERROR on garbage."""
    if len(line) > MAX_FRAME_BYTES:
        raise ServiceError(ErrorCode.PARSE_ERROR, "frame exceeds size limit")
    try:
        payload = json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError(ErrorCode.PARSE_ERROR, f"bad frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise ServiceError(ErrorCode.PARSE_ERROR, "frame must encode a JSON object")
    return payload


def encode_binary_frame(kind: int, payload: dict) -> bytes:
    """One envelope dict -> one binary wire frame (size-guarded)."""
    frame = encode_wire_frame(kind, payload)
    if len(frame) > MAX_FRAME_BYTES:
        raise ServiceError(ErrorCode.BAD_REQUEST, "frame exceeds size limit")
    return bytes(frame)


def decode_binary_frame(data: bytes) -> dict:
    """One binary frame -> envelope dict; PARSE_ERROR on garbage.

    The northbound never enables the pickle extension: a pickle tag from
    a client is a protocol error.
    """
    try:
        _kind, payload = decode_wire_frame(data, max_frame_bytes=MAX_FRAME_BYTES)
    except WireError as exc:
        raise ServiceError(ErrorCode.PARSE_ERROR, f"bad frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise ServiceError(ErrorCode.PARSE_ERROR, "frame must encode an object")
    return payload


def ok_response(request_id, result) -> dict:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id, error: ServiceError) -> dict:
    return {"id": request_id, "ok": False, "error": error.to_wire()}
