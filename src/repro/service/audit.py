"""Structured audit/event log, and state reconstruction by replay.

Every state-changing RPC the service executes appends one
:class:`AuditRecord`: who (tenant), what (method + full params), when
(sequence number and wall time), how long (queue wait vs execution), and
how it ended (``ok`` or a structured error code).  The log is the
service's source of truth for "what happened to the switch and why" —
and because deploy records carry the full program source, it is also a
*recovery journal*: :func:`replay` applies the successful records, in
order, to a fresh controller and reproduces the resource manager's final
state byte-for-byte (verified against
:meth:`~repro.controlplane.manager.ResourceManager.state_fingerprint`).

Replay exactness hinges on two properties the service guarantees:

* state-changing requests are serialized by the admission queue, so the
  log's sequence order *is* the execution order;
* program ids are pinned — each deploy record stores the id the live run
  assigned, and replay seeds the manager's id counter with it (a live run
  may burn ids on deployments that subsequently failed; replay skips
  those records, so it cannot rely on the counter lining up by itself).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

#: Methods whose successful execution mutates switch / manager state.
#: ``abort_deploy`` is synthetic — never a client RPC: the service appends
#: it when a pipelined install fails after admission, so replay re-enacts
#: the admit and the abort at their exact positions in the mutation order
#: (skipping them would shift every later first-fit memory base).
#: The multi-op batch RPCs (``deploy_many``, ``add_cases``, ``write_mems``,
#: ``batch``) audit as ONE record carrying per-op results; replay applies
#: exactly the sub-ops that succeeded live and re-seeds any program ids a
#: rolled-back or failed sub-deploy burned, so the id counter (and hence
#: every later deploy's identity) lines up byte-for-byte.
STATE_CHANGING_METHODS = frozenset(
    {
        "deploy",
        "revoke",
        "add_case",
        "remove_case",
        "write_mem",
        "abort_deploy",
        "deploy_many",
        "add_cases",
        "write_mems",
        "batch",
    }
)


def compile_options_from_params(params: dict):
    """Build :class:`~repro.compiler.compiler.CompileOptions` from deploy
    params — shared by the live server and :func:`replay` so both compile
    a recorded source identically."""
    from ..compiler.compiler import CompileOptions
    from ..compiler.objectives import make_objective

    return CompileOptions(
        objective=make_objective(params.get("objective", "f1")),
        elastic_cases=params.get("elastic"),
        elastic_branch=params.get("branch", 0),
    )


@dataclass
class AuditRecord:
    """One state-changing request, as executed."""

    seq: int
    wall_time: float
    tenant: str
    method: str
    params: dict
    outcome: str  # "ok" or "error:<CODE>"
    result: dict = field(default_factory=dict)
    queue_ms: float = 0.0
    execute_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"

    @property
    def total_ms(self) -> float:
        return self.queue_ms + self.execute_ms

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "wall_time": self.wall_time,
            "tenant": self.tenant,
            "method": self.method,
            "params": self.params,
            "outcome": self.outcome,
            "result": self.result,
            "queue_ms": round(self.queue_ms, 4),
            "execute_ms": round(self.execute_ms, 4),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AuditRecord":
        return cls(
            seq=payload["seq"],
            wall_time=payload["wall_time"],
            tenant=payload["tenant"],
            method=payload["method"],
            params=payload["params"],
            outcome=payload["outcome"],
            result=payload.get("result", {}),
            queue_ms=payload.get("queue_ms", 0.0),
            execute_ms=payload.get("execute_ms", 0.0),
        )


class AuditLog:
    """Append-only audit journal with JSONL import/export."""

    def __init__(self, *, clock=time.time):
        self._records: list[AuditRecord] = []
        self._clock = clock

    def append(
        self,
        tenant: str,
        method: str,
        params: dict,
        outcome: str,
        result: dict | None = None,
        *,
        queue_ms: float = 0.0,
        execute_ms: float = 0.0,
    ) -> AuditRecord:
        record = AuditRecord(
            seq=len(self._records) + 1,
            wall_time=self._clock(),
            tenant=tenant,
            method=method,
            params=params,
            outcome=outcome,
            result=result or {},
            queue_ms=queue_ms,
            execute_ms=execute_ms,
        )
        self._records.append(record)
        return record

    def records(self) -> list[AuditRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def tail(self, limit: int) -> list[AuditRecord]:
        return self._records[-limit:] if limit else list(self._records)

    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(r.as_dict(), sort_keys=True) for r in self._records)

    @classmethod
    def from_jsonl(cls, text: str) -> "AuditLog":
        log = cls()
        for line in text.splitlines():
            if line.strip():
                log._records.append(AuditRecord.from_dict(json.loads(line)))
        return log


def replay(records, controller=None):
    """Apply the successful state-changing records to a fresh controller.

    ``records`` is an :class:`AuditLog` or an iterable of records/dicts.
    Returns the controller, whose resource manager now fingerprints
    identically to the live service's at the moment the log was captured.
    """
    from ..controlplane.controller import Controller

    if isinstance(records, AuditLog):
        records = records.records()
    if controller is None:
        controller = Controller.with_simulator()[0]
    # wire case ids -> live CaseHandle objects minted during this replay
    cases: dict[int, object] = {}
    # admitted-but-later-aborted deploys awaiting their abort_deploy record
    pending_aborts: dict[int, object] = {}

    def apply_deploy(params: dict, expected_id: int, seq: int):
        controller.manager.seed_program_id(expected_id)
        handle = controller.deploy(
            params["source"],
            program_name=params.get("program"),
            options=compile_options_from_params(params),
        )
        if handle.program_id != expected_id:
            raise RuntimeError(
                f"replay divergence at seq {seq}: deployed as "
                f"#{handle.program_id}, log says #{expected_id}"
            )
        return handle

    def apply_add_case(program_id: int, spec: dict, sub: dict):
        case = controller.add_case(
            program_id,
            [tuple(c) for c in spec["conditions"]],
            branch_index=spec.get("branch_index", 0),
            template_case=spec.get("template_case", 0),
            loadi_values=spec.get("loadi_values"),
        )
        cases[sub["case_id"]] = case

    for record in records:
        if isinstance(record, dict):
            record = AuditRecord.from_dict(record)
        # A failed deploy whose result carries a program_id was *admitted*
        # before its install failed (pipelined path): its resource
        # reservations influenced every admission until the matching
        # abort_deploy record, so replay must re-enact both.
        admitted_failed_deploy = (
            record.method == "deploy"
            and not record.ok
            and "program_id" in record.result
        )
        if (
            not record.ok and not admitted_failed_deploy
        ) or record.method not in STATE_CHANGING_METHODS:
            continue
        params = record.params
        if record.method == "deploy":
            controller.manager.seed_program_id(record.result["program_id"])
            if admitted_failed_deploy:
                prepared = controller.prepare_deploy(
                    params["source"],
                    program_name=params.get("program"),
                    options=compile_options_from_params(params),
                )
                if prepared.program_id != record.result["program_id"]:
                    raise RuntimeError(
                        f"replay divergence at seq {record.seq}: admitted as "
                        f"#{prepared.program_id}, log says "
                        f"#{record.result['program_id']}"
                    )
                pending_aborts[prepared.program_id] = prepared
                continue
            apply_deploy(params, record.result["program_id"], record.seq)
        elif record.method == "deploy_many":
            results = record.result.get("results", [])
            if record.result.get("committed", True):
                for op_params, sub in zip(params.get("sources", []), results):
                    if isinstance(op_params, str):
                        op_params = {"source": op_params}
                    apply_deploy(op_params, sub["program_id"], record.seq)
            else:
                # Rolled back live: every admitted op burned an id (its
                # install + reverse-order revoke returned the manager to
                # the prior state), so only the id counter needs aligning.
                burned = [
                    sub["program_id"]
                    for sub in results
                    if sub.get("program_id") is not None
                ]
                if burned:
                    controller.manager.seed_program_id(max(burned) + 1)
        elif record.method == "add_cases":
            program_id = params["program_id"]
            for spec, sub in zip(params.get("cases", []), record.result.get("results", [])):
                if sub.get("ok"):
                    apply_add_case(program_id, spec, sub)
        elif record.method == "write_mems":
            for spec, sub in zip(params.get("writes", []), record.result.get("results", [])):
                if sub.get("ok"):
                    controller.write_memory(
                        spec["program_id"], spec["mid"], spec["vaddr"], spec["value"]
                    )
        elif record.method == "batch":
            for op, sub in zip(params.get("ops", []), record.result.get("results", [])):
                op_method = op.get("method")
                op_params = op.get("params", {})
                if not sub.get("ok"):
                    # A failed sub-deploy may still have been admitted
                    # (install failure aborted it synchronously) — the
                    # burned id must be skipped here too.
                    if op_method == "deploy" and sub.get("program_id") is not None:
                        controller.manager.seed_program_id(sub["program_id"] + 1)
                    continue
                if op_method == "deploy":
                    apply_deploy(op_params, sub["program_id"], record.seq)
                elif op_method == "revoke":
                    controller.revoke(op_params["program_id"])
                elif op_method == "add_case":
                    apply_add_case(op_params["program_id"], op_params, sub)
                elif op_method == "remove_case":
                    case = cases.pop(op_params["case_id"], None)
                    if case is None:
                        raise RuntimeError(
                            f"replay divergence at seq {record.seq}: unknown "
                            f"case id {op_params['case_id']}"
                        )
                    controller.remove_case(op_params["program_id"], case)
                elif op_method == "write_mem":
                    controller.write_memory(
                        op_params["program_id"],
                        op_params["mid"],
                        op_params["vaddr"],
                        op_params["value"],
                    )
                # set_quota touches the tenant registry only — no manager
                # state, nothing to re-enact.
        elif record.method == "abort_deploy":
            prepared = pending_aborts.pop(params["program_id"], None)
            if prepared is None:
                raise RuntimeError(
                    f"replay divergence at seq {record.seq}: abort for unknown "
                    f"admission #{params['program_id']}"
                )
            controller.manager.abort_admission(prepared.record)
        elif record.method == "revoke":
            controller.revoke(params["program_id"])
        elif record.method == "add_case":
            case = controller.add_case(
                params["program_id"],
                [tuple(c) for c in params["conditions"]],
                branch_index=params.get("branch_index", 0),
                template_case=params.get("template_case", 0),
                loadi_values=params.get("loadi_values"),
            )
            cases[record.result["case_id"]] = case
        elif record.method == "remove_case":
            case = cases.pop(params["case_id"], None)
            if case is None:
                raise RuntimeError(
                    f"replay divergence at seq {record.seq}: unknown case id "
                    f"{params['case_id']}"
                )
            controller.remove_case(params["program_id"], case)
        elif record.method == "write_mem":
            controller.write_memory(
                params["program_id"], params["mid"], params["vaddr"], params["value"]
            )
    return controller
