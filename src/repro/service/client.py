"""Clients for the control service: synchronous (socket) and asyncio.

:class:`ServiceClient` is the blocking client used by the CLI, the
benchmarks, and thread-based tests — one TCP connection, one request per
call, structured errors re-raised as
:class:`~repro.service.protocol.ServiceError`.

:class:`AsyncServiceClient` is the asyncio twin for callers that want
many in-flight requests on one event loop (the integration tests drive
four tenants concurrently with it).

Both speak the NDJSON protocol and expose one convenience method per
RPC; ``call`` remains available for anything new the server grows.
"""

from __future__ import annotations

import asyncio
import socket

from .protocol import (
    MAX_FRAME_BYTES,
    ErrorCode,
    ServiceError,
    decode_frame,
    encode_frame,
)


class _CallMixin:
    """RPC conveniences shared by both clients (sync methods defined in
    terms of ``self.call``, which each client implements)."""

    def _request(self, method: str, params: dict | None, deadline_ms: float | None):
        self._next_id += 1
        payload = {
            "id": self._next_id,
            "tenant": self.tenant,
            "method": method,
            "params": params or {},
        }
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return payload

    @staticmethod
    def _unwrap(response: dict):
        if response.get("ok"):
            return response.get("result")
        error = response.get("error") or {}
        raise ServiceError.from_wire(error)


def _sync_api(cls):
    """Attach one convenience method per RPC to a sync client class."""

    def make(method, keys):
        def rpc(self, *args, deadline_ms=None, **kwargs):
            params = dict(zip(keys, args))
            params.update(kwargs)
            return self.call(method, params, deadline_ms=deadline_ms)

        rpc.__name__ = method
        return rpc

    for method, keys in _RPC_SIGNATURES.items():
        if not hasattr(cls, method):
            setattr(cls, method, make(method, keys))
    return cls


#: positional-argument names for each RPC's convenience wrapper
_RPC_SIGNATURES = {
    "ping": (),
    "deploy": ("source",),
    "revoke": ("program_id",),
    "add_case": ("program_id", "conditions"),
    "remove_case": ("program_id", "case_id"),
    "read_mem": ("program_id", "mid", "vaddr"),
    "write_mem": ("program_id", "mid", "vaddr", "value"),
    "snapshot": ("program_id", "mid"),
    "stats": ("program_id",),
    "list": (),
    "utilization": (),
    "tenants": (),
    "metrics": (),
    "audit": (),
    "fingerprint": (),
    "set_quota": ("tenant",),
    "inject": ("packets",),
}


@_sync_api
class ServiceClient(_CallMixin):
    """Blocking NDJSON-RPC client over one TCP connection."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 9400,
        *,
        tenant: str = "default",
        timeout: float = 30.0,
    ):
        self.tenant = tenant
        self._next_id = 0
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")

    def call(self, method: str, params: dict | None = None, *, deadline_ms: float | None = None):
        payload = self._request(method, params, deadline_ms)
        self._sock.sendall(encode_frame(payload))
        line = self._file.readline(MAX_FRAME_BYTES + 2)
        if not line:
            raise ServiceError(ErrorCode.INTERNAL, "connection closed by server")
        return self._unwrap(decode_frame(line))

    def list_programs(self, **kwargs) -> list[dict]:
        return self.call("list", kwargs)["programs"]

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AsyncServiceClient(_CallMixin):
    """Asyncio NDJSON-RPC client; ``await connect()`` then ``await call()``.

    Calls on one client instance are serialized over its connection (a
    lock pairs each request with its response line); open one client per
    tenant/coroutine for true concurrency — connections are cheap.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 9400, *, tenant: str = "default"):
        self.host = host
        self.port = port
        self.tenant = tenant
        self._next_id = 0
        self._reader: asyncio.StreamReader | None = None
        self._writer = None
        self._lock = asyncio.Lock()

    async def connect(self) -> "AsyncServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_FRAME_BYTES
        )
        return self

    async def call(
        self, method: str, params: dict | None = None, *, deadline_ms: float | None = None
    ):
        if self._reader is None:
            await self.connect()
        payload = self._request(method, params, deadline_ms)
        async with self._lock:
            self._writer.write(encode_frame(payload))
            await self._writer.drain()
            line = await self._reader.readline()
        if not line:
            raise ServiceError(ErrorCode.INTERNAL, "connection closed by server")
        return self._unwrap(decode_frame(line))

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "AsyncServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()
