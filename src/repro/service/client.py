"""Clients for the control service: synchronous (socket) and asyncio.

:class:`ServiceClient` is the blocking client used by the CLI, the
benchmarks, and thread-based tests — one TCP connection, one request per
call, structured errors re-raised as
:class:`~repro.service.protocol.ServiceError`.

:class:`AsyncServiceClient` is the asyncio twin for callers that want
many in-flight requests on one event loop (the integration tests drive
four tenants concurrently with it).

Both speak either codec — ``codec="ndjson"`` (default, the line
protocol) or ``codec="binary"`` (the length-prefixed frames of
:mod:`repro.service.wire`, negotiated by sending the preamble right
after connect).  The RPC surface is identical either way; the codec only
changes framing and value encoding.  Each client exposes one convenience
method per RPC; ``call`` remains available for anything new the server
grows.  After a ``subscribe`` RPC, server-initiated pushes are consumed
with :meth:`events` — response frames and event frames may interleave on
the wire, so each client buffers whichever kind it is not currently
waiting for.
"""

from __future__ import annotations

import asyncio
import socket
from collections import deque

from .protocol import (
    MAX_FRAME_BYTES,
    ErrorCode,
    ServiceError,
    decode_binary_frame,
    decode_frame,
    encode_binary_frame,
    encode_frame,
)
from .wire import FRAME_EVENT, FRAME_HEADER, FRAME_REQUEST, PREAMBLE

_CODECS = ("ndjson", "binary")


def _check_codec(codec: str) -> str:
    if codec not in _CODECS:
        raise ValueError(f"codec must be one of {_CODECS}, not {codec!r}")
    return codec


class _CallMixin:
    """RPC conveniences shared by both clients (sync methods defined in
    terms of ``self.call``, which each client implements)."""

    def _request(self, method: str, params: dict | None, deadline_ms: float | None):
        self._next_id += 1
        payload = {
            "id": self._next_id,
            "tenant": self.tenant,
            "method": method,
            "params": params or {},
        }
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return payload

    @staticmethod
    def _unwrap(response: dict):
        if response.get("ok"):
            return response.get("result")
        error = response.get("error") or {}
        raise ServiceError.from_wire(error)


def _sync_api(cls):
    """Attach one convenience method per RPC to a sync client class."""

    def make(method, keys):
        def rpc(self, *args, deadline_ms=None, **kwargs):
            params = dict(zip(keys, args))
            params.update(kwargs)
            return self.call(method, params, deadline_ms=deadline_ms)

        rpc.__name__ = method
        return rpc

    for method, keys in _RPC_SIGNATURES.items():
        if not hasattr(cls, method):
            setattr(cls, method, make(method, keys))
    return cls


#: positional-argument names for each RPC's convenience wrapper
_RPC_SIGNATURES = {
    "ping": (),
    "deploy": ("source",),
    "deploy_many": ("sources",),
    "revoke": ("program_id",),
    "add_case": ("program_id", "conditions"),
    "add_cases": ("program_id", "cases"),
    "remove_case": ("program_id", "case_id"),
    "read_mem": ("program_id", "mid", "vaddr"),
    "write_mem": ("program_id", "mid", "vaddr", "value"),
    "write_mems": ("writes",),
    "batch": ("ops",),
    "snapshot": ("program_id", "mid"),
    "stats": ("program_id",),
    "list": (),
    "utilization": (),
    "tenants": (),
    "metrics": (),
    "audit": (),
    "fingerprint": (),
    "set_quota": ("tenant",),
    "inject": ("packets",),
    "scale": ("workers",),
    "migrate": ("program_id", "target"),
    "rebalance": (),
    "subscribe": ("streams",),
    "unsubscribe": (),
}


@_sync_api
class ServiceClient(_CallMixin):
    """Blocking RPC client over one TCP connection (either codec)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 9400,
        *,
        tenant: str = "default",
        timeout: float = 30.0,
        codec: str = "ndjson",
    ):
        self.tenant = tenant
        self.codec = _check_codec(codec)
        self._next_id = 0
        self._events: deque[dict] = deque()
        self._sock = socket.create_connection((host, port), timeout=timeout)
        # Request frames span several segments; Nagle + delayed ACK would
        # stall the tail of each one behind the previous round trip.
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._file = self._sock.makefile("rb")
        if self.codec == "binary":
            self._sock.sendall(PREAMBLE)

    def call(self, method: str, params: dict | None = None, *, deadline_ms: float | None = None):
        payload = self._request(method, params, deadline_ms)
        if self.codec == "binary":
            self._sock.sendall(encode_binary_frame(FRAME_REQUEST, payload))
        else:
            self._sock.sendall(encode_frame(payload))
        return self._unwrap(self._read_response())

    def events(self):
        """Yield server-initiated push messages (after ``subscribe``).

        Blocks on the socket between pushes; iterate until done, then
        ``unsubscribe`` (or just close the connection).
        """
        while True:
            while self._events:
                yield self._events.popleft()
            kind, payload = self._read_frame()
            if kind == FRAME_EVENT:
                yield payload
            else:
                # A stray response with no waiter: protocol misuse
                # (events() while a call is outstanding is not supported
                # on the sync client).
                raise ServiceError(
                    ErrorCode.INTERNAL, "unexpected response frame on event stream"
                )

    def _read_response(self) -> dict:
        while True:
            kind, payload = self._read_frame()
            if kind == FRAME_EVENT:
                self._events.append(payload)
                continue
            return payload

    def _read_frame(self) -> tuple[int, dict]:
        if self.codec == "binary":
            header = self._read_exact(FRAME_HEADER.size)
            kind, length = FRAME_HEADER.unpack(header)
            body = self._read_exact(length)
            return kind, decode_binary_frame(header + body)
        line = self._file.readline(MAX_FRAME_BYTES + 2)
        if not line:
            raise ServiceError(ErrorCode.INTERNAL, "connection closed by server")
        payload = decode_frame(line)
        return (FRAME_EVENT if "event" in payload else 0), payload

    def _read_exact(self, n: int) -> bytes:
        data = self._file.read(n)
        if data is None or len(data) != n:
            raise ServiceError(ErrorCode.INTERNAL, "connection closed by server")
        return data

    def list_programs(self, **kwargs) -> list[dict]:
        return self.call("list", kwargs)["programs"]

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AsyncServiceClient(_CallMixin):
    """Asyncio RPC client; ``await connect()`` then ``await call()``.

    Calls on one client instance are serialized over its connection (a
    lock pairs each request with its response frame); open one client per
    tenant/coroutine for true concurrency — connections are cheap.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 9400,
        *,
        tenant: str = "default",
        codec: str = "ndjson",
    ):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.codec = _check_codec(codec)
        self._next_id = 0
        self._events: deque[dict] = deque()
        self._reader: asyncio.StreamReader | None = None
        self._writer = None
        self._lock = asyncio.Lock()

    async def connect(self) -> "AsyncServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_FRAME_BYTES
        )
        if self.codec == "binary":
            self._writer.write(PREAMBLE)
            await self._writer.drain()
        return self

    async def call(
        self, method: str, params: dict | None = None, *, deadline_ms: float | None = None
    ):
        if self._reader is None:
            await self.connect()
        payload = self._request(method, params, deadline_ms)
        async with self._lock:
            if self.codec == "binary":
                self._writer.write(encode_binary_frame(FRAME_REQUEST, payload))
            else:
                self._writer.write(encode_frame(payload))
            await self._writer.drain()
            response = await self._read_response()
        return self._unwrap(response)

    async def events(self):
        """Async generator of server-initiated push messages."""
        while True:
            while self._events:
                yield self._events.popleft()
            async with self._lock:
                kind, payload = await self._read_frame()
            if kind == FRAME_EVENT:
                yield payload
            else:
                raise ServiceError(
                    ErrorCode.INTERNAL, "unexpected response frame on event stream"
                )

    async def _read_response(self) -> dict:
        while True:
            kind, payload = await self._read_frame()
            if kind == FRAME_EVENT:
                self._events.append(payload)
                continue
            return payload

    async def _read_frame(self) -> tuple[int, dict]:
        if self.codec == "binary":
            try:
                header = await self._reader.readexactly(FRAME_HEADER.size)
                kind, length = FRAME_HEADER.unpack(header)
                body = await self._reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise ServiceError(
                    ErrorCode.INTERNAL, "connection closed by server"
                ) from exc
            return kind, decode_binary_frame(header + body)
        line = await self._reader.readline()
        if not line:
            raise ServiceError(ErrorCode.INTERNAL, "connection closed by server")
        payload = decode_frame(line)
        return (FRAME_EVENT if "event" in payload else 0), payload

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "AsyncServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()
