"""Southbound framing for the coordinator<->worker pipes.

Control commands and synchronous requests travel as binary wire frames
(:mod:`repro.service.wire`) instead of one ``pickle.dumps`` per message:
tuple-shaped commands encode structurally (``preserve_tuples``), table
entries are packed field-by-field (:func:`pack_entry`), and anything the
codec does not speak natively — packet objects, process results — rides
as a pickle-extension leaf (``allow_pickle``; both pipe ends are
processes of one engine, the trust domain pickling already assumed).

The encoder writes into a caller-owned reusable buffer, so a fan-out of
N workers allocates nothing per command: the coordinator encodes each
broadcast once into its preallocated bytearray and hands the same bytes
to every pipe (``Connection.send_bytes`` copies synchronously).
"""

from __future__ import annotations

from ..compiler.entries import EntryConfig, KeySpec
from ..service.wire import FRAME_REQUEST, decode_wire_frame, encode_wire_frame

#: sentinel heading a packed EntryConfig (no field name collides with it)
_ENTRY_TAG = "\x00entry"


def pack_entry(entry: EntryConfig) -> tuple:
    """EntryConfig -> a wire-native tuple (no pickle round-trip)."""
    return (
        _ENTRY_TAG,
        entry.table,
        tuple((k.field, k.value, k.mask) for k in entry.keys),
        entry.action,
        tuple(entry.action_data),
        entry.priority,
    )


def unpack_entry(packed: tuple) -> EntryConfig:
    _tag, table, keys, action, action_data, priority = packed
    return EntryConfig(
        table=table,
        keys=tuple(KeySpec(field=f, value=v, mask=m) for f, v, m in keys),
        action=action,
        action_data=tuple((name, value) for name, value in action_data),
        priority=priority,
    )


def encode_msg(msg: tuple, out: bytearray | None = None) -> bytes | bytearray:
    """One southbound message -> one complete wire frame."""
    return encode_wire_frame(
        FRAME_REQUEST, msg, preserve_tuples=True, allow_pickle=True, out=out
    )


#: southbound frames carry whole packet batches — far beyond the
#: northbound's 4 MiB request guard; the pipe peers trust each other.
#: Capped at INT32_MAX, the hard limit ``Connection.send_bytes`` imposes
#: on some platforms (the header is a signed 32-bit length there): a
#: frame the codec would accept but the pipe cannot carry must be
#: refused with a structured error, not a raw ``OSError`` mid-write.
MAX_SB_FRAME_BYTES = (1 << 31) - 1


class FrameTooLargeError(ValueError):
    """A southbound frame exceeds what the pipe can transport."""


def send_frame(conn, frame, limit: int = MAX_SB_FRAME_BYTES) -> None:
    """Send one frame over a pipe, refusing oversized payloads cleanly.

    ``multiprocessing.Connection.send_bytes`` raises a bare ``OSError``
    (or silently corrupts the stream) past the platform's 32-bit frame
    header; checking here turns that into a :class:`FrameTooLargeError`
    the engine can report against the batch that caused it.
    """
    if len(frame) > limit:
        raise FrameTooLargeError(
            f"southbound frame of {len(frame)} bytes exceeds the "
            f"{limit}-byte pipe limit; split the batch"
        )
    conn.send_bytes(frame)


def decode_msg(data: bytes):
    """One wire frame -> the southbound message tuple."""
    return decode_wire_frame(
        data, allow_pickle=True, max_frame_bytes=MAX_SB_FRAME_BYTES
    )[1]
