"""The shard worker process: one full switch replica behind a pipe.

Each worker owns a complete :class:`~repro.dataplane.runpro.P4runproDataPlane`
replica and serves two kinds of messages from the coordinator:

* **pipelined control commands** (``ctl_run``) — southbound mutations
  fanned out by :class:`~repro.engine.engine.FanoutBinding`, coalesced
  into one multi-command binary frame per flush (:mod:`.sbwire`) and
  applied in FIFO order without replies; failures are held until the
  next barrier;
* **synchronous requests** — ``barrier`` (ack with the applied generation
  plus any deferred control errors), ``batch`` (process packets, reply
  verdicts or full results plus the worker's CPU seconds), register
  region reads/writes for the cross-shard merge, entry-counter reads,
  ``harvest`` (entry counters plus final stats in one round trip, used
  when the coordinator retires this worker), and ``stats``/``stop``.

Packet batches additionally travel over **shared-memory rings**
(:mod:`.shm`) when the coordinator provisioned a ring pair for this
worker: a ``batch_shm`` pipe message opens a streamed batch session, the
worker drains wire-native packet chunks from its request ring while the
coordinator is still routing, pushes result chunks into the mirror ring,
and closes the session with an ``ok_shm`` pipe reply carrying the result
count, CPU seconds, and any result chunks too large for the ring.  A
``batch_rest`` message mid-session delivers the chunks the coordinator
could not fit into a full ring; the worker finishes the ring first (the
coordinator stops pushing before sending it), so stream order holds.

Table-entry handles are process-local (the simulator draws them from a
process-global counter), so the coordinator ships *its* handle with every
insert and the worker keeps a ``coordinator handle -> local handle`` map;
deletes and counter reads address entries by coordinator handle.

The module is import-safe for both ``fork`` and ``spawn`` start methods:
:func:`worker_main` is a top-level function and builds its replica from a
pickled ``(TargetSpec, ParseMachine | None)`` provisioning tuple.
"""

from __future__ import annotations

import pickle
import signal
import time
import traceback

from . import shm as shm_codec
from .sbwire import decode_msg, encode_msg, unpack_entry
from .shm import ShmRing


def _build_dataplane(setup_bytes: bytes):
    from ..dataplane.runpro import P4runproDataPlane

    setup = pickle.loads(setup_bytes)
    spec, parse_machine = setup[0], setup[1]
    flow_cache = setup[2] if len(setup) > 2 else True
    codegen = setup[3] if len(setup) > 3 else True
    return P4runproDataPlane(
        spec, parse_machine, flow_cache=flow_cache, codegen=codegen
    )


def _apply_ctl(dataplane, handle_map: dict, op: tuple) -> None:
    kind = op[0]
    if kind == "insert":
        _kind, coord_handle, packed = op
        handle_map[coord_handle] = dataplane.insert_entry(unpack_entry(packed))
    elif kind == "insert_many":
        _kind, pairs = op
        for coord_handle, packed in pairs:
            handle_map[coord_handle] = dataplane.insert_entry(unpack_entry(packed))
    elif kind == "delete":
        _kind, table, coord_handle = op
        dataplane.delete_entry(table, handle_map.pop(coord_handle))
    elif kind == "reset_memory":
        _kind, phys_rpb, base, size = op
        dataplane.reset_memory(phys_rpb, base, size)
    elif kind == "write_bucket":
        _kind, phys_rpb, addr, value = op
        dataplane.write_bucket(phys_rpb, addr, value)
    elif kind == "mcast":
        _kind, group, ports = op
        dataplane.configure_multicast_group(group, list(ports))
    else:
        raise ValueError(f"unknown control op {kind!r}")


def _stats_payload(dataplane) -> dict:
    tm = dataplane.switch.tm
    return {
        "packets_in": dataplane.switch.packets_in,
        "pipeline_passes": dataplane.switch.pipeline_passes,
        "forwarded": tm.forwarded,
        "dropped": tm.dropped,
        "reflected": tm.reflected,
        "to_cpu": tm.to_cpu,
        "multicast": tm.multicast,
        "flow_cache": dataplane.flow_cache.stats(),
        "codegen": dataplane.codegen.stats(),
    }


def _run_batch(dataplane, mode: str, packets) -> tuple[list, float]:
    """Process one packet batch; returns (payload, CPU seconds spent).

    CPU time (not wall time) is reported so the coordinator can project
    aggregate capacity independently of how many cores the host actually
    grants — on an unloaded multi-core machine the two are equal.
    """
    cpu0 = time.process_time()
    results = dataplane.process_many(packets)
    cpu_s = time.process_time() - cpu0
    if mode == "verdicts":
        payload = [
            (r.verdict.value, r.egress_port, r.recirculations) for r in results
        ]
    else:
        payload = results
    return payload, cpu_s


def _serve_shm_batch(conn, dataplane, mode: str, rings, reply_buf) -> None:
    """One streamed batch session over the shared-memory ring pair.

    Drains packet chunks from the request ring (processing each as soon
    as it lands — the coordinator is still routing later chunks), pushes
    encoded result chunks into the response ring, and finishes with an
    ``ok_shm`` pipe reply.  Result chunks too large for the ring are
    replaced in-stream by an overflow reference and ride in the final
    reply, so the coordinator reassembles everything in stream order.
    """
    req_ring, resp_ring = rings
    packet_decoder = shm_codec.PacketDecoder()
    result_encoder = shm_codec.PacketEncoder()
    state = {"rest": None, "total": None}
    overflow: list[bytes] = []
    results_total = 0
    chunks_seen = 0
    cpu_total = 0.0

    def pipe_turn(timeout: float = 0.0005) -> None:
        # A blocked session still listens: batch_rest redirects the tail
        # of the stream to the pipe, a closed pipe ends the worker.
        if conn.poll(timeout):
            msg = decode_msg(conn.recv_bytes())
            if msg[0] != "batch_rest":
                raise ValueError(f"unexpected {msg[0]!r} during shm batch")
            state["rest"] = list(msg[1])
            state["total"] = msg[2]

    def process_chunk(chunk) -> None:
        nonlocal results_total, chunks_seen, cpu_total
        _tag, defs, blob, extra = chunk
        chunks_seen += 1
        if defs:
            packet_decoder.add_defs(defs)
        packets = packet_decoder.decode_packets(blob, extra)
        cpu0 = time.process_time()
        results = dataplane.process_many(packets)
        cpu_total += time.process_time() - cpu0
        out_blob, out_extra = shm_codec.encode_results(
            results, mode, result_encoder
        )
        defs = result_encoder.take_defs()
        payload = shm_codec.encode_chunk(defs, out_blob, out_extra)
        if len(payload) > resp_ring.max_record:
            overflow.append(shm_codec.encode_chunk([], out_blob, out_extra))
            payload = shm_codec.encode_overflow_ref(
                len(overflow) - 1, len(results), defs
            )
        while not resp_ring.try_push(payload):
            pipe_turn()
        results_total += len(results)

    while True:
        payload = req_ring.try_pop()
        if payload is None:
            if state["rest"] is not None:
                break  # ring drained; the stream's tail came by pipe
            pipe_turn()
            continue
        chunk = shm_codec.decode_ring_payload(payload)
        if chunk[0] == "E":
            state["total"] = chunk[1]
            break
        process_chunk(chunk)
    if state["rest"]:
        for payload in state["rest"]:
            process_chunk(shm_codec.decode_ring_payload(payload))
    if state["total"] is not None and chunks_seen != state["total"]:
        raise RuntimeError(
            f"shm stream lost chunks: saw {chunks_seen} of {state['total']}"
        )
    conn.send_bytes(
        encode_msg(("ok_shm", results_total, cpu_total, overflow), out=reply_buf)
    )


def worker_main(conn, setup_bytes: bytes, ring_names=None) -> None:
    """Blocking request loop of one shard worker (runs in a child process)."""
    # The coordinator owns worker lifetime (stop message / pipe close); a
    # terminal Ctrl-C must not make every shard dump a KeyboardInterrupt.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    rings = None
    if ring_names is not None:
        try:
            rings = (ShmRing.attach(ring_names[0]), ShmRing.attach(ring_names[1]))
        except Exception:  # pragma: no cover - degraded host
            rings = None
    try:
        _serve(conn, setup_bytes, rings)
    finally:
        if rings is not None:
            rings[0].close()
            rings[1].close()


def _serve(conn, setup_bytes: bytes, rings) -> None:
    dataplane = _build_dataplane(setup_bytes)
    handle_map: dict[int, int] = {}
    applied_gen = 0
    ctl_errors: list[str] = []
    reply_buf = bytearray()
    # Zero-packet sub-batches reply with this precomputed frame: no
    # pickling an empty list per request on either end.
    empty_reply = bytes(
        encode_msg(
            ("ok", (pickle.dumps([], protocol=pickle.HIGHEST_PROTOCOL), 0.0))
        )
    )
    while True:
        try:
            msg = decode_msg(conn.recv_bytes())
        except (EOFError, OSError):
            return
        kind = msg[0]
        if kind == "ctl_run":
            # Pipelined, coalesced: one frame carries every command the
            # coordinator queued since the last flush.  Never replies;
            # failures surface at the next barrier.
            _kind, gen, ops = msg
            for op in ops:
                try:
                    _apply_ctl(dataplane, handle_map, op)
                except Exception:
                    ctl_errors.append(
                        f"ctl gen {gen} {op[0]}: {traceback.format_exc()}"
                    )
            applied_gen = gen
            continue
        try:
            if kind == "barrier":
                errors, ctl_errors = ctl_errors, []
                conn.send_bytes(
                    encode_msg(("ack", msg[1], applied_gen, errors), out=reply_buf)
                )
            elif kind == "batch_shm":
                if rings is None:
                    raise RuntimeError("shm rings unavailable in this worker")
                _serve_shm_batch(conn, dataplane, msg[1], rings, reply_buf)
            elif kind == "batch":
                # Packets arrive as one pickle blob (bytes leaf) and the
                # results go back the same way — one pickle per batch is
                # the fast path for opaque packet/result objects.
                _kind, mode, blob = msg
                packets = pickle.loads(blob) if blob else []
                if not packets:
                    conn.send_bytes(empty_reply)
                    continue
                payload, cpu_s = _run_batch(dataplane, mode, packets)
                conn.send_bytes(
                    encode_msg(
                        (
                            "ok",
                            (
                                pickle.dumps(
                                    payload, protocol=pickle.HIGHEST_PROTOCOL
                                ),
                                cpu_s,
                            ),
                        ),
                        out=reply_buf,
                    )
                )
            elif kind == "read_buckets":
                _kind, phys_rpb, addrs = msg
                values = [dataplane.read_bucket(phys_rpb, a) for a in addrs]
                conn.send_bytes(encode_msg(("ok", values), out=reply_buf))
            elif kind == "write_buckets":
                _kind, phys_rpb, pairs = msg
                for addr, value in pairs:
                    dataplane.write_bucket(phys_rpb, addr, value)
                conn.send_bytes(encode_msg(("ok", None), out=reply_buf))
            elif kind == "counters":
                _kind, refs = msg
                hits = [
                    dataplane.read_entry_counter(table, handle_map[handle])
                    for table, handle in refs
                ]
                conn.send_bytes(encode_msg(("ok", hits), out=reply_buf))
            elif kind == "stats":
                conn.send_bytes(
                    encode_msg(("ok", _stats_payload(dataplane)), out=reply_buf)
                )
            elif kind == "harvest":
                # Retirement snapshot: every entry counter plus the final
                # stats payload in one round trip, so the coordinator can
                # fold this replica's history into its base offsets.
                _kind, refs = msg
                hits = [
                    dataplane.read_entry_counter(table, handle_map[handle])
                    for table, handle in refs
                ]
                conn.send_bytes(
                    encode_msg(
                        ("ok", (hits, _stats_payload(dataplane))), out=reply_buf
                    )
                )
            elif kind == "stop":
                conn.send_bytes(encode_msg(("bye",), out=reply_buf))
                return
            else:
                raise ValueError(f"unknown message {kind!r}")
        except Exception:
            # Synchronous requests get the failure as their reply; the
            # coordinator raises it as a WorkerError.
            try:
                conn.send_bytes(
                    encode_msg(("err", traceback.format_exc()), out=reply_buf)
                )
            except (OSError, BrokenPipeError):
                return
