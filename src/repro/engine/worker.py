"""The shard worker process: one full switch replica behind a pipe.

Each worker owns a complete :class:`~repro.dataplane.runpro.P4runproDataPlane`
replica and serves two kinds of messages from the coordinator:

* **pipelined control commands** (``ctl_run``) — southbound mutations
  fanned out by :class:`~repro.engine.engine.FanoutBinding`, coalesced
  into one multi-command binary frame per flush (:mod:`.sbwire`) and
  applied in FIFO order without replies; failures are held until the
  next barrier;
* **synchronous requests** — ``barrier`` (ack with the applied generation
  plus any deferred control errors), ``batch`` (process packets, reply
  verdicts or full results plus the worker's CPU seconds), register
  region reads/writes for the cross-shard merge, entry-counter reads,
  ``harvest`` (entry counters plus final stats in one round trip, used
  when the coordinator retires this worker), and ``stats``/``stop``.

Table-entry handles are process-local (the simulator draws them from a
process-global counter), so the coordinator ships *its* handle with every
insert and the worker keeps a ``coordinator handle -> local handle`` map;
deletes and counter reads address entries by coordinator handle.

The module is import-safe for both ``fork`` and ``spawn`` start methods:
:func:`worker_main` is a top-level function and builds its replica from a
pickled ``(TargetSpec, ParseMachine | None)`` provisioning tuple.
"""

from __future__ import annotations

import pickle
import signal
import time
import traceback

from .sbwire import decode_msg, encode_msg, unpack_entry


def _build_dataplane(setup_bytes: bytes):
    from ..dataplane.runpro import P4runproDataPlane

    setup = pickle.loads(setup_bytes)
    spec, parse_machine = setup[0], setup[1]
    flow_cache = setup[2] if len(setup) > 2 else True
    codegen = setup[3] if len(setup) > 3 else True
    return P4runproDataPlane(
        spec, parse_machine, flow_cache=flow_cache, codegen=codegen
    )


def _apply_ctl(dataplane, handle_map: dict, op: tuple) -> None:
    kind = op[0]
    if kind == "insert":
        _kind, coord_handle, packed = op
        handle_map[coord_handle] = dataplane.insert_entry(unpack_entry(packed))
    elif kind == "insert_many":
        _kind, pairs = op
        for coord_handle, packed in pairs:
            handle_map[coord_handle] = dataplane.insert_entry(unpack_entry(packed))
    elif kind == "delete":
        _kind, table, coord_handle = op
        dataplane.delete_entry(table, handle_map.pop(coord_handle))
    elif kind == "reset_memory":
        _kind, phys_rpb, base, size = op
        dataplane.reset_memory(phys_rpb, base, size)
    elif kind == "write_bucket":
        _kind, phys_rpb, addr, value = op
        dataplane.write_bucket(phys_rpb, addr, value)
    elif kind == "mcast":
        _kind, group, ports = op
        dataplane.configure_multicast_group(group, list(ports))
    else:
        raise ValueError(f"unknown control op {kind!r}")


def _stats_payload(dataplane) -> dict:
    tm = dataplane.switch.tm
    return {
        "packets_in": dataplane.switch.packets_in,
        "pipeline_passes": dataplane.switch.pipeline_passes,
        "forwarded": tm.forwarded,
        "dropped": tm.dropped,
        "reflected": tm.reflected,
        "to_cpu": tm.to_cpu,
        "multicast": tm.multicast,
        "flow_cache": dataplane.flow_cache.stats(),
        "codegen": dataplane.codegen.stats(),
    }


def _run_batch(dataplane, mode: str, packets) -> tuple[list, float]:
    """Process one packet batch; returns (payload, CPU seconds spent).

    CPU time (not wall time) is reported so the coordinator can project
    aggregate capacity independently of how many cores the host actually
    grants — on an unloaded multi-core machine the two are equal.
    """
    cpu0 = time.process_time()
    results = dataplane.process_many(packets)
    cpu_s = time.process_time() - cpu0
    if mode == "verdicts":
        payload = [
            (r.verdict.value, r.egress_port, r.recirculations) for r in results
        ]
    else:
        payload = results
    return payload, cpu_s


def worker_main(conn, setup_bytes: bytes) -> None:
    """Blocking request loop of one shard worker (runs in a child process)."""
    # The coordinator owns worker lifetime (stop message / pipe close); a
    # terminal Ctrl-C must not make every shard dump a KeyboardInterrupt.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    dataplane = _build_dataplane(setup_bytes)
    handle_map: dict[int, int] = {}
    applied_gen = 0
    ctl_errors: list[str] = []
    reply_buf = bytearray()
    while True:
        try:
            msg = decode_msg(conn.recv_bytes())
        except (EOFError, OSError):
            return
        kind = msg[0]
        if kind == "ctl_run":
            # Pipelined, coalesced: one frame carries every command the
            # coordinator queued since the last flush.  Never replies;
            # failures surface at the next barrier.
            _kind, gen, ops = msg
            for op in ops:
                try:
                    _apply_ctl(dataplane, handle_map, op)
                except Exception:
                    ctl_errors.append(
                        f"ctl gen {gen} {op[0]}: {traceback.format_exc()}"
                    )
            applied_gen = gen
            continue
        try:
            if kind == "barrier":
                errors, ctl_errors = ctl_errors, []
                conn.send_bytes(
                    encode_msg(("ack", msg[1], applied_gen, errors), out=reply_buf)
                )
            elif kind == "batch":
                # Packets arrive as one pickle blob (bytes leaf) and the
                # results go back the same way — one pickle per batch is
                # the fast path for opaque packet/result objects.
                _kind, mode, blob = msg
                payload, cpu_s = _run_batch(dataplane, mode, pickle.loads(blob))
                conn.send_bytes(
                    encode_msg(
                        (
                            "ok",
                            (
                                pickle.dumps(
                                    payload, protocol=pickle.HIGHEST_PROTOCOL
                                ),
                                cpu_s,
                            ),
                        ),
                        out=reply_buf,
                    )
                )
            elif kind == "read_buckets":
                _kind, phys_rpb, addrs = msg
                values = [dataplane.read_bucket(phys_rpb, a) for a in addrs]
                conn.send_bytes(encode_msg(("ok", values), out=reply_buf))
            elif kind == "write_buckets":
                _kind, phys_rpb, pairs = msg
                for addr, value in pairs:
                    dataplane.write_bucket(phys_rpb, addr, value)
                conn.send_bytes(encode_msg(("ok", None), out=reply_buf))
            elif kind == "counters":
                _kind, refs = msg
                hits = [
                    dataplane.read_entry_counter(table, handle_map[handle])
                    for table, handle in refs
                ]
                conn.send_bytes(encode_msg(("ok", hits), out=reply_buf))
            elif kind == "stats":
                conn.send_bytes(
                    encode_msg(("ok", _stats_payload(dataplane)), out=reply_buf)
                )
            elif kind == "harvest":
                # Retirement snapshot: every entry counter plus the final
                # stats payload in one round trip, so the coordinator can
                # fold this replica's history into its base offsets.
                _kind, refs = msg
                hits = [
                    dataplane.read_entry_counter(table, handle_map[handle])
                    for table, handle in refs
                ]
                conn.send_bytes(
                    encode_msg(
                        ("ok", (hits, _stats_payload(dataplane))), out=reply_buf
                    )
                )
            elif kind == "stop":
                conn.send_bytes(encode_msg(("bye",), out=reply_buf))
                return
            else:
                raise ValueError(f"unknown message {kind!r}")
        except Exception:
            # Synchronous requests get the failure as their reply; the
            # coordinator raises it as a WorkerError.
            try:
                conn.send_bytes(
                    encode_msg(("err", traceback.format_exc()), out=reply_buf)
                )
            except (OSError, BrokenPipeError):
                return
