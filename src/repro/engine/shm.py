"""Zero-copy shared-memory packet rings for the engine data path.

Two pieces:

* :class:`ShmRing` — a single-producer/single-consumer byte ring over one
  :class:`multiprocessing.shared_memory.SharedMemory` segment.  The head
  (consumer) and tail (producer) counters live on separate cache lines at
  the front of the segment, followed by the embedded data capacity (the
  kernel may round the segment size up, so the attaching side reads the
  capacity out of the segment instead of deriving it).  Counters are
  monotonic u64 byte offsets; ``position = counter % capacity``.  Records
  are framed ``[u32 length][payload]``; when a record does not fit in the
  bytes remaining before the wrap point, the producer writes a wrap
  marker (``0xFFFFFFFF``) and restarts at offset zero — and when fewer
  than four bytes remain (no room for a marker), both sides skip the
  remainder implicitly.

* a wire-native packet/result codec — :class:`PacketEncoder`,
  :class:`PacketDecoder`, :func:`encode_result`, :func:`decode_result` —
  that turns packets into compact records without pickling on the hot
  path.  Header *compositions* (the ordered header/field-name shape of a
  packet) are interned per stream: the first packet of a new shape ships
  its composition definition in-band, every later packet of that shape is
  just ``(comp_id, struct-packed u64 field values, size, ts, port,
  queue_depth)``.  Packets the fast layout cannot express (negative or
  oversized field values) fall back to a structural dict record, still
  wire-encoded.  Chunks of records travel as one wire payload
  (:func:`repro.service.wire.encode_payload` with ``preserve_tuples`` and
  the trusted-channel pickle extension enabled for exotic leaves).

The ring transports *opaque byte payloads*; chunk framing and codec
choices live in the callers (:mod:`.engine`, :mod:`.worker`).
"""

from __future__ import annotations

import struct

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import resource_tracker, shared_memory

    HAVE_SHM = True
except ImportError:  # pragma: no cover - exotic builds without _posixshmem
    shared_memory = None
    resource_tracker = None
    HAVE_SHM = False

from ..rmt.packet import Packet
from ..rmt.pipeline import SwitchResult, Verdict
from ..service.wire import decode_payload, encode_payload

#: default per-direction ring capacity (data area, bytes)
DEFAULT_RING_BYTES = 1 << 20

#: default packets per streamed chunk record
DEFAULT_CHUNK_PACKETS = 256

_CACHE_LINE = 64
_HEAD_OFF = 0
_TAIL_OFF = _CACHE_LINE
_CAP_OFF = 2 * _CACHE_LINE
_DATA_OFF = 3 * _CACHE_LINE

_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")
_WRAP = 0xFFFFFFFF
_WRAP_BYTES = _U32.pack(_WRAP)


class RingError(RuntimeError):
    """A ring operation that cannot succeed (oversized record, closed)."""


class ShmRing:
    """SPSC byte ring over one shared-memory segment.

    Exactly one process calls :meth:`try_push` and exactly one calls
    :meth:`try_pop`; the counters need no locks because each side writes
    only its own counter and reads the other's (CPython emits the payload
    stores before the counter-publish store in program order, which is
    sufficient on the cache-coherent hosts ``multiprocessing`` targets).
    """

    def __init__(self, shm, data_bytes: int, owner: bool):
        self._shm = shm
        self._buf = shm.buf
        self._cap = data_bytes
        self._owner = owner
        self._closed = False
        #: largest payload a push will attempt: a record must never fill
        #: the ring completely (full would be indistinguishable from
        #: empty) and wrap slack must always fit
        self.max_record = data_bytes // 2 - 8

    # -- lifecycle ----------------------------------------------------------
    @classmethod
    def create(cls, data_bytes: int = DEFAULT_RING_BYTES) -> "ShmRing":
        if not HAVE_SHM:
            raise RingError("multiprocessing.shared_memory is unavailable")
        if data_bytes < 4 * _CACHE_LINE:
            raise ValueError(f"ring of {data_bytes} bytes is too small")
        shm = shared_memory.SharedMemory(create=True, size=_DATA_OFF + data_bytes)
        ring = cls(shm, data_bytes, owner=True)
        buf = shm.buf
        buf[_HEAD_OFF:_HEAD_OFF + 8] = _U64.pack(0)
        buf[_TAIL_OFF:_TAIL_OFF + 8] = _U64.pack(0)
        buf[_CAP_OFF:_CAP_OFF + 8] = _U64.pack(data_bytes)
        return ring

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        if not HAVE_SHM:
            raise RingError("multiprocessing.shared_memory is unavailable")
        # The creator's resource tracker owns cleanup.  Attaching would
        # re-register the segment with the (shared, under fork) tracker;
        # un-registering afterwards would then clobber the creator's own
        # record.  Suppress registration for the attach instead (3.11 has
        # no ``track=False``).
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
        (cap,) = _U64.unpack(bytes(shm.buf[_CAP_OFF:_CAP_OFF + 8]))
        return cls(shm, cap, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def capacity(self) -> int:
        return self._cap

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._buf = None
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - defensive
            pass

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover - defensive
            pass

    # -- counters -----------------------------------------------------------
    def _read_head(self) -> int:
        return _U64.unpack_from(self._buf, _HEAD_OFF)[0]

    def _read_tail(self) -> int:
        return _U64.unpack_from(self._buf, _TAIL_OFF)[0]

    def __len__(self) -> int:
        """Bytes currently enqueued (framing included)."""
        return self._read_tail() - self._read_head()

    # -- producer -----------------------------------------------------------
    def try_push(self, payload) -> bool:
        """Enqueue one record; False when the ring lacks space."""
        buf = self._buf
        if buf is None:
            raise RingError("ring is closed")
        n = len(payload)
        if n > self.max_record:
            raise RingError(
                f"record of {n} bytes exceeds ring max {self.max_record}"
            )
        cap = self._cap
        tail = self._read_tail()
        pos = tail - (tail // cap) * cap
        rem = cap - pos
        needed = 4 + n
        if rem < 4:
            skip, wrap = rem, False
        elif rem < needed:
            skip, wrap = rem, True
        else:
            skip = wrap = 0
        if cap - (tail - self._read_head()) < skip + needed:
            return False
        if wrap:
            buf[_DATA_OFF + pos:_DATA_OFF + pos + 4] = _WRAP_BYTES
        if skip:
            tail += skip
            pos = 0
        base = _DATA_OFF + pos
        buf[base:base + 4] = _U32.pack(n)
        buf[base + 4:base + 4 + n] = payload
        buf[_TAIL_OFF:_TAIL_OFF + 8] = _U64.pack(tail + needed)
        return True

    # -- consumer -----------------------------------------------------------
    def try_pop(self) -> bytes | None:
        """Dequeue one record; None when the ring is empty."""
        buf = self._buf
        if buf is None:
            raise RingError("ring is closed")
        cap = self._cap
        head = self._read_head()
        tail = self._read_tail()
        while True:
            if head == tail:
                return None
            pos = head - (head // cap) * cap
            rem = cap - pos
            if rem < 4:
                head += rem
                continue
            (n,) = _U32.unpack_from(buf, _DATA_OFF + pos)
            if n == _WRAP:
                head += rem
                continue
            base = _DATA_OFF + pos + 4
            payload = bytes(buf[base:base + n])
            buf[_HEAD_OFF:_HEAD_OFF + 8] = _U64.pack(head + 4 + n)
            return payload


# -- packet / result codec ---------------------------------------------------

#: verdict index table: results ship the index, not the string
VERDICT_VALUES = tuple(v for v in Verdict)

#: per-packet fast-path record header: comp_id, size, ts, port, queue_depth
_PKT_HDR = struct.Struct("<iqdqq")
#: per-result verdicts-mode record: verdict idx, egress port, recirculations
_RES_V = struct.Struct("<iqq")
#: egress-port sentinel for None inside the packed i64 slot
_PORT_NONE = -(1 << 60)


class PacketEncoder:
    """Stream encoder interning header compositions.

    One instance per (stream, direction); compositions are numbered from
    zero in first-seen order and their definitions travel in-band inside
    the first chunk that uses them (:meth:`take_defs`).  A chunk's records
    pack into one contiguous blob — fixed :data:`_PKT_HDR` header plus the
    composition's struct-packed u64 field values per packet — so the wire
    layer moves a single ``bytes`` leaf instead of thousands of tuples.
    """

    def __init__(self):
        self._comps: dict[tuple, tuple[int, struct.Struct | None]] = {}
        self._pending_defs: list = []

    def encode_packets(self, packets) -> tuple[bytes, list]:
        """A chunk of packets -> (packed blob, structural fallbacks).

        Packets the fast layout cannot express (negative or >u64 field
        values, non-int fields, non-float ``ts``) leave a ``comp_id -1``
        marker in the blob and append ``(headers, size, ts, port,
        queue_depth)`` to the fallback list, consumed in blob order.
        """
        comps = self._comps
        hdr_pack = _PKT_HDR.pack
        parts: list[bytes] = []
        fallbacks: list = []
        for pkt in packets:
            headers = pkt.headers
            ts = pkt.ts
            try:
                if type(ts) is not float:
                    raise TypeError("ts must stay float across the blob")
                key = tuple((h, tuple(f)) for h, f in headers.items())
                ent = comps.get(key)
                if ent is None:
                    comp_id = len(comps)
                    count = sum(len(fields) for _h, fields in key)
                    st = struct.Struct(f"<{count}Q") if count else None
                    ent = comps[key] = (comp_id, st)
                    self._pending_defs.append(
                        (comp_id, [(h, list(fields)) for h, fields in key])
                    )
                comp_id, st = ent
                values = []
                for hfields in headers.values():
                    values.extend(hfields.values())
                # Pack values first — a failure here must not leave a
                # stray record header in the blob.
                packed = st.pack(*values) if st else b""
                parts.append(
                    hdr_pack(
                        comp_id, pkt.size, ts, pkt.ingress_port, pkt.queue_depth
                    )
                )
                if packed:
                    parts.append(packed)
            except (struct.error, TypeError):
                parts.append(hdr_pack(-1, 0, 0.0, 0, 0))
                fallbacks.append(
                    (headers, pkt.size, ts, pkt.ingress_port, pkt.queue_depth)
                )
        return b"".join(parts), fallbacks

    def take_defs(self) -> list:
        """Composition definitions added since the last call."""
        defs, self._pending_defs = self._pending_defs, []
        return defs


class PacketDecoder:
    """Mirror of :class:`PacketEncoder`: replays in-band definitions."""

    def __init__(self):
        self._comps: dict[int, tuple[list, struct.Struct | None]] = {}

    def add_defs(self, defs) -> None:
        for comp_id, layout in defs:
            count = sum(len(fields) for _h, fields in layout)
            st = struct.Struct(f"<{count}Q") if count else None
            self._comps[comp_id] = (layout, st)

    def decode_packets(self, blob, fallbacks) -> list[Packet]:
        comps = self._comps
        hdr_unpack = _PKT_HDR.unpack_from
        hdr_size = _PKT_HDR.size
        fb = iter(fallbacks)
        out: list[Packet] = []
        off, end = 0, len(blob)
        while off < end:
            comp_id, size, ts, port, queue_depth = hdr_unpack(blob, off)
            off += hdr_size
            if comp_id == -1:
                headers_src, size, ts, port, queue_depth = next(fb)
                headers = {h: dict(f) for h, f in headers_src.items()}
            else:
                layout, st = comps[comp_id]
                if st:
                    values = st.unpack_from(blob, off)
                    off += st.size
                else:
                    values = ()
                headers = {}
                i = 0
                for hname, fields in layout:
                    n = len(fields)
                    headers[hname] = dict(zip(fields, values[i:i + n]))
                    i += n
            out.append(
                Packet(
                    headers=headers,
                    size=size,
                    ts=ts,
                    ingress_port=port,
                    queue_depth=queue_depth,
                )
            )
        return out


def encode_results(results, mode: str, encoder: PacketEncoder):
    """A worker batch's :class:`SwitchResult` list -> (blob, extra).

    Verdicts mode packs every record into the blob (fixed 20-byte
    :data:`_RES_V` entries, ``iter_unpack``-able on the other side); full
    mode ships structural tuple records in ``extra`` (an empty blob) —
    bridge dicts and nested packets have no fixed layout.
    """
    if mode == "verdicts":
        pack = _RES_V.pack
        vidx = _VERDICT_INDEX
        return (
            b"".join(
                pack(
                    vidx[r.verdict.value],
                    _PORT_NONE if r.egress_port is None else r.egress_port,
                    r.recirculations,
                )
                for r in results
            ),
            [],
        )
    return (
        b"",
        [
            (
                _VERDICT_INDEX[r.verdict.value],
                r.egress_port,
                r.recirculations,
                r.egress_ports,
                r.bridge,
                encoder.encode_packets([r.packet]),
            )
            for r in results
        ],
    )


def decode_results(blob, extra, mode: str, decoder: PacketDecoder) -> list:
    """Inverse of :func:`encode_results` for one chunk."""
    if mode == "verdicts":
        verdicts = VERDICT_VALUES
        return [
            (
                verdicts[vidx].value,
                None if port == _PORT_NONE else port,
                recircs,
            )
            for vidx, port, recircs in _RES_V.iter_unpack(blob)
        ]
    out = []
    for vidx, port, recircs, egress_ports, bridge, packet_rec in extra:
        pkt_blob, pkt_fallbacks = packet_rec
        out.append(
            SwitchResult(
                verdict=VERDICT_VALUES[vidx],
                egress_port=port,
                packet=decoder.decode_packets(pkt_blob, pkt_fallbacks)[0],
                recirculations=recircs,
                egress_ports=tuple(egress_ports),
                bridge=bridge,
            )
        )
    return out


def result_count(blob, extra) -> int:
    """Records contributed by one result chunk (either representation)."""
    return len(blob) // _RES_V.size if blob else len(extra)


_VERDICT_INDEX = {v.value: i for i, v in enumerate(VERDICT_VALUES)}


# -- chunk framing -----------------------------------------------------------
#
# A ring payload is one wire-encoded tuple:
#   ("R", defs, blob, extra) — a chunk of records (packets or results):
#                              ``blob`` is the packed fast-path records,
#                              ``extra`` the structural stragglers, and
#                              ``defs`` any composition definitions first
#                              used by this chunk;
#   ("E", count)             — end-of-stream; count = chunks sent, a cheap
#                              integrity check against dropped records.


def encode_chunk(defs, blob, extra, out: bytearray | None = None) -> bytes:
    return bytes(
        encode_payload(
            ("R", defs, blob, extra),
            preserve_tuples=True,
            allow_pickle=True,
            out=out,
        )
    )


def encode_end(count: int) -> bytes:
    return bytes(encode_payload(("E", count), preserve_tuples=True))


def encode_overflow_ref(idx: int, count: int, defs) -> bytes:
    """In-stream stand-in for a result chunk too large for the ring.

    The real records ride in the session's final pipe reply; the stand-in
    keeps stream order (``idx`` names the overflow slot, ``count`` the
    records it contributes) and carries any composition definitions the
    oversized chunk introduced, since later in-ring chunks may reference
    them.
    """
    return bytes(
        encode_payload(
            ("O", idx, count, defs), preserve_tuples=True, allow_pickle=True
        )
    )


def decode_ring_payload(data):
    """One ring payload -> ("R", defs, blob, extra) | ("E", count) |
    ("O", idx, count, defs)."""
    return decode_payload(data, allow_pickle=True)
