"""Flow-sharded multi-process packet engine.

Runs N worker processes, each owning a full switch replica built from the
same deployed program state, and routes packets to workers by a stable
RSS-style hash of the flow key (per-flow order preserved).  Programs
whose stateful ops are all mergeable run data-parallel with cross-shard
merge; non-mergeable programs are pinned to one owning shard by the
placement map.  See ``docs/ARCHITECTURE.md`` ("The sharded engine").
"""

from .engine import (
    EngineError,
    FanoutBinding,
    ShardedEngine,
    ShardPlan,
    WorkerError,
    flow_hash,
)

__all__ = [
    "EngineError",
    "FanoutBinding",
    "ShardPlan",
    "ShardedEngine",
    "WorkerError",
    "flow_hash",
]
