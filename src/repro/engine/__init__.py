"""Flow-sharded multi-process packet engine.

Runs an elastic fleet of worker processes, each owning a full switch
replica built from the same deployed program state, and routes packets to
workers through a weighted consistent-hash ring over a stable RSS-style
hash of the flow key (per-flow order preserved; rescaling remaps ~1/N of
flows).  Programs whose stateful ops are all mergeable run data-parallel
with cross-shard merge; non-mergeable programs are pinned to one owning
shard by the placement map and can live-migrate between shards without
dropping or reordering traffic.  A load-aware rebalancer combines pinned
migrations with ring reweighting when one shard runs hot.  See
``docs/ARCHITECTURE.md`` ("The sharded engine").
"""

from .engine import (
    EngineError,
    FanoutBinding,
    MigrationError,
    ShardedEngine,
    ShardPlan,
    WorkerError,
    flow_hash,
)
from .ring import DEFAULT_VNODES, HashRing
from .sbwire import FrameTooLargeError, MAX_SB_FRAME_BYTES, send_frame
from .shm import (
    DEFAULT_CHUNK_PACKETS,
    DEFAULT_RING_BYTES,
    HAVE_SHM,
    RingError,
    ShmRing,
)

__all__ = [
    "DEFAULT_CHUNK_PACKETS",
    "DEFAULT_RING_BYTES",
    "DEFAULT_VNODES",
    "EngineError",
    "FanoutBinding",
    "FrameTooLargeError",
    "HAVE_SHM",
    "HashRing",
    "MAX_SB_FRAME_BYTES",
    "MigrationError",
    "RingError",
    "ShardPlan",
    "ShardedEngine",
    "ShmRing",
    "WorkerError",
    "flow_hash",
    "send_frame",
]
