"""The sharded engine coordinator: placement, fan-out, routing, merge.

:class:`ShardedEngine` owns

* a **coordinator replica** — a full controller + data plane that never
  processes packets.  Its resource manager is the single source of truth
  for allocation, and its register arrays hold the authoritative merged
  state (the *base* every shard was last rebased to);
* an **elastic fleet** of worker processes (:mod:`repro.engine.worker`),
  each a full switch replica driven over a pipe.  Workers can be added
  and removed at runtime: a new worker bootstraps from the coordinator's
  pickled provisioning plus a replay of every tracked table entry,
  multicast group, and non-zero register bucket (rebased through
  :meth:`sync` first, so the snapshot is the merged truth); a departing
  worker first hands its pinned programs to a peer, folds its mergeable
  deltas through :meth:`sync`, and has its entry counters and
  traffic-manager totals harvested into coordinator-side base offsets so
  aggregated statistics stay bit-identical;
* the **placement map** — ``program_id -> owning shard`` for pinned
  programs, ``None`` for data-parallel ones (stateless, or every memory
  op mergeable-and-unobserved; see
  :mod:`repro.compiler.register_semantics`);
* a **consistent-hash ring** (:class:`repro.engine.ring.HashRing`) —
  data-parallel flows route to the owner of their hash's arc, so
  rescaling by one worker remaps only ~1/N of the flows (the modulo
  router this replaced remapped nearly all of them).  Per-worker ring
  weights let the rebalancer steer hash traffic away from shards that
  are hot with pinned-program traffic;
* :class:`FanoutBinding` — the coordinator controller's southbound
  binding.  Every control-plane mutation (entry insert/delete, memory
  reset, bucket write, multicast config) applies locally and is broadcast
  to every worker as a generation-stamped pipelined command; an explicit
  ``barrier`` drains the command channel and collects acks before any
  traffic or state read, so a deploy followed immediately by an inject
  can never observe a shard without the program.

Packet routing parses each packet on the coordinator replica and runs the
*real* init-table lookup, so ownership decisions (first-match filter
semantics, conditional parse paths) are bit-identical to what every
worker's own init block will decide.  Packets of a pinned program go to
its owning shard; everything else is spread by an RSS-style CRC32 of the
5-tuple through the ring, which keeps every flow on one shard (per-flow
order preserved).

**Live migration** moves a pinned program between shards without
dropping or reordering a packet: :meth:`ShardedEngine.begin_migration`
quiesces the program at the router (its packets park, in arrival order,
in a per-program holding queue), :meth:`ShardedEngine.complete_migration`
barrier-drains the owning shard via the ctl_run ack machinery, snapshots
the program's SALU register regions, installs them on the target shard
(mirroring the coordinator base), flips the placement map, and replays
the parked packets.  Per-flow order holds because every parked flow
belongs to the migrating program and replays in arrival order; register
state is bit-identical because the owner was drained before the
snapshot.  A load-aware :meth:`ShardedEngine.rebalance` watches
per-shard routed-packet and CPU-time telemetry and combines pinned
migrations with ring reweighting when one shard's share exceeds a skew
threshold.

Cross-shard merge (:meth:`ShardedEngine.sync`) folds each mergeable
memory block's shard replicas into the coordinator's base value with
:func:`repro.rmt.salu.merge_buckets` and rebases all workers to the
merged value; pinned programs just mirror their owning shard's region
into the coordinator.  It runs on demand before every control-plane read
or write of register state, and periodically every ``merge_every``
injected packets.
"""

from __future__ import annotations

import multiprocessing
import pickle
import struct
import time
import zlib
from dataclasses import dataclass, field

from ..compiler.entries import EntryConfig
from ..compiler.target import TargetSpec
from ..controlplane.controller import Controller
from ..controlplane.manager import ProgramNotFoundError, ProgramState
from ..dataplane import constants as dp
from ..dataplane.runpro import P4runproDataPlane
from ..rmt.phv import PHV
from ..rmt.salu import merge_buckets
from . import shm as shm_codec
from .ring import DEFAULT_VNODES, HashRing
from .sbwire import decode_msg, encode_msg, pack_entry, send_frame
from .shm import DEFAULT_CHUNK_PACKETS, DEFAULT_RING_BYTES, HAVE_SHM, ShmRing
from .worker import worker_main


class EngineError(RuntimeError):
    """Coordinator-side engine failure (dead worker, timeout)."""


class WorkerError(EngineError):
    """A worker request or fanned-out control command failed."""


class MigrationError(EngineError):
    """A live-migration request was invalid or cannot proceed."""


_FLOW_PACK = struct.Struct("!IIIHH")

#: bounded history for migration latency summaries
_LATENCY_KEEP = 512


def flow_hash(five_tuple: tuple[int, int, int, int, int]) -> int:
    """Stable RSS-style flow hash: CRC32 over the packed 5-tuple."""
    src, dst, proto, sport, dport = five_tuple
    return zlib.crc32(
        _FLOW_PACK.pack(
            src & 0xFFFFFFFF,
            dst & 0xFFFFFFFF,
            proto & 0xFFFFFFFF,
            sport & 0xFFFF,
            dport & 0xFFFF,
        )
    )


@dataclass
class ShardPlan:
    """A routed, pre-pickled packet batch, reusable across injections.

    ``frames[w]`` is the ready-to-send wire frame for worker ``w``
    (workers that received no packets are absent); ``index_lists[w]``
    maps the worker's reply positions back to original batch positions.
    Building the plan once amortizes routing and serialization across
    repeated :meth:`ShardedEngine.inject_plan` calls (benchmark loops).

    Plans are stamped with the engine's ``routing_version``; any rescale,
    migration, or ring reweight bumps the version and a stale plan is
    transparently re-routed from its retained ``packets`` at the next
    :meth:`ShardedEngine.inject_plan`.  ``parked`` lists the positions of
    packets owned by a program that is mid-migration — those are held in
    the program's holding queue instead of being dispatched.
    """

    frames: dict[int, bytes]
    index_lists: dict[int, list[int]]
    total: int
    mode: str
    #: per-shard pre-encoded shm chunk payloads for workers with rings;
    #: a shard appears in either ``chunks`` (ring transport) or
    #: ``frames`` (pipe transport), never both
    chunks: dict[int, list[bytes]] = field(default_factory=dict)
    routing_version: int = 0
    #: the original batch, retained so a stale plan can be re-routed
    packets: list = field(default_factory=list)
    #: worker ids the plan was routed against, sorted
    worker_ids: list[int] = field(default_factory=list)
    #: per-shard packet counts aligned with ``worker_ids``
    shard_counts: list[int] = field(default_factory=list)
    #: ``(index, packet, program_id)`` for packets quiesced by migration
    parked: list = field(default_factory=list)
    #: routing telemetry: packets pinned/hash-routed per worker, and per
    #: pinned program — accumulated by inject_plan for the rebalancer
    pinned_counts: dict = field(default_factory=dict)
    hash_counts: dict = field(default_factory=dict)
    program_counts: dict = field(default_factory=dict)


class FanoutBinding:
    """Southbound binding fanning every mutation out to all shards.

    Wraps the coordinator's own data plane: mutations apply locally first
    (keeping the coordinator replica authoritative) and are then broadcast
    as pipelined generation-stamped commands.  State *reads* trigger an
    on-demand cross-shard merge so the control plane always observes
    merged traffic state.  Inserted entries and multicast groups are also
    recorded on the engine so a worker added later can replay them.
    """

    def __init__(self, local: P4runproDataPlane, engine: "ShardedEngine"):
        self.local = local
        self.engine = engine
        #: init-entry handle -> program id, for placement-map cleanup
        self._init_handles: dict[int, int] = {}

    # -- DataPlaneBinding (mutations) --------------------------------------
    def insert_entry(self, entry: EntryConfig) -> int:
        handle = self.local.insert_entry(entry)
        packed = pack_entry(entry)
        self.engine._broadcast(("insert", handle, packed))
        self.engine._entries[handle] = packed
        if entry.table == dp.INIT_TABLE and entry.action == dp.ACTION_SET_PROGRAM:
            program_id = entry.data().get("program_id")
            if program_id is not None:
                self._init_handles[handle] = program_id
                self.engine._note_program(program_id)
        return handle

    def insert_entries(self, entries: list[EntryConfig]) -> list[int]:
        """Group-atomic batched insert, fanned out as ONE pipelined frame.

        The local replica applies the whole group first (rolling back on
        failure, so nothing is ever broadcast for a failed group); the
        shards then receive a single ``insert_many`` command instead of
        one frame per entry — the RBFRT-style batching that makes grouped
        installs cheap at fan-out degree N.
        """
        handles = self.local.insert_entries(list(entries))
        packed_pairs = tuple(
            (h, pack_entry(e)) for h, e in zip(handles, entries)
        )
        self.engine._broadcast(("insert_many", packed_pairs))
        for handle, packed in packed_pairs:
            self.engine._entries[handle] = packed
        for entry, handle in zip(entries, handles):
            if entry.table == dp.INIT_TABLE and entry.action == dp.ACTION_SET_PROGRAM:
                program_id = entry.data().get("program_id")
                if program_id is not None:
                    self._init_handles[handle] = program_id
                    self.engine._note_program(program_id)
        return handles

    def delete_entry(self, table: str, handle: int) -> None:
        self.local.delete_entry(table, handle)
        self.engine._broadcast(("delete", table, handle))
        self.engine._entries.pop(handle, None)
        self.engine._counter_base.pop((table, handle), None)
        program_id = self._init_handles.pop(handle, None)
        if program_id is not None:
            self.engine._drop_program(program_id)

    def reset_memory(self, phys_rpb: int, base: int, size: int) -> None:
        self.local.reset_memory(phys_rpb, base, size)
        self.engine._broadcast(("reset_memory", phys_rpb, base, size))

    def configure_multicast_group(self, group: int, ports: list[int]) -> None:
        self.local.configure_multicast_group(group, ports)
        self.engine._mcast[group] = tuple(ports)
        self.engine._broadcast(("mcast", group, tuple(ports)))

    # -- control-plane state access ----------------------------------------
    def read_bucket(self, phys_rpb: int, addr: int) -> int:
        self.engine.sync()
        return self.local.read_bucket(phys_rpb, addr)

    def write_bucket(self, phys_rpb: int, addr: int, value: int) -> None:
        # Merge outstanding shard deltas first so the write rebases all
        # replicas to a consistent absolute value instead of clobbering
        # unmerged partial aggregates.
        self.engine.sync()
        self.local.write_bucket(phys_rpb, addr, value)
        self.engine._broadcast(("write_bucket", phys_rpb, addr, value))

    def read_entry_counter(self, table: str, handle: int) -> int:
        """Aggregate an entry's hit counter across all shards.

        The coordinator replica processes no packets (its own counters
        only reflect routing lookups), so the true count is the sum over
        live workers of their local entry's counter, plus the harvested
        base from any worker that has since been removed.
        """
        return self.engine._aggregate_counter(table, handle)


class _ShmSession:
    """Coordinator-side state of one worker's streamed shm batch.

    The producer half pushes encoded packet chunks into the worker's
    request ring (falling back to a ``batch_rest`` pipe delivery when a
    chunk exceeds the ring record cap or the ring stays full past the
    stall timeout — from that point the whole tail of the stream rides
    the pipe so chunk order is preserved); the consumer half drains
    result chunks from the response ring as they land, and the session
    closes on the worker's ``ok_shm`` pipe reply (result count, CPU
    seconds, overflow chunks too large for the ring).
    """

    __slots__ = (
        "engine", "worker", "mode", "req", "resp", "decoder", "parts",
        "collected", "chunks_sent", "header_sent", "pipe_mode", "rest",
        "done", "expected", "cpu_s", "overflow",
    )

    def __init__(self, engine: "ShardedEngine", worker: int, mode: str):
        self.engine = engine
        self.worker = worker
        self.mode = mode
        self.req, self.resp = engine._rings[worker]
        self.decoder = shm_codec.PacketDecoder()
        #: decoded result runs in stream order; an overflow chunk holds
        #: its place as ("ovf", slot, count) until the final reply
        self.parts: list = []
        self.collected = 0
        self.chunks_sent = 0
        self.header_sent = False
        self.pipe_mode = False
        self.rest: list[bytes] = []
        self.done = False
        self.expected: int | None = None
        self.cpu_s = 0.0
        self.overflow: list[bytes] | None = None

    def send_header(self) -> None:
        if self.header_sent:
            return
        self.header_sent = True
        self.engine._transport["ring_batches"] += 1
        self._send_pipe(bytes(encode_msg(("batch_shm", self.mode))))

    def _send_pipe(self, frame: bytes) -> None:
        try:
            send_frame(self.engine._conns[self.worker], frame)
        except (OSError, EOFError) as exc:
            raise EngineError(
                f"worker {self.worker} is dead: {exc}"
            ) from exc

    def push_chunk(self, payload: bytes) -> None:
        transport = self.engine._transport
        self.chunks_sent += 1
        if not self.pipe_mode and len(payload) > self.req.max_record:
            # One oversized chunk flips the whole tail to the pipe:
            # chunks must reach the worker in stream order.
            self.pipe_mode = True
            transport["fallbacks"]["oversize"] += 1
        if self.pipe_mode:
            self.rest.append(payload)
            return
        if self._push_with_stall(payload):
            transport["ring_chunks"] += 1
            transport["bytes_out"] += len(payload)
        else:
            self.pipe_mode = True
            transport["fallbacks"]["ring_full"] += 1
            self.rest.append(payload)

    def _push_with_stall(self, payload: bytes) -> bool:
        req = self.req
        if req.try_push(payload):
            return True
        engine = self.engine
        transport = engine._transport
        timeout = engine.ring_stall_timeout_s
        stall0 = time.perf_counter()
        deadline = stall0 + timeout
        ok = False
        while timeout > 0:
            # Draining our response ring is what unblocks a worker that
            # is itself stalled pushing results.
            self.drain()
            self.poll_pipe()
            if req.try_push(payload):
                ok = True
                break
            if time.perf_counter() >= deadline:
                break
            engine._check_alive(self.worker)
            time.sleep(0.0002)
        transport["stall_s"] += time.perf_counter() - stall0
        return ok

    def finish(self) -> None:
        """Close the request stream: END marker in-ring, or the buffered
        tail as one ``batch_rest`` pipe frame."""
        engine = self.engine
        if self.pipe_mode:
            self._send_pipe(
                bytes(encode_msg(("batch_rest", self.rest, self.chunks_sent)))
            )
            return
        end = shm_codec.encode_end(self.chunks_sent)
        if not self._push_with_stall(end):
            engine._transport["fallbacks"]["ring_full"] += 1
            self._send_pipe(
                bytes(encode_msg(("batch_rest", [], self.chunks_sent)))
            )

    def drain(self) -> int:
        """Pop and decode every available result chunk; returns how many
        records were collected."""
        transport = self.engine._transport
        decoder = self.decoder
        mode = self.mode
        popped = 0
        while True:
            payload = self.resp.try_pop()
            if payload is None:
                return popped
            transport["bytes_in"] += len(payload)
            rec = shm_codec.decode_ring_payload(payload)
            if rec[0] == "R":
                _tag, defs, blob, extra = rec
                if defs:
                    decoder.add_defs(defs)
                out = shm_codec.decode_results(blob, extra, mode, decoder)
                self.parts.append(out)
                self.collected += len(out)
                popped += len(out)
            else:  # ("O", slot, count, defs) — result rides the final reply
                _tag, slot, count, defs = rec
                if defs:
                    decoder.add_defs(defs)
                self.parts.append(("ovf", slot, count))
                self.collected += count
                popped += count

    def poll_pipe(self) -> None:
        if self.done:
            return
        engine = self.engine
        conn = engine._conns[self.worker]
        try:
            if not conn.poll(0):
                return
            reply = decode_msg(conn.recv_bytes())
        except (EOFError, OSError) as exc:
            raise EngineError(f"worker {self.worker} is dead: {exc}") from exc
        if reply[0] == "err":
            raise WorkerError(f"worker {self.worker}: {reply[1]}")
        _tag, total, cpu_s, overflow = reply
        self.done = True
        self.expected = total
        self.cpu_s = cpu_s
        self.overflow = overflow

    def complete(self) -> bool:
        return self.done and self.collected >= (self.expected or 0)

    def results(self) -> list:
        """Flatten the collected runs, substituting overflow chunks."""
        if self.collected != self.expected:
            raise EngineError(
                f"worker {self.worker} shm batch returned {self.collected} "
                f"records, expected {self.expected}"
            )
        out: list = []
        decoder = self.decoder
        mode = self.mode
        for part in self.parts:
            if isinstance(part, list):
                out.extend(part)
            else:
                _tag, slot, _count = part
                _t, _defs, blob, extra = shm_codec.decode_ring_payload(
                    self.overflow[slot]
                )
                out.extend(shm_codec.decode_results(blob, extra, mode, decoder))
        return out


class ShardedEngine:
    """Elastic N-shard packet engine over one coordinator control plane."""

    #: telemetry packets required before maybe_rebalance will act
    REBALANCE_MIN_PACKETS = 512

    def __init__(
        self,
        num_workers: int = 2,
        *,
        spec: TargetSpec | None = None,
        parse_machine=None,
        merge_every: int | None = 500_000,
        start_method: str | None = None,
        reply_timeout_s: float = 120.0,
        flow_cache: bool = True,
        codegen: bool = True,
        vnodes: int = DEFAULT_VNODES,
        use_shm: bool = True,
        ring_bytes: int = DEFAULT_RING_BYTES,
        chunk_packets: int = DEFAULT_CHUNK_PACKETS,
        ring_stall_timeout_s: float = 0.25,
    ):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.spec = spec or TargetSpec()
        self.merge_every = merge_every
        self.reply_timeout_s = reply_timeout_s

        #: shared-memory ring transport for packet batches; pipes remain
        #: the fallback (per shard) and the control/request channel
        self._use_shm = bool(use_shm) and HAVE_SHM
        self._ring_bytes = ring_bytes
        self._chunk_packets = max(1, chunk_packets)
        self.ring_stall_timeout_s = ring_stall_timeout_s
        self._rings: dict[int, tuple[ShmRing, ShmRing]] = {}
        self._transport: dict = {
            "enabled": self._use_shm,
            "ring_batches": 0,
            "ring_chunks": 0,
            "ring_records": 0,
            "bytes_out": 0,
            "bytes_in": 0,
            "pipe_batches": 0,
            "stall_s": 0.0,
            "fallbacks": {
                "oversize": 0,
                "ring_full": 0,
                "no_ring": 0,
                "disabled": 0,
            },
        }

        # Provisioning is pickled before the coordinator freezes the parse
        # machine, so every replica — including workers added long after
        # construction — is built from the same description.  Each worker
        # owns a private flow cache; FanoutBinding mutations reach every
        # replica through its own southbound binding, so the per-worker
        # generation bump needs no extra broadcast.
        self._setup_bytes = pickle.dumps(
            (self.spec, parse_machine, flow_cache, codegen)
        )
        self.dataplane = P4runproDataPlane(
            self.spec, parse_machine, flow_cache=flow_cache, codegen=codegen
        )
        self.binding = FanoutBinding(self.dataplane, self)
        self.controller = Controller(self.binding, spec=self.spec)
        self._init_table = self.dataplane.tables[dp.INIT_TABLE]

        #: program id -> owning shard (pinned) or None (data-parallel)
        self.placement: dict[int, int | None] = {}
        self._semantics: dict[int, object] = {}

        self._generation = 0
        self._ctl_pending = False
        #: coalesced pipelined commands awaiting flush (one wire frame)
        self._pending_ops: list[tuple] = []
        #: reusable encode buffers: broadcasts and synchronous requests
        #: never interleave mid-encode, and ``send_bytes`` copies
        #: synchronously, so one buffer per role suffices
        self._sb_buf = bytearray()
        self._req_buf = bytearray()
        self._traffic_dirty = False
        self._since_merge = 0
        self.merges = 0
        #: timing of the most recent inject_plan, for benchmarks:
        #: wall seconds, per-worker CPU seconds, coordinator CPU seconds
        self.last_inject_stats: dict = {}

        #: provisioning replayed into workers added at runtime
        self._entries: dict[int, tuple] = {}
        self._mcast: dict[int, tuple[int, ...]] = {}
        #: counters/stats harvested from removed workers, so aggregates
        #: stay bit-identical across downscales
        self._counter_base: dict[tuple[str, int], int] = {}
        self._retired_stats: list[dict] = []

        #: routing epoch — bumped by rescale/migration/reweight; plans
        #: stamped with an older epoch are transparently re-routed
        self._routing_version = 0
        self.ring = HashRing(vnodes)

        #: in-flight migrations: program id -> holding queue + endpoints
        self._migrations: dict[int, dict] = {}
        self._orphans: list[tuple] = []
        self._in_replay = False
        self._mstats: dict = {
            "started": 0,
            "completed": 0,
            "cancelled": 0,
            "rebalances": 0,
            "parked_packets": 0,
            "quiesce_ms": [],
            "flip_ms": [],
            "last": None,
        }
        self._reset_telemetry()

        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)
        self._conns: dict[int, object] = {}
        self._procs: dict[int, object] = {}
        self._next_worker_id = 0
        for _ in range(num_workers):
            wid = self._spawn_worker()
            self.ring.add(wid)
        self._closed = False

    # -- lifecycle ----------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self._conns)

    @property
    def worker_ids(self) -> list[int]:
        return sorted(self._conns)

    @property
    def routing_version(self) -> int:
        return self._routing_version

    def _spawn_worker(self) -> int:
        wid = self._next_worker_id
        self._next_worker_id += 1
        parent, child = self._ctx.Pipe(duplex=True)
        ring_names = None
        if self._use_shm:
            rings = self._make_rings()
            if rings is not None:
                self._rings[wid] = rings
                ring_names = (rings[0].name, rings[1].name)
        proc = self._ctx.Process(
            target=worker_main,
            args=(child, self._setup_bytes, ring_names),
            daemon=True,
        )
        proc.start()
        child.close()
        self._conns[wid] = parent
        self._procs[wid] = proc
        return wid

    def _make_rings(self) -> tuple[ShmRing, ShmRing] | None:
        """One request/response ring pair, or None on a degraded host
        (shm mount missing, fd/segment limits) — that worker just runs
        on the pipe transport."""
        req = resp = None
        try:
            req = ShmRing.create(self._ring_bytes)
            resp = ShmRing.create(self._ring_bytes)
            return req, resp
        except Exception:  # pragma: no cover - degraded host
            for ring in (req, resp):
                if ring is not None:
                    ring.close()
                    ring.unlink()
            return None

    def _retire_rings(self, wid: int) -> None:
        rings = self._rings.pop(wid, None)
        if rings is None:
            return
        for ring in rings:
            ring.close()
            ring.unlink()

    def _check_alive(self, worker: int) -> None:
        proc = self._procs.get(worker)
        if proc is not None and not proc.is_alive():
            raise EngineError(f"worker {worker} is dead: exited mid-batch")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns.values():
            try:
                conn.send_bytes(bytes(encode_msg(("stop",))))
            except (OSError, BrokenPipeError):
                pass
        for wid, proc in self._procs.items():
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5)
            self._conns[wid].close()
            self._retire_rings(wid)
        for wid in list(self._rings):  # pragma: no cover - defensive
            self._retire_rings(wid)

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- command channel ----------------------------------------------------
    def _broadcast(self, op: tuple) -> None:
        """Queue one pipelined control command for every shard.

        Commands coalesce: nothing hits the pipes until the next
        synchronous exchange (barrier, request, or inject), at which point
        every queued command ships as ONE multi-command wire frame per
        worker — the install of an N-entry program costs a handful of
        frames instead of N, and each frame is encoded once into a
        reusable buffer and shared by all pipes.
        """
        self._generation += 1
        self._pending_ops.append(op)
        self._ctl_pending = True

    def _flush_ctl(self) -> None:
        if not self._pending_ops:
            return
        ops, self._pending_ops = self._pending_ops, []
        frame = encode_msg(
            ("ctl_run", self._generation, tuple(ops)), out=self._sb_buf
        )
        for worker, conn in self._conns.items():
            try:
                send_frame(conn, frame)
            except (OSError, BrokenPipeError) as exc:
                raise EngineError(f"worker {worker} is dead: {exc}") from exc

    def _recv(self, worker: int):
        conn = self._conns[worker]
        if not conn.poll(self.reply_timeout_s):
            raise EngineError(
                f"worker {worker} did not reply within {self.reply_timeout_s}s"
            )
        reply = decode_msg(conn.recv_bytes())
        if reply[0] == "err":
            raise WorkerError(f"worker {worker}: {reply[1]}")
        return reply

    def _request(self, worker: int, msg: tuple):
        self._flush_ctl()
        send_frame(self._conns[worker], encode_msg(msg, out=self._req_buf))
        reply = self._recv(worker)
        return reply[1]

    def _barrier_one(self, worker: int, gen: int) -> None:
        """Targeted barrier against a single worker (bootstrap path)."""
        self._conns[worker].send_bytes(encode_msg(("barrier", gen), out=self._req_buf))
        tag, ack_gen, applied_gen, worker_errors = self._recv(worker)
        if tag != "ack" or ack_gen != gen or applied_gen < gen:
            raise EngineError(
                f"worker {worker} acked generation {applied_gen}, expected {gen}"
            )
        if worker_errors:
            raise WorkerError(
                "; ".join(f"worker {worker}: {e}" for e in worker_errors)
            )

    def barrier(self) -> None:
        """Drain the command channel: every shard acks the current
        generation; deferred control errors surface here."""
        if not self._ctl_pending:
            return
        self._flush_ctl()
        gen = self._generation
        frame = encode_msg(("barrier", gen), out=self._req_buf)
        for worker, conn in self._conns.items():
            try:
                send_frame(conn, frame)
            except (OSError, EOFError) as exc:
                raise EngineError(f"worker {worker} is dead: {exc}") from exc
        errors = []
        for worker in self.worker_ids:
            tag, ack_gen, applied_gen, worker_errors = self._recv(worker)
            if tag != "ack" or ack_gen != gen or applied_gen < gen:
                raise EngineError(
                    f"worker {worker} acked generation {applied_gen}, "
                    f"expected {gen}"
                )
            errors.extend(f"worker {worker}: {e}" for e in worker_errors)
        self._ctl_pending = False
        if errors:
            raise WorkerError("; ".join(errors))

    # -- placement ----------------------------------------------------------
    def _note_program(self, program_id: int) -> None:
        if program_id in self.placement:
            return
        try:
            record = self.controller.manager.get(program_id)
        except ProgramNotFoundError:  # pragma: no cover - foreign binding use
            return
        semantics = record.compiled.register_semantics()
        self._semantics[program_id] = semantics
        if semantics.data_parallel:
            self.placement[program_id] = None
            return
        loads = {w: 0 for w in self.worker_ids}
        for shard in self.placement.values():
            if shard is not None:
                loads[shard] += 1
        self.placement[program_id] = min(
            self.worker_ids, key=lambda w: (loads[w], w)
        )

    def _drop_program(self, program_id: int) -> None:
        self.placement.pop(program_id, None)
        self._semantics.pop(program_id, None)
        migration = self._migrations.pop(program_id, None)
        if migration is not None:
            # Revoked mid-migration: the holding queue's packets still
            # count as traffic — they re-route (and replay) at the next
            # inject boundary, after the revoke finishes.
            self._orphans.extend(migration["parked"])
            self._mstats["cancelled"] += 1
            self._routing_version += 1

    # -- routing ------------------------------------------------------------
    def _route(self, packet) -> tuple[int | None, int | None]:
        """``(shard, program_id)`` for one packet under the current epoch.

        ``program_id`` is set only for pinned-program traffic; a ``None``
        shard means the owning program is mid-migration and the packet
        must park in its holding queue.
        """
        switch = self.dataplane.switch
        phv = PHV(switch.layout, packet)
        switch.parse_machine.parse(packet, phv)
        hit = self._init_table.lookup(phv)
        if hit is not None and hit[0] == dp.ACTION_SET_PROGRAM:
            program_id = hit[1].get("program_id")
            if program_id is not None and program_id in self._migrations:
                return None, program_id
            pinned = self.placement.get(program_id)
            if pinned is not None:
                return pinned, program_id
        return self.ring.lookup(flow_hash(packet.five_tuple())), None

    def shard_of(self, packet) -> int:
        """Which shard a packet belongs to (identical to init-block
        ownership semantics: real parse, real first-match lookup)."""
        shard, program_id = self._route(packet)
        if shard is None:
            # Mid-migration the packet would park; its current owner is
            # still the migration source.
            return self._migrations[program_id]["source"]
        return shard

    def plan(self, packets, mode: str = "full") -> ShardPlan:
        """Route a batch and pre-pickle one wire frame per shard."""
        if mode not in ("full", "verdicts"):
            raise ValueError(f"unknown inject mode {mode!r}")
        packets = list(packets)
        worker_ids = self.worker_ids
        buckets: dict[int, list] = {}
        index_lists: dict[int, list[int]] = {}
        parked: list = []
        pinned_counts: dict[int, int] = {}
        hash_counts: dict[int, int] = {}
        program_counts: dict[int, int] = {}
        for index, packet in enumerate(packets):
            shard, program_id = self._route(packet)
            if shard is None:
                parked.append((index, packet, program_id))
                continue
            buckets.setdefault(shard, []).append(packet)
            index_lists.setdefault(shard, []).append(index)
            if program_id is not None:
                pinned_counts[shard] = pinned_counts.get(shard, 0) + 1
                program_counts[program_id] = program_counts.get(program_id, 0) + 1
            else:
                hash_counts[shard] = hash_counts.get(shard, 0) + 1
        # A shard with a ring pair gets its bucket pre-encoded as a list
        # of wire-native chunk payloads (self-contained: composition
        # definitions ride in the first chunk that uses them, so a reused
        # plan replays cleanly); a shard without rings keeps the classic
        # ONE-pickle-blob wire frame.  Fresh buffers: plans outlive the
        # next encode.
        frames: dict[int, bytes] = {}
        chunks: dict[int, list[bytes]] = {}
        for shard, bucket in buckets.items():
            if self._use_shm and shard in self._rings:
                chunks[shard] = self._encode_chunks(bucket)
                continue
            if self._use_shm:
                self._transport["fallbacks"]["no_ring"] += 1
            frames[shard] = bytes(
                encode_msg(
                    (
                        "batch",
                        mode,
                        pickle.dumps(bucket, protocol=pickle.HIGHEST_PROTOCOL),
                    )
                )
            )
        return ShardPlan(
            frames=frames,
            chunks=chunks,
            index_lists=index_lists,
            total=len(packets),
            mode=mode,
            routing_version=self._routing_version,
            packets=packets,
            worker_ids=worker_ids,
            shard_counts=[len(buckets.get(w, ())) for w in worker_ids],
            parked=parked,
            pinned_counts=pinned_counts,
            hash_counts=hash_counts,
            program_counts=program_counts,
        )

    # -- traffic ------------------------------------------------------------
    def _encode_chunks(self, bucket: list) -> list[bytes]:
        """One shard bucket -> wire-native chunk payloads for its ring."""
        encoder = shm_codec.PacketEncoder()
        step = self._chunk_packets
        payloads = []
        for start in range(0, len(bucket), step):
            blob, extra = encoder.encode_packets(bucket[start:start + step])
            payloads.append(
                shm_codec.encode_chunk(encoder.take_defs(), blob, extra)
            )
        return payloads

    def inject(self, packets, mode: str = "full") -> list:
        """Route + process a batch; results come back in arrival order.

        With rings on every worker the batch is *streamed*: routed
        sub-batches flow into the rings chunk by chunk while workers are
        already draining them, overlapping routing with compute.  Without
        full ring coverage (``use_shm=False``, shm unavailable, or a
        degraded worker) the classic route-everything-then-send plan path
        runs, which itself uses rings per shard where available.
        """
        self._replay_orphans()
        packets = list(packets)
        if not packets:
            # Empty sub-batch short-circuit: flush pending control state
            # for identical barrier semantics, but touch no worker.
            if mode not in ("full", "verdicts"):
                raise ValueError(f"unknown inject mode {mode!r}")
            self.barrier()
            self.last_inject_stats = {
                "wall_s": 0.0,
                "coordinator_cpu_s": 0.0,
                "worker_cpu_s": {},
                "worker_ids": self.worker_ids,
                "shard_counts": [0] * self.num_workers,
                "parked": 0,
            }
            return []
        if self._use_shm and all(w in self._rings for w in self._conns):
            return self._inject_stream(packets, mode)
        if self._use_shm and not self._rings:
            self._transport["fallbacks"]["disabled"] += 1
        return self.inject_plan(self.plan(packets, mode))

    def _inject_stream(self, packets: list, mode: str) -> list:
        """Route and submit in one pass: every full chunk is pushed to
        its shard's ring immediately, so workers process the head of the
        batch while the coordinator is still routing the tail."""
        if mode not in ("full", "verdicts"):
            raise ValueError(f"unknown inject mode {mode!r}")
        self.barrier()
        wall0 = time.perf_counter()
        coord_cpu0 = time.process_time()
        transport = self._transport
        step = self._chunk_packets
        worker_ids = self.worker_ids
        sessions: dict[int, _ShmSession] = {}
        encoders: dict[int, shm_codec.PacketEncoder] = {}
        pending: dict[int, list] = {}
        index_lists: dict[int, list[int]] = {}
        parked: list = []
        pinned_counts: dict[int, int] = {}
        hash_counts: dict[int, int] = {}
        program_counts: dict[int, int] = {}

        def flush(shard: int) -> None:
            chunk = pending[shard]
            if not chunk:
                return
            encoder = encoders[shard]
            blob, extra = encoder.encode_packets(chunk)
            payload = shm_codec.encode_chunk(encoder.take_defs(), blob, extra)
            transport["ring_records"] += len(chunk)
            del chunk[:]
            sessions[shard].push_chunk(payload)

        for index, packet in enumerate(packets):
            shard, program_id = self._route(packet)
            if shard is None:
                parked.append((index, packet, program_id))
                continue
            session = sessions.get(shard)
            if session is None:
                session = sessions[shard] = _ShmSession(self, shard, mode)
                session.send_header()
                encoders[shard] = shm_codec.PacketEncoder()
                pending[shard] = []
                index_lists[shard] = []
            index_lists[shard].append(index)
            pending[shard].append(packet)
            if program_id is not None:
                pinned_counts[shard] = pinned_counts.get(shard, 0) + 1
                program_counts[program_id] = (
                    program_counts.get(program_id, 0) + 1
                )
            else:
                hash_counts[shard] = hash_counts.get(shard, 0) + 1
            if len(pending[shard]) >= step:
                flush(shard)
                session.drain()
        for shard in sessions:
            flush(shard)
        for session in sessions.values():
            session.finish()

        results: list = [None] * len(packets)
        for _index, packet, program_id in parked:
            self._migrations[program_id]["parked"].append((packet, mode))
            self._mstats["parked_packets"] += 1
        worker_cpu = self._collect_sessions(sessions, index_lists, results)
        self._finalize_inject(
            total=len(packets),
            parked_count=len(parked),
            worker_cpu=worker_cpu,
            worker_ids=worker_ids,
            shard_counts=[len(index_lists.get(w, ())) for w in worker_ids],
            pinned_counts=pinned_counts,
            hash_counts=hash_counts,
            program_counts=program_counts,
            wall0=wall0,
            coord_cpu0=coord_cpu0,
        )
        return results

    def inject_plan(self, plan: ShardPlan) -> list:
        """Process a pre-routed batch.  Results are ordered by original
        batch position; per-flow order is preserved by construction.
        Packets of a mid-migration program are parked (their result slot
        stays ``None``) and replayed by :meth:`complete_migration`."""
        self.barrier()
        if plan.routing_version != self._routing_version:
            # The fleet was rescaled, a migration started/finished, or the
            # ring was reweighted since this plan was built: re-route it
            # from the retained batch under the current epoch.
            plan = self.plan(plan.packets, plan.mode)
        wall0 = time.perf_counter()
        coord_cpu0 = time.process_time()
        # Pipe-transport shards get their whole frame first — they start
        # computing while the ring streams are fed.
        pipe_workers = sorted(plan.frames)
        for worker in pipe_workers:
            send_frame(self._conns[worker], plan.frames[worker])
            self._transport["pipe_batches"] += 1
        sessions: dict[int, _ShmSession] = {}
        if plan.chunks:
            sessions = {
                w: _ShmSession(self, w, plan.mode) for w in sorted(plan.chunks)
            }
            for session in sessions.values():
                session.send_header()
            # Breadth-first submission: one chunk per shard per round so
            # every worker starts immediately, draining results between
            # pushes to keep the mirror rings flowing.
            queues = {w: list(plan.chunks[w]) for w in sessions}
            while queues:
                for w in list(queues):
                    sessions[w].push_chunk(queues[w].pop(0))
                    sessions[w].drain()
                    if not queues[w]:
                        del queues[w]
            for w, session in sessions.items():
                self._transport["ring_records"] += len(plan.index_lists[w])
                session.finish()
        results: list = [None] * plan.total
        for _index, packet, program_id in plan.parked:
            self._migrations[program_id]["parked"].append((packet, plan.mode))
            self._mstats["parked_packets"] += 1
        worker_cpu = self._collect_sessions(sessions, plan.index_lists, results)
        for worker in pipe_workers:
            payload_blob, cpu_s = self._recv(worker)[1]
            payload = pickle.loads(payload_blob)
            worker_cpu[worker] = cpu_s
            indices = plan.index_lists[worker]
            for index, result in zip(indices, payload):
                results[index] = result
        self._finalize_inject(
            total=plan.total,
            parked_count=len(plan.parked),
            worker_cpu=worker_cpu,
            worker_ids=list(plan.worker_ids),
            shard_counts=list(plan.shard_counts),
            pinned_counts=plan.pinned_counts,
            hash_counts=plan.hash_counts,
            program_counts=plan.program_counts,
            wall0=wall0,
            coord_cpu0=coord_cpu0,
        )
        return results

    def _collect_sessions(
        self,
        sessions: dict[int, "_ShmSession"],
        index_lists: dict[int, list[int]],
        results: list,
    ) -> dict[int, float]:
        """Drain every open shm session to completion, mapping decoded
        results back to their original batch positions."""
        worker_cpu: dict[int, float] = {}
        if not sessions:
            return worker_cpu
        live = dict(sessions)
        deadline = time.perf_counter() + self.reply_timeout_s
        while live:
            progress = False
            for w in list(live):
                session = live[w]
                progress |= session.drain() > 0
                session.poll_pipe()
                if session.complete():
                    worker_cpu[w] = session.cpu_s
                    for index, result in zip(index_lists[w], session.results()):
                        results[index] = result
                    del live[w]
                    progress = True
            if live and not progress:
                if time.perf_counter() >= deadline:
                    raise EngineError(
                        f"workers {sorted(live)} did not finish their shm "
                        f"batch within {self.reply_timeout_s}s"
                    )
                for w in live:
                    self._check_alive(w)
                time.sleep(0.0002)
        return worker_cpu

    def _finalize_inject(
        self,
        *,
        total: int,
        parked_count: int,
        worker_cpu: dict[int, float],
        worker_ids: list[int],
        shard_counts: list[int],
        pinned_counts: dict,
        hash_counts: dict,
        program_counts: dict,
        wall0: float,
        coord_cpu0: float,
    ) -> None:
        coord_cpu = time.process_time() - coord_cpu0
        wall = time.perf_counter() - wall0
        self.last_inject_stats = {
            "wall_s": wall,
            "coordinator_cpu_s": coord_cpu,
            "worker_cpu_s": worker_cpu,
            "worker_ids": worker_ids,
            "shard_counts": shard_counts,
            "parked": parked_count,
        }
        telemetry = self._telemetry
        for worker, count in pinned_counts.items():
            telemetry["pinned"][worker] = telemetry["pinned"].get(worker, 0) + count
        for worker, count in hash_counts.items():
            telemetry["hash"][worker] = telemetry["hash"].get(worker, 0) + count
        for program_id, count in program_counts.items():
            telemetry["programs"][program_id] = (
                telemetry["programs"].get(program_id, 0) + count
            )
        for worker, cpu_s in worker_cpu.items():
            telemetry["cpu"][worker] = telemetry["cpu"].get(worker, 0.0) + cpu_s
        telemetry["total"] += total - parked_count
        if total:
            self._traffic_dirty = True
            self._since_merge += total
            if self.merge_every and self._since_merge >= self.merge_every:
                self.sync()

    def _replay_orphans(self) -> None:
        """Re-inject holding-queue packets whose migration was cancelled
        (program revoked mid-migration).  They re-route under the current
        epoch in arrival order; results are unobserved by construction
        (the original inject already returned)."""
        if not self._orphans or self._in_replay:
            return
        self._in_replay = True
        try:
            while self._orphans:
                mode = self._orphans[0][1]
                batch = []
                while self._orphans and self._orphans[0][1] == mode:
                    batch.append(self._orphans.pop(0)[0])
                self.inject_plan(self.plan(batch, mode))
        finally:
            self._in_replay = False

    # -- elastic rescale -----------------------------------------------------
    def add_worker(self) -> int:
        """Spawn and bootstrap one worker; returns its id.

        The new replica is built from the same pickled provisioning as
        the originals, then caught up by replaying every tracked table
        entry and multicast group as one coalesced ctl_run frame, and
        copying every non-zero register bucket of each live program from
        the coordinator's merged base (:meth:`sync` runs first so the
        base *is* the truth).  Only then does the worker join the ring —
        consistent hashing remaps ~1/(N+1) of the hash-routed flows to
        it, and every remapped flow moves *to* the new worker.
        """
        if self._closed:
            raise EngineError("engine is closed")
        self.barrier()
        self.sync()
        wid = self._spawn_worker()
        # Replay provisioning.  The frame is stamped with the current
        # generation even when empty so the newcomer's first global
        # barrier ack matches its peers'.
        ops = [
            ("insert", handle, packed) for handle, packed in self._entries.items()
        ]
        ops.extend(("mcast", group, ports) for group, ports in self._mcast.items())
        send_frame(
            self._conns[wid],
            encode_msg(("ctl_run", self._generation, tuple(ops)), out=self._sb_buf),
        )
        self._barrier_one(wid, self._generation)
        # Install merged register state: one write_buckets request per
        # memory block, non-zero buckets only (fresh replicas are zero).
        for record in self.controller.manager.programs():
            if record.state not in (ProgramState.RUNNING, ProgramState.INSTALLING):
                continue
            for alloc in record.memory.values():
                phys = alloc.phys_rpb
                pairs = [
                    (addr, value)
                    for _off, base, size in alloc.virtual_layout()
                    for addr in range(base, base + size)
                    if (value := self.dataplane.read_bucket(phys, addr))
                ]
                if pairs:
                    self._request(wid, ("write_buckets", phys, pairs))
        self.ring.add(wid)
        self._routing_version += 1
        return wid

    def remove_worker(self, worker_id: int | None = None) -> int:
        """Drain and retire one worker (default: the newest).

        Pinned programs hosted there migrate to the least-loaded peer
        first; :meth:`sync` then folds the worker's mergeable deltas into
        the coordinator base; finally its entry hit counters and
        traffic-manager totals are harvested into coordinator-side base
        offsets so every aggregate (stats, program counters) remains
        bit-identical to a fleet that never downsized.
        """
        if self._closed:
            raise EngineError("engine is closed")
        if self.num_workers <= 1:
            raise EngineError("cannot remove the last worker")
        wid = max(self._conns) if worker_id is None else worker_id
        if wid not in self._conns:
            raise EngineError(f"no such worker {wid}")
        for program_id, migration in self._migrations.items():
            if wid in (migration["source"], migration["target"]):
                raise MigrationError(
                    f"worker {wid} is mid-migration of program {program_id}; "
                    "complete it first"
                )
        self.barrier()
        for program_id in [
            p for p, shard in self.placement.items() if shard == wid
        ]:
            self.migrate(program_id)
        self.sync()
        refs = tuple((packed[1], handle) for handle, packed in self._entries.items())
        hits, final_stats = self._request(wid, ("harvest", refs))
        for (table, handle), count in zip(refs, hits):
            if count:
                key = (table, handle)
                self._counter_base[key] = self._counter_base.get(key, 0) + count
        self._retired_stats.append(final_stats)
        self.ring.remove(wid)
        self._routing_version += 1
        conn = self._conns.pop(wid)
        proc = self._procs.pop(wid)
        try:
            conn.send_bytes(bytes(encode_msg(("stop",))))
        except (OSError, BrokenPipeError):  # pragma: no cover - defensive
            pass
        proc.join(timeout=5)
        if proc.is_alive():  # pragma: no cover - defensive
            proc.terminate()
            proc.join(timeout=5)
        conn.close()
        self._retire_rings(wid)
        return wid

    # -- live migration ------------------------------------------------------
    def begin_migration(self, program_id: int, target: int | None = None) -> int:
        """Quiesce a pinned program for migration; returns the target.

        From this point the router parks the program's packets, in
        arrival order, in its per-program holding queue.  No state moves
        until :meth:`complete_migration`.
        """
        source = self.placement.get(program_id)
        if source is None:
            raise MigrationError(
                f"program {program_id} is not pinned (nothing to migrate)"
            )
        if program_id in self._migrations:
            raise MigrationError(f"program {program_id} is already migrating")
        if target is None:
            candidates = [w for w in self.worker_ids if w != source]
            if not candidates:
                raise MigrationError("no other worker to migrate to")
            telemetry = self._telemetry
            pinned_count = {w: 0 for w in self.worker_ids}
            for shard in self.placement.values():
                if shard is not None:
                    pinned_count[shard] += 1
            target = min(
                candidates,
                key=lambda w: (
                    telemetry["pinned"].get(w, 0) + telemetry["hash"].get(w, 0),
                    pinned_count[w],
                    w,
                ),
            )
        if target == source:
            raise MigrationError(f"program {program_id} already lives on {target}")
        if target not in self._conns:
            raise MigrationError(f"no such worker {target}")
        self._migrations[program_id] = {
            "source": source,
            "target": target,
            "parked": [],
            "t0": time.perf_counter(),
        }
        self._routing_version += 1
        self._mstats["started"] += 1
        return target

    def complete_migration(self, program_id: int) -> list:
        """Drain, snapshot, install, flip, replay.  Returns the results
        of the replayed holding-queue packets, in arrival order."""
        migration = self._migrations.get(program_id)
        if migration is None:
            raise MigrationError(f"program {program_id} is not migrating")
        source, target = migration["source"], migration["target"]
        # Barrier-drain: batches are synchronous, so the source shard has
        # no traffic in flight; the barrier flushes and acks any pending
        # control ops so the snapshot sees a settled replica.
        self.barrier()
        quiesce_ms = (time.perf_counter() - migration["t0"]) * 1e3
        flip0 = time.perf_counter()
        try:
            record = self.controller.manager.get(program_id)
        except ProgramNotFoundError:  # pragma: no cover - defensive
            self._drop_program(program_id)
            raise MigrationError(f"program {program_id} vanished mid-migration")
        moved = 0
        for alloc in record.memory.values():
            phys = alloc.phys_rpb
            addrs = [
                addr
                for _off, base, size in alloc.virtual_layout()
                for addr in range(base, base + size)
            ]
            if not addrs:
                continue
            values = self._request(source, ("read_buckets", phys, addrs))
            pairs = list(zip(addrs, values))
            self._request(target, ("write_buckets", phys, pairs))
            # Mirror into the coordinator base too — the same contract
            # sync() maintains for pinned programs (owner authoritative).
            for addr, value in pairs:
                self.dataplane.write_bucket(phys, addr, value)
            moved += len(pairs)
        self.placement[program_id] = target
        del self._migrations[program_id]
        self._routing_version += 1
        flip_ms = (time.perf_counter() - flip0) * 1e3
        parked = migration["parked"]
        stats = self._mstats
        stats["completed"] += 1
        stats["quiesce_ms"].append(quiesce_ms)
        stats["flip_ms"].append(flip_ms)
        del stats["quiesce_ms"][:-_LATENCY_KEEP]
        del stats["flip_ms"][:-_LATENCY_KEEP]
        stats["last"] = {
            "program_id": program_id,
            "source": source,
            "target": target,
            "moved_buckets": moved,
            "parked": len(parked),
            "quiesce_ms": quiesce_ms,
            "flip_ms": flip_ms,
        }
        # Replay the holding queue in arrival order; packets route to the
        # new owner now, so per-flow order and register evolution are
        # exactly what an unmigrated switch would have produced.
        results: list = []
        index = 0
        while index < len(parked):
            mode = parked[index][1]
            batch = []
            while index < len(parked) and parked[index][1] == mode:
                batch.append(parked[index][0])
                index += 1
            results.extend(self.inject_plan(self.plan(batch, mode)))
        return results

    def migrate(self, program_id: int, target: int | None = None) -> dict:
        """Synchronous live migration: begin + complete in one call.
        Returns a report with endpoints, moved buckets, and latencies."""
        self.begin_migration(program_id, target)
        self.complete_migration(program_id)
        return dict(self._mstats["last"])

    # -- load-aware rebalancing ----------------------------------------------
    def _reset_telemetry(self) -> None:
        self._telemetry = {
            "pinned": {},
            "hash": {},
            "programs": {},
            "cpu": {},
            "total": 0,
        }

    def _skew(self) -> tuple[float, dict[int, float]]:
        """Worst per-shard load share since the last rebalance.

        Loads blend routed-packet counts with worker CPU seconds: the
        skew is the max of the two shares, so a shard that is hot either
        by flow count or by per-packet cost trips the threshold.
        """
        telemetry = self._telemetry
        packets = {
            w: telemetry["pinned"].get(w, 0) + telemetry["hash"].get(w, 0)
            for w in self.worker_ids
        }
        skew = 0.0
        total_packets = sum(packets.values())
        if total_packets > 0:
            skew = max(packets.values()) / total_packets
        total_cpu = sum(telemetry["cpu"].get(w, 0.0) for w in self.worker_ids)
        if total_cpu > 0:
            skew = max(
                skew,
                max(telemetry["cpu"].get(w, 0.0) for w in self.worker_ids)
                / total_cpu,
            )
        return skew, packets

    def rebalance(self, threshold: float = 0.7) -> dict:
        """Load-aware rebalance: pinned migrations + ring reweighting.

        When the hottest shard's share of routed traffic (or CPU time)
        exceeds ``threshold``, (1) pinned programs greedily migrate off
        shards whose pinned load alone exceeds the fair share, and
        (2) ring weights are set so hash-routed traffic fills the
        *remaining* headroom of each shard — a shard saturated by a
        pinned owner gets weight 0 and stops receiving hash flows
        entirely.  Telemetry resets afterwards so the next window
        measures the new routing.
        """
        self.barrier()
        skew, packets = self._skew()
        report: dict = {
            "triggered": False,
            "skew_before": skew,
            "loads": dict(packets),
            "workers": self.num_workers,
            "migrations": [],
            "reweighted": False,
        }
        total = sum(packets.values())
        if total <= 0 or self.num_workers < 2 or skew <= threshold:
            return report
        report["triggered"] = True
        fair = total / self.num_workers
        telemetry = self._telemetry
        program_load = {
            program_id: telemetry["programs"].get(program_id, 0)
            for program_id, shard in self.placement.items()
            if shard is not None
        }
        pinned_load = {w: 0 for w in self.worker_ids}
        for program_id, shard in self.placement.items():
            if shard is not None:
                pinned_load[shard] += program_load.get(program_id, 0)
        hash_load = {
            w: telemetry["hash"].get(w, 0) for w in self.worker_ids
        }
        # 1) Migrate pinned programs off shards whose pinned load alone
        # exceeds the fair share (hash traffic can be steered away
        # entirely, pinned traffic cannot).  Greedy hottest→coldest,
        # bounded, only while each move strictly improves the max.
        for _ in range(4 * len(self.placement) + 4):
            hot = max(self.worker_ids, key=lambda w: pinned_load[w])
            if pinned_load[hot] <= fair:
                break
            cold = min(self.worker_ids, key=lambda w: pinned_load[w])
            movable = sorted(
                (
                    p
                    for p, shard in self.placement.items()
                    if shard == hot and program_load.get(p, 0) > 0
                ),
                key=lambda p: -program_load[p],
            )
            move = next(
                (
                    p
                    for p in movable
                    if pinned_load[cold] + program_load[p] < pinned_load[hot]
                ),
                None,
            )
            if move is None:
                break
            report["migrations"].append(self.migrate(move, cold))
            pinned_load[hot] -= program_load[move]
            pinned_load[cold] += program_load[move]
        # 2) Reweight the ring so hash traffic fills each shard's
        # remaining headroom below the fair share.
        hash_total = sum(hash_load.values())
        if hash_total > 0:
            targets = {
                w: max(0.0, fair - pinned_load[w]) for w in self.worker_ids
            }
            if sum(targets.values()) <= 0:
                # Every shard is at/over fair from pinned load alone;
                # spread hash traffic evenly instead of nowhere.
                targets = {w: 1.0 for w in self.worker_ids}
            top = max(targets.values())
            changed = False
            for w in self.worker_ids:
                changed |= self.ring.set_weight(w, targets[w] / top)
            if changed:
                self._routing_version += 1
                report["reweighted"] = True
                report["weights"] = self.ring.weights()
            target_sum = sum(targets.values())
            projected = {
                w: pinned_load[w] + hash_total * targets[w] / target_sum
                for w in self.worker_ids
            }
            report["skew_after_projected"] = max(projected.values()) / total
        self._mstats["rebalances"] += 1
        self._reset_telemetry()
        return report

    def maybe_rebalance(self, threshold: float = 0.7) -> dict | None:
        """Auto-rebalance hook: acts only with enough telemetry and a
        skew actually above the threshold; returns the report or None."""
        if self.num_workers < 2:
            return None
        if self._telemetry["total"] < self.REBALANCE_MIN_PACKETS:
            return None
        skew, _packets = self._skew()
        if skew <= threshold:
            return None
        return self.rebalance(threshold)

    # -- cross-shard merge ---------------------------------------------------
    def sync(self) -> None:
        """Merge shard register state into the coordinator and rebase.

        Mergeable blocks: fold every bucket's shard values over the
        coordinator's base with the block's merge kind, store the merged
        value locally, and push it back to every shard (the new common
        base).  Pinned blocks: mirror the owning shard's region into the
        coordinator (the owner stays authoritative).  No-op when no
        traffic ran since the last merge.
        """
        if not self._traffic_dirty:
            return
        self.barrier()
        worker_ids = self.worker_ids
        for record in self.controller.manager.programs():
            if record.state not in (ProgramState.RUNNING, ProgramState.INSTALLING):
                continue
            semantics = self._semantics.get(record.program_id)
            if semantics is None:
                semantics = record.compiled.register_semantics()
            shard = self.placement.get(record.program_id)
            for mid, alloc in record.memory.items():
                addrs = [
                    addr
                    for _off, base, size in alloc.virtual_layout()
                    for addr in range(base, base + size)
                ]
                if not addrs:
                    continue
                phys = alloc.phys_rpb
                if not semantics.data_parallel:
                    if shard is None:  # pragma: no cover - defensive
                        continue
                    values = self._request(shard, ("read_buckets", phys, addrs))
                    for addr, value in zip(addrs, values):
                        self.dataplane.write_bucket(phys, addr, value)
                    continue
                kind = semantics.memories.get(mid)
                if kind in (None, "read"):
                    # Read-only replicas never diverge; nothing to fold.
                    continue
                base_values = [self.dataplane.read_bucket(phys, a) for a in addrs]
                shard_values = [
                    self._request(w, ("read_buckets", phys, addrs))
                    for w in worker_ids
                ]
                merged = [
                    merge_buckets(
                        kind,
                        base_values[i],
                        [values[i] for values in shard_values],
                        self.spec.register_width,
                    )
                    for i in range(len(addrs))
                ]
                # Rebase every bucket where any replica (coordinator or
                # shard) diverges from the merged value — a shard's copy
                # is base+its-own-delta, so deltas that cancel across
                # shards still leave replicas to reset.
                rebase = [
                    (addr, value)
                    for i, (addr, value) in enumerate(zip(addrs, merged))
                    if value != base_values[i]
                    or any(values[i] != value for values in shard_values)
                ]
                for addr, value in rebase:
                    self.dataplane.write_bucket(phys, addr, value)
                if rebase:
                    for worker in worker_ids:
                        self._request(worker, ("write_buckets", phys, rebase))
        self._traffic_dirty = False
        self._since_merge = 0
        self.merges += 1

    # -- monitoring ----------------------------------------------------------
    def _aggregate_counter(self, table: str, handle: int) -> int:
        self.barrier()
        return self._counter_base.get((table, handle), 0) + sum(
            self._request(worker, ("counters", [(table, handle)]))[0]
            for worker in self.worker_ids
        )

    @staticmethod
    def _latency_summary(values: list[float]) -> dict:
        if not values:
            return {"count": 0, "mean_ms": 0.0, "max_ms": 0.0, "last_ms": 0.0}
        return {
            "count": len(values),
            "mean_ms": sum(values) / len(values),
            "max_ms": max(values),
            "last_ms": values[-1],
        }

    def transport_stats(self) -> dict:
        """Southbound transport counters: ring submits, bytes moved,
        fallbacks taken, and coordinator stall time."""
        transport = self._transport
        return {
            "enabled": transport["enabled"],
            "ring_bytes": self._ring_bytes,
            "chunk_packets": self._chunk_packets,
            "workers_with_rings": len(self._rings),
            "ring_batches": transport["ring_batches"],
            "ring_chunks": transport["ring_chunks"],
            "ring_records": transport["ring_records"],
            "bytes_out": transport["bytes_out"],
            "bytes_in": transport["bytes_in"],
            "pipe_batches": transport["pipe_batches"],
            "stall_s": transport["stall_s"],
            "fallbacks": dict(transport["fallbacks"]),
        }

    def migration_stats(self) -> dict:
        """Migration/rebalance counters plus latency summaries."""
        stats = self._mstats
        return {
            "started": stats["started"],
            "completed": stats["completed"],
            "cancelled": stats["cancelled"],
            "rebalances": stats["rebalances"],
            "parked_packets": stats["parked_packets"],
            "in_flight": len(self._migrations),
            "quiesce_ms": self._latency_summary(stats["quiesce_ms"]),
            "flip_ms": self._latency_summary(stats["flip_ms"]),
            "last": dict(stats["last"]) if stats["last"] else None,
        }

    def stats(self) -> dict:
        """Aggregated traffic-manager counters plus per-shard detail.

        Totals fold in the final stats harvested from removed workers,
        so downscaling never loses packet accounting.
        """
        self.barrier()
        worker_ids = self.worker_ids
        shards = [self._request(worker, ("stats",)) for worker in worker_ids]
        totals: dict[str, int] = {}
        flow_cache: dict[str, int] = {}
        codegen: dict = {}
        for shard in shards + self._retired_stats:
            for key, value in shard.items():
                if key == "flow_cache":
                    # Nested per-worker cache stats: sum the counters and
                    # the occupancy, drop per-worker bookkeeping
                    # (enabled/generation) from the aggregate.
                    for ckey, cvalue in value.items():
                        if ckey == "occupancy":
                            for okey, ovalue in cvalue.items():
                                flow_cache[okey] = flow_cache.get(okey, 0) + ovalue
                        elif isinstance(cvalue, int) and not isinstance(cvalue, bool):
                            if ckey != "generation":
                                flow_cache[ckey] = flow_cache.get(ckey, 0) + cvalue
                elif key == "codegen":
                    # Same shape discipline for the per-worker codegen
                    # caches: sum counters, merge the fallback-reason map,
                    # drop enabled/generation bookkeeping.
                    for ckey, cvalue in value.items():
                        if ckey == "fallbacks":
                            merged = codegen.setdefault("fallbacks", {})
                            for reason, count in cvalue.items():
                                merged[reason] = merged.get(reason, 0) + count
                        elif isinstance(cvalue, int) and not isinstance(cvalue, bool):
                            if ckey != "generation":
                                codegen[ckey] = codegen.get(ckey, 0) + cvalue
                else:
                    totals[key] = totals.get(key, 0) + value
        if flow_cache:
            totals["flow_cache"] = flow_cache
        if codegen:
            totals["codegen"] = codegen
        return {
            "workers": self.num_workers,
            "worker_ids": worker_ids,
            "totals": totals,
            "shards": shards,
            "migration": self.migration_stats(),
            "transport": self.transport_stats(),
        }
