"""The sharded engine coordinator: placement, fan-out, routing, merge.

:class:`ShardedEngine` owns

* a **coordinator replica** — a full controller + data plane that never
  processes packets.  Its resource manager is the single source of truth
  for allocation, and its register arrays hold the authoritative merged
  state (the *base* every shard was last rebased to);
* N **worker processes** (:mod:`repro.engine.worker`), each a full switch
  replica driven over a pipe;
* the **placement map** — ``program_id -> owning shard`` for pinned
  programs, ``None`` for data-parallel ones (stateless, or every memory
  op mergeable-and-unobserved; see
  :mod:`repro.compiler.register_semantics`);
* :class:`FanoutBinding` — the coordinator controller's southbound
  binding.  Every control-plane mutation (entry insert/delete, memory
  reset, bucket write, multicast config) applies locally and is broadcast
  to every worker as a generation-stamped pipelined command; an explicit
  ``barrier`` drains the command channel and collects acks before any
  traffic or state read, so a deploy followed immediately by an inject
  can never observe a shard without the program.

Packet routing parses each packet on the coordinator replica and runs the
*real* init-table lookup, so ownership decisions (first-match filter
semantics, conditional parse paths) are bit-identical to what every
worker's own init block will decide.  Packets of a pinned program go to
its owning shard; everything else is spread by an RSS-style CRC32 of the
5-tuple, which keeps every flow on one shard (per-flow order preserved).

Cross-shard merge (:meth:`ShardedEngine.sync`) folds each mergeable
memory block's shard replicas into the coordinator's base value with
:func:`repro.rmt.salu.merge_buckets` and rebases all workers to the
merged value; pinned programs just mirror their owning shard's region
into the coordinator.  It runs on demand before every control-plane read
or write of register state, and periodically every ``merge_every``
injected packets.
"""

from __future__ import annotations

import multiprocessing
import pickle
import struct
import time
import zlib
from dataclasses import dataclass, field

from ..compiler.entries import EntryConfig
from ..compiler.target import TargetSpec
from ..controlplane.controller import Controller
from ..controlplane.manager import ProgramNotFoundError, ProgramState
from ..dataplane import constants as dp
from ..dataplane.runpro import P4runproDataPlane
from ..rmt.phv import PHV
from ..rmt.salu import merge_buckets
from .sbwire import decode_msg, encode_msg, pack_entry
from .worker import worker_main


class EngineError(RuntimeError):
    """Coordinator-side engine failure (dead worker, timeout)."""


class WorkerError(EngineError):
    """A worker request or fanned-out control command failed."""


_FLOW_PACK = struct.Struct("!IIIHH")


def flow_hash(five_tuple: tuple[int, int, int, int, int]) -> int:
    """Stable RSS-style flow hash: CRC32 over the packed 5-tuple."""
    src, dst, proto, sport, dport = five_tuple
    return zlib.crc32(
        _FLOW_PACK.pack(
            src & 0xFFFFFFFF,
            dst & 0xFFFFFFFF,
            proto & 0xFFFFFFFF,
            sport & 0xFFFF,
            dport & 0xFFFF,
        )
    )


@dataclass
class ShardPlan:
    """A routed, pre-pickled packet batch, reusable across injections.

    ``frames[w]`` is the ready-to-send wire frame for worker ``w`` (None
    when the worker received no packets); ``index_lists[w]`` maps the
    worker's reply positions back to original batch positions.  Building
    the plan once amortizes routing and serialization across repeated
    :meth:`ShardedEngine.inject_plan` calls (benchmark loops).
    """

    frames: list[bytes | None]
    index_lists: list[list[int]]
    total: int
    mode: str
    #: per-shard packet counts, for balance reporting
    shard_counts: list[int] = field(default_factory=list)


class FanoutBinding:
    """Southbound binding fanning every mutation out to all shards.

    Wraps the coordinator's own data plane: mutations apply locally first
    (keeping the coordinator replica authoritative) and are then broadcast
    as pipelined generation-stamped commands.  State *reads* trigger an
    on-demand cross-shard merge so the control plane always observes
    merged traffic state.
    """

    def __init__(self, local: P4runproDataPlane, engine: "ShardedEngine"):
        self.local = local
        self.engine = engine
        #: init-entry handle -> program id, for placement-map cleanup
        self._init_handles: dict[int, int] = {}

    # -- DataPlaneBinding (mutations) --------------------------------------
    def insert_entry(self, entry: EntryConfig) -> int:
        handle = self.local.insert_entry(entry)
        self.engine._broadcast(("insert", handle, pack_entry(entry)))
        if entry.table == dp.INIT_TABLE and entry.action == dp.ACTION_SET_PROGRAM:
            program_id = entry.data().get("program_id")
            if program_id is not None:
                self._init_handles[handle] = program_id
                self.engine._note_program(program_id)
        return handle

    def insert_entries(self, entries: list[EntryConfig]) -> list[int]:
        """Group-atomic batched insert, fanned out as ONE pipelined frame.

        The local replica applies the whole group first (rolling back on
        failure, so nothing is ever broadcast for a failed group); the
        shards then receive a single ``insert_many`` command instead of
        one frame per entry — the RBFRT-style batching that makes grouped
        installs cheap at fan-out degree N.
        """
        handles = self.local.insert_entries(list(entries))
        self.engine._broadcast(
            ("insert_many", tuple((h, pack_entry(e)) for h, e in zip(handles, entries)))
        )
        for entry, handle in zip(entries, handles):
            if entry.table == dp.INIT_TABLE and entry.action == dp.ACTION_SET_PROGRAM:
                program_id = entry.data().get("program_id")
                if program_id is not None:
                    self._init_handles[handle] = program_id
                    self.engine._note_program(program_id)
        return handles

    def delete_entry(self, table: str, handle: int) -> None:
        self.local.delete_entry(table, handle)
        self.engine._broadcast(("delete", table, handle))
        program_id = self._init_handles.pop(handle, None)
        if program_id is not None:
            self.engine._drop_program(program_id)

    def reset_memory(self, phys_rpb: int, base: int, size: int) -> None:
        self.local.reset_memory(phys_rpb, base, size)
        self.engine._broadcast(("reset_memory", phys_rpb, base, size))

    def configure_multicast_group(self, group: int, ports: list[int]) -> None:
        self.local.configure_multicast_group(group, ports)
        self.engine._broadcast(("mcast", group, tuple(ports)))

    # -- control-plane state access ----------------------------------------
    def read_bucket(self, phys_rpb: int, addr: int) -> int:
        self.engine.sync()
        return self.local.read_bucket(phys_rpb, addr)

    def write_bucket(self, phys_rpb: int, addr: int, value: int) -> None:
        # Merge outstanding shard deltas first so the write rebases all
        # replicas to a consistent absolute value instead of clobbering
        # unmerged partial aggregates.
        self.engine.sync()
        self.local.write_bucket(phys_rpb, addr, value)
        self.engine._broadcast(("write_bucket", phys_rpb, addr, value))

    def read_entry_counter(self, table: str, handle: int) -> int:
        """Aggregate an entry's hit counter across all shards.

        The coordinator replica processes no packets (its own counters
        only reflect routing lookups), so the true count is the sum over
        workers of their local entry's counter.
        """
        return self.engine._aggregate_counter(table, handle)


class ShardedEngine:
    """N-shard packet engine over one coordinator control plane."""

    def __init__(
        self,
        num_workers: int = 2,
        *,
        spec: TargetSpec | None = None,
        parse_machine=None,
        merge_every: int | None = 500_000,
        start_method: str | None = None,
        reply_timeout_s: float = 120.0,
        flow_cache: bool = True,
        codegen: bool = True,
    ):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.num_workers = num_workers
        self.spec = spec or TargetSpec()
        self.merge_every = merge_every
        self.reply_timeout_s = reply_timeout_s

        # Provisioning is pickled before the coordinator freezes the parse
        # machine, so every replica is built from the same description.
        # Each worker owns a private flow cache; FanoutBinding mutations
        # reach every replica through its own southbound binding, so the
        # per-worker generation bump needs no extra broadcast.
        setup_bytes = pickle.dumps(
            (self.spec, parse_machine, flow_cache, codegen)
        )
        self.dataplane = P4runproDataPlane(
            self.spec, parse_machine, flow_cache=flow_cache, codegen=codegen
        )
        self.binding = FanoutBinding(self.dataplane, self)
        self.controller = Controller(self.binding, spec=self.spec)
        self._init_table = self.dataplane.tables[dp.INIT_TABLE]

        #: program id -> owning shard (pinned) or None (data-parallel)
        self.placement: dict[int, int | None] = {}
        self._semantics: dict[int, object] = {}

        self._generation = 0
        self._ctl_pending = False
        #: coalesced pipelined commands awaiting flush (one wire frame)
        self._pending_ops: list[tuple] = []
        #: reusable encode buffers: broadcasts and synchronous requests
        #: never interleave mid-encode, and ``send_bytes`` copies
        #: synchronously, so one buffer per role suffices
        self._sb_buf = bytearray()
        self._req_buf = bytearray()
        self._traffic_dirty = False
        self._since_merge = 0
        self.merges = 0
        #: timing of the most recent inject_plan, for benchmarks:
        #: wall seconds, per-worker CPU seconds, coordinator CPU seconds
        self.last_inject_stats: dict = {}

        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        ctx = multiprocessing.get_context(start_method)
        self._conns = []
        self._procs = []
        for _ in range(num_workers):
            parent, child = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=worker_main, args=(child, setup_bytes), daemon=True
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        self._closed = False

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send_bytes(bytes(encode_msg(("stop",))))
            except (OSError, BrokenPipeError):
                pass
        for proc, conn in zip(self._procs, self._conns):
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5)
            conn.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- command channel ----------------------------------------------------
    def _broadcast(self, op: tuple) -> None:
        """Queue one pipelined control command for every shard.

        Commands coalesce: nothing hits the pipes until the next
        synchronous exchange (barrier, request, or inject), at which point
        every queued command ships as ONE multi-command wire frame per
        worker — the install of an N-entry program costs a handful of
        frames instead of N, and each frame is encoded once into a
        reusable buffer and shared by all pipes.
        """
        self._generation += 1
        self._pending_ops.append(op)
        self._ctl_pending = True

    def _flush_ctl(self) -> None:
        if not self._pending_ops:
            return
        ops, self._pending_ops = self._pending_ops, []
        frame = encode_msg(
            ("ctl_run", self._generation, tuple(ops)), out=self._sb_buf
        )
        for worker, conn in enumerate(self._conns):
            try:
                conn.send_bytes(frame)
            except (OSError, BrokenPipeError) as exc:
                raise EngineError(f"worker {worker} is dead: {exc}") from exc

    def _recv(self, worker: int):
        conn = self._conns[worker]
        if not conn.poll(self.reply_timeout_s):
            raise EngineError(
                f"worker {worker} did not reply within {self.reply_timeout_s}s"
            )
        reply = decode_msg(conn.recv_bytes())
        if reply[0] == "err":
            raise WorkerError(f"worker {worker}: {reply[1]}")
        return reply

    def _request(self, worker: int, msg: tuple):
        self._flush_ctl()
        self._conns[worker].send_bytes(encode_msg(msg, out=self._req_buf))
        reply = self._recv(worker)
        return reply[1]

    def barrier(self) -> None:
        """Drain the command channel: every shard acks the current
        generation; deferred control errors surface here."""
        if not self._ctl_pending:
            return
        self._flush_ctl()
        gen = self._generation
        frame = encode_msg(("barrier", gen), out=self._req_buf)
        for conn in self._conns:
            conn.send_bytes(frame)
        errors = []
        for worker in range(self.num_workers):
            tag, ack_gen, applied_gen, worker_errors = self._recv(worker)
            if tag != "ack" or ack_gen != gen or applied_gen < gen:
                raise EngineError(
                    f"worker {worker} acked generation {applied_gen}, "
                    f"expected {gen}"
                )
            errors.extend(f"worker {worker}: {e}" for e in worker_errors)
        self._ctl_pending = False
        if errors:
            raise WorkerError("; ".join(errors))

    # -- placement ----------------------------------------------------------
    def _note_program(self, program_id: int) -> None:
        if program_id in self.placement:
            return
        try:
            record = self.controller.manager.get(program_id)
        except ProgramNotFoundError:  # pragma: no cover - foreign binding use
            return
        semantics = record.compiled.register_semantics()
        self._semantics[program_id] = semantics
        if semantics.data_parallel:
            self.placement[program_id] = None
            return
        loads = [0] * self.num_workers
        for shard in self.placement.values():
            if shard is not None:
                loads[shard] += 1
        self.placement[program_id] = min(
            range(self.num_workers), key=lambda w: (loads[w], w)
        )

    def _drop_program(self, program_id: int) -> None:
        self.placement.pop(program_id, None)
        self._semantics.pop(program_id, None)

    # -- routing ------------------------------------------------------------
    def shard_of(self, packet) -> int:
        """Which shard a packet belongs to (identical to init-block
        ownership semantics: real parse, real first-match lookup)."""
        switch = self.dataplane.switch
        phv = PHV(switch.layout, packet)
        switch.parse_machine.parse(packet, phv)
        hit = self._init_table.lookup(phv)
        if hit is not None and hit[0] == dp.ACTION_SET_PROGRAM:
            pinned = self.placement.get(hit[1].get("program_id"))
            if pinned is not None:
                return pinned
        return flow_hash(packet.five_tuple()) % self.num_workers

    def plan(self, packets, mode: str = "full") -> ShardPlan:
        """Route a batch and pre-pickle one wire frame per shard."""
        if mode not in ("full", "verdicts"):
            raise ValueError(f"unknown inject mode {mode!r}")
        buckets: list[list] = [[] for _ in range(self.num_workers)]
        index_lists: list[list[int]] = [[] for _ in range(self.num_workers)]
        for index, packet in enumerate(packets):
            shard = self.shard_of(packet)
            buckets[shard].append(packet)
            index_lists[shard].append(index)
        # Each bucket stays ONE pickle blob riding as a bytes leaf inside
        # the wire frame (structural encoding of packet objects would cost
        # a Python-level walk per packet; one pickle per batch is the
        # fast path).  Fresh buffers: plans outlive the next encode.
        frames: list[bytes | None] = [
            bytes(
                encode_msg(
                    (
                        "batch",
                        mode,
                        pickle.dumps(bucket, protocol=pickle.HIGHEST_PROTOCOL),
                    )
                )
            )
            if bucket
            else None
            for bucket in buckets
        ]
        return ShardPlan(
            frames,
            index_lists,
            len(packets),
            mode,
            [len(bucket) for bucket in buckets],
        )

    # -- traffic ------------------------------------------------------------
    def inject(self, packets, mode: str = "full") -> list:
        """Route + process a batch; results come back in arrival order."""
        return self.inject_plan(self.plan(packets, mode))

    def inject_plan(self, plan: ShardPlan) -> list:
        """Process a pre-routed batch.  Results are ordered by original
        batch position; per-flow order is preserved by construction."""
        self.barrier()
        wall0 = time.perf_counter()
        coord_cpu0 = time.process_time()
        active = [w for w in range(self.num_workers) if plan.frames[w] is not None]
        for worker in active:
            self._conns[worker].send_bytes(plan.frames[worker])
        results: list = [None] * plan.total
        worker_cpu: dict[int, float] = {}
        for worker in active:
            payload_blob, cpu_s = self._recv(worker)[1]
            payload = pickle.loads(payload_blob)
            worker_cpu[worker] = cpu_s
            indices = plan.index_lists[worker]
            for index, result in zip(indices, payload):
                results[index] = result
        coord_cpu = time.process_time() - coord_cpu0
        wall = time.perf_counter() - wall0
        self.last_inject_stats = {
            "wall_s": wall,
            "coordinator_cpu_s": coord_cpu,
            "worker_cpu_s": worker_cpu,
            "shard_counts": list(plan.shard_counts),
        }
        if plan.total:
            self._traffic_dirty = True
            self._since_merge += plan.total
            if self.merge_every and self._since_merge >= self.merge_every:
                self.sync()
        return results

    # -- cross-shard merge ---------------------------------------------------
    def sync(self) -> None:
        """Merge shard register state into the coordinator and rebase.

        Mergeable blocks: fold every bucket's shard values over the
        coordinator's base with the block's merge kind, store the merged
        value locally, and push it back to every shard (the new common
        base).  Pinned blocks: mirror the owning shard's region into the
        coordinator (the owner stays authoritative).  No-op when no
        traffic ran since the last merge.
        """
        if not self._traffic_dirty:
            return
        self.barrier()
        for record in self.controller.manager.programs():
            if record.state not in (ProgramState.RUNNING, ProgramState.INSTALLING):
                continue
            semantics = self._semantics.get(record.program_id)
            if semantics is None:
                semantics = record.compiled.register_semantics()
            shard = self.placement.get(record.program_id)
            for mid, alloc in record.memory.items():
                addrs = [
                    addr
                    for _off, base, size in alloc.virtual_layout()
                    for addr in range(base, base + size)
                ]
                if not addrs:
                    continue
                phys = alloc.phys_rpb
                if not semantics.data_parallel:
                    if shard is None:  # pragma: no cover - defensive
                        continue
                    values = self._request(shard, ("read_buckets", phys, addrs))
                    for addr, value in zip(addrs, values):
                        self.dataplane.write_bucket(phys, addr, value)
                    continue
                kind = semantics.memories.get(mid)
                if kind in (None, "read"):
                    # Read-only replicas never diverge; nothing to fold.
                    continue
                base_values = [self.dataplane.read_bucket(phys, a) for a in addrs]
                shard_values = [
                    self._request(w, ("read_buckets", phys, addrs))
                    for w in range(self.num_workers)
                ]
                merged = [
                    merge_buckets(
                        kind,
                        base_values[i],
                        [values[i] for values in shard_values],
                        self.spec.register_width,
                    )
                    for i in range(len(addrs))
                ]
                # Rebase every bucket where any replica (coordinator or
                # shard) diverges from the merged value — a shard's copy
                # is base+its-own-delta, so deltas that cancel across
                # shards still leave replicas to reset.
                rebase = [
                    (addr, value)
                    for i, (addr, value) in enumerate(zip(addrs, merged))
                    if value != base_values[i]
                    or any(values[i] != value for values in shard_values)
                ]
                for addr, value in rebase:
                    self.dataplane.write_bucket(phys, addr, value)
                if rebase:
                    for worker in range(self.num_workers):
                        self._request(worker, ("write_buckets", phys, rebase))
        self._traffic_dirty = False
        self._since_merge = 0
        self.merges += 1

    # -- monitoring ----------------------------------------------------------
    def _aggregate_counter(self, table: str, handle: int) -> int:
        self.barrier()
        return sum(
            self._request(worker, ("counters", [(table, handle)]))[0]
            for worker in range(self.num_workers)
        )

    def stats(self) -> dict:
        """Aggregated traffic-manager counters plus per-shard detail."""
        self.barrier()
        shards = [
            self._request(worker, ("stats",)) for worker in range(self.num_workers)
        ]
        totals: dict[str, int] = {}
        flow_cache: dict[str, int] = {}
        codegen: dict = {}
        for shard in shards:
            for key, value in shard.items():
                if key == "flow_cache":
                    # Nested per-worker cache stats: sum the counters and
                    # the occupancy, drop per-worker bookkeeping
                    # (enabled/generation) from the aggregate.
                    for ckey, cvalue in value.items():
                        if ckey == "occupancy":
                            for okey, ovalue in cvalue.items():
                                flow_cache[okey] = flow_cache.get(okey, 0) + ovalue
                        elif isinstance(cvalue, int) and not isinstance(cvalue, bool):
                            if ckey != "generation":
                                flow_cache[ckey] = flow_cache.get(ckey, 0) + cvalue
                elif key == "codegen":
                    # Same shape discipline for the per-worker codegen
                    # caches: sum counters, merge the fallback-reason map,
                    # drop enabled/generation bookkeeping.
                    for ckey, cvalue in value.items():
                        if ckey == "fallbacks":
                            merged = codegen.setdefault("fallbacks", {})
                            for reason, count in cvalue.items():
                                merged[reason] = merged.get(reason, 0) + count
                        elif isinstance(cvalue, int) and not isinstance(cvalue, bool):
                            if ckey != "generation":
                                codegen[ckey] = codegen.get(ckey, 0) + cvalue
                else:
                    totals[key] = totals.get(key, 0) + value
        if flow_cache:
            totals["flow_cache"] = flow_cache
        if codegen:
            totals["codegen"] = codegen
        return {"workers": self.num_workers, "totals": totals, "shards": shards}
