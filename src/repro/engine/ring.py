"""Weighted consistent-hash ring for flow → worker routing.

The sharded engine used to spread data-parallel flows with
``flow_hash % num_workers``, which remaps ~(N-1)/N of all flows every
time the worker count changes.  :class:`HashRing` replaces the modulo
with the classic consistent-hash construction: each worker owns a set of
*virtual nodes* (points on a 32-bit ring derived deterministically from
the worker id), and a flow routes to the owner of the first vnode at or
after its hash, wrapping at 2^32.  Adding a worker only claims the arcs
immediately preceding its new vnodes — every remapped flow moves *to*
the new worker and the expected remap fraction is ~1/(N+1); removing one
only reassigns its own arcs to the survivors.

Weights make the ring load-aware: ``set_weight(w, 0.5)`` halves worker
``w``'s vnode count (and so its share of hash-routed traffic) without
moving any other worker's points.  The rebalancer uses this to steer
hash-spread flows away from shards that are already hot with pinned
program traffic.  A weight of 0 removes the worker from hash routing
entirely while keeping it eligible for pinned placement.

Everything is deterministic — vnode points are CRC32 of the packed
``(worker_id, vnode_index)`` pair — so coordinator restarts and test
reruns see identical routing.
"""

from __future__ import annotations

import bisect
import struct
import zlib

_VNODE_PACK = struct.Struct("!IH")

#: default virtual nodes per unit-weight worker; high enough that four
#: workers split 64 flows without starving any shard, low enough that a
#: rebuild is a few hundred CRC32s
DEFAULT_VNODES = 128


class HashRing:
    """Deterministic weighted consistent-hash ring over worker ids."""

    def __init__(self, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError("need at least one virtual node per worker")
        self.vnodes = vnodes
        self._weights: dict[int, float] = {}
        self._points: list[int] = []
        self._owners: list[int] = []

    # -- membership ----------------------------------------------------------
    def add(self, worker_id: int, weight: float = 1.0) -> None:
        if worker_id in self._weights:
            raise ValueError(f"worker {worker_id} already on the ring")
        self._weights[worker_id] = weight
        self._rebuild()

    def remove(self, worker_id: int) -> None:
        if worker_id not in self._weights:
            raise ValueError(f"worker {worker_id} not on the ring")
        del self._weights[worker_id]
        self._rebuild()

    def set_weight(self, worker_id: int, weight: float) -> bool:
        """Adjust a worker's share of hash-routed traffic; returns whether
        the ring actually changed."""
        if worker_id not in self._weights:
            raise ValueError(f"worker {worker_id} not on the ring")
        weight = min(max(weight, 0.0), 1.0)
        if self._vnode_count(weight) == self._vnode_count(self._weights[worker_id]):
            self._weights[worker_id] = weight
            return False
        self._weights[worker_id] = weight
        self._rebuild()
        return True

    def workers(self) -> list[int]:
        return sorted(self._weights)

    def weights(self) -> dict[int, float]:
        return dict(self._weights)

    def __len__(self) -> int:
        return len(self._weights)

    def __contains__(self, worker_id: int) -> bool:
        return worker_id in self._weights

    # -- routing -------------------------------------------------------------
    def lookup(self, flow_hash_value: int) -> int:
        """Owner of the first vnode at or after the hash (wrapping)."""
        if not self._points:
            raise LookupError("hash ring has no routable workers")
        index = bisect.bisect_left(self._points, flow_hash_value & 0xFFFFFFFF)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    # -- internals -----------------------------------------------------------
    def _vnode_count(self, weight: float) -> int:
        if weight <= 0.0:
            return 0
        return max(1, round(self.vnodes * min(weight, 1.0)))

    def _rebuild(self) -> None:
        points: list[tuple[int, int]] = []
        for worker_id, weight in self._weights.items():
            for vnode in range(self._vnode_count(weight)):
                point = zlib.crc32(_VNODE_PACK.pack(worker_id & 0xFFFFFFFF, vnode))
                points.append((point, worker_id))
        # Sorting on (point, worker_id) makes collisions deterministic.
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [worker_id for _, worker_id in points]
