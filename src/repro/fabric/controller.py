"""Federated control plane: one northbound over every switch in a fabric.

:class:`FabricController` owns a per-switch P4runpro
:class:`~repro.controlplane.controller.Controller` for every node in a
:class:`~.topology.Topology` and exposes the single-switch northbound
verbs fabric-wide:

* **deploy** is all-or-nothing: the program is installed on every node
  in topology order, and a failure on any node revokes the
  already-installed copies in reverse order before the error propagates —
  afterwards every switch's ``state_fingerprint()`` is byte-identical to
  before the call (the rollback acceptance test).
* **read_mem / snapshot_mem** aggregate a monitoring program's registers
  across devices using the same :data:`repro.rmt.salu.MERGE_SEMANTICS`
  classification the sharded engine uses across shards: MEMADD/MEMSUB
  counters sum, MEMMAX gauges take the max, MEMOR/MEMAND bitmaps fold,
  MEMREAD replicas must agree, and MEMWRITE (last-writer-wins) has no
  sound cross-device aggregate, so only per-node values are returned.
  One caveat the docstring owns: control-plane writes fan out to every
  device, so under ``"sum"`` a written base value is counted once per
  device; monitoring programs should write 0s (reset) or read raw
  per-node values when seeding non-zero bases.
* **write_mem** and incremental **add_case/remove_case** fan out to every
  node (keeping replicas aligned, the same contract the engine's
  control-write fan-out maintains across shards).

Traffic-facing failover lives in :class:`~.fabric.Fabric`; the
controller's :meth:`reroute` is the northbound trigger for the
controlled-mode table flip.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..lang.errors import P4runproError
from ..rmt.salu import MERGE_SEMANTICS, merge_buckets
from .fabric import Fabric
from .topology import Topology

#: merge-kind -> identity base for cross-device folding (width-32 mask for
#: "and", whose fold only clears bits)
_IDENTITY = {"sum": 0, "or": 0, "max": 0, "and": (1 << 32) - 1}


@dataclass
class FabricProgram:
    """One fabric-wide deployment: the same program on every node."""

    program_id: int
    name: str
    #: node name -> that node's DeployedProgram handle
    handles: dict[str, object]
    #: summed install stats (entries, update ms) for reporting
    stats: dict = field(default_factory=dict)

    def handle_on(self, node: str):
        try:
            return self.handles[node]
        except KeyError:
            raise P4runproError(
                f"program {self.program_id} is not deployed on {node!r}"
            ) from None


class FabricController:
    """Federates per-switch controllers under one northbound."""

    def __init__(
        self,
        topology: Topology,
        *,
        routing: str = "auto",
        fabric: Fabric | None = None,
    ):
        self.topology = topology
        self.fabric = fabric if fabric is not None else Fabric(
            topology, routing=routing
        )
        self.programs: dict[int, FabricProgram] = {}
        self._next_id = 1

    # -- helpers --------------------------------------------------------------
    def _node_order(self) -> list[str]:
        return list(self.topology.nodes)

    def _program(self, handle) -> FabricProgram:
        program_id = getattr(handle, "program_id", handle)
        try:
            return self.programs[program_id]
        except KeyError:
            raise P4runproError(
                f"no fabric program {program_id}"
            ) from None

    def _controller(self, node: str):
        return self.topology.nodes[node].controller

    def _merge_kind(self, program: FabricProgram, mid: str):
        """The MERGE_SEMANTICS kind of ``mid``, from any node's record."""
        node = next(iter(program.handles))
        record = self._controller(node).manager.get(
            program.handles[node].program_id
        )
        semantics = record.compiled.register_semantics()
        if mid not in semantics.memories:
            raise P4runproError(
                f"program {program.name!r} has no memory {mid!r}"
            )
        return semantics.memories[mid]

    @staticmethod
    def _aggregate(kind, per_node: dict[str, int]) -> int | None:
        values = list(per_node.values())
        if kind is None or not values:
            return None
        if kind == "read":
            # Replicas of a read-only register diverge only if a
            # control write skipped a node; surface the first copy.
            return values[0]
        return merge_buckets(kind, _IDENTITY[kind], values)

    # -- lifecycle ------------------------------------------------------------
    def deploy(self, source, *, program_name=None, options=None, nodes=None):
        """Install a program on every node (or ``nodes``), atomically.

        Returns a :class:`FabricProgram`.  On a partial failure the
        already-installed copies are revoked in reverse install order and
        the original error re-raised; no switch state changes survive.
        """
        targets = list(nodes) if nodes is not None else self._node_order()
        installed: list[tuple[str, object]] = []
        handles: dict[str, object] = {}
        try:
            for node in targets:
                handle = self._controller(node).deploy(
                    source, program_name=program_name, options=options
                )
                installed.append((node, handle))
                handles[node] = handle
        except Exception:
            for node, handle in reversed(installed):
                self._controller(node).revoke(handle)
            raise
        program = FabricProgram(
            program_id=self._next_id,
            name=next(iter(handles.values())).name,
            handles=handles,
            stats={
                "entries_per_node": {
                    node: handle.stats.entries
                    for node, handle in handles.items()
                },
                "update_ms": {
                    node: handle.stats.update_ms
                    for node, handle in handles.items()
                },
            },
        )
        self._next_id += 1
        self.programs[program.program_id] = program
        return program

    def revoke(self, handle) -> dict[str, float]:
        """Remove a fabric program everywhere; per-node update delays (ms)."""
        program = self._program(handle)
        delays = {}
        for node, node_handle in program.handles.items():
            delays[node] = self._controller(node).revoke(node_handle)
        del self.programs[program.program_id]
        return delays

    def add_case(self, handle, conditions, **kwargs) -> dict[str, object]:
        """Fan an incremental case out to every node's copy."""
        program = self._program(handle)
        return {
            node: self._controller(node).add_case(
                program.handles[node], conditions, **kwargs
            )
            for node in program.handles
        }

    def list_programs(self) -> list[dict]:
        listing = []
        for program in self.programs.values():
            listing.append(
                {
                    "program_id": program.program_id,
                    "name": program.name,
                    "nodes": {
                        node: handle.program_id
                        for node, handle in program.handles.items()
                    },
                    "entries_per_node": dict(
                        program.stats.get("entries_per_node", {})
                    ),
                }
            )
        return listing

    # -- memory ---------------------------------------------------------------
    def read_memory(self, handle, mid: str, vaddr: int) -> dict:
        """One bucket, fabric-wide: per-node values plus the merged value."""
        program = self._program(handle)
        kind = self._merge_kind(program, mid)
        per_node = {
            node: self._controller(node).read_memory(
                program.handles[node], mid, vaddr
            )
            for node in program.handles
        }
        return {
            "per_node": per_node,
            "kind": kind,
            "aggregate": self._aggregate(kind, per_node),
        }

    def write_memory(self, handle, mid: str, vaddr: int, value: int) -> None:
        program = self._program(handle)
        for node in program.handles:
            self._controller(node).write_memory(
                program.handles[node], mid, vaddr, value
            )

    def snapshot_memory(self, handle, mid: str) -> dict:
        """A whole register block, fabric-wide, bucket-wise aggregated."""
        program = self._program(handle)
        kind = self._merge_kind(program, mid)
        per_node = {
            node: self._controller(node).snapshot_memory(
                program.handles[node], mid
            )
            for node in program.handles
        }
        size = min(len(block) for block in per_node.values())
        aggregate = None
        if kind is not None:
            aggregate = [
                self._aggregate(
                    kind, {node: per_node[node][off] for node in per_node}
                )
                for off in range(size)
            ]
        return {"per_node": per_node, "kind": kind, "aggregate": aggregate}

    # -- monitoring -----------------------------------------------------------
    def program_stats(self, handle) -> dict:
        program = self._program(handle)
        per_node = {
            node: self._controller(node).program_stats(program.handles[node])
            for node in program.handles
        }
        totals = {
            key: sum(stats[key] for stats in per_node.values())
            for key in ("matched_packets", "total_entry_hits", "entries")
        }
        return {"per_node": per_node, "totals": totals}

    def state_fingerprints(self) -> dict[str, str]:
        """Per-node resource-manager fingerprints plus a combined digest."""
        per_node = {
            node: self._controller(node).manager.state_fingerprint()
            for node in self._node_order()
        }
        combined = hashlib.sha256(
            "|".join(f"{n}={fp}" for n, fp in sorted(per_node.items())).encode()
        ).hexdigest()
        return {"combined": combined, **per_node}

    def stats(self) -> dict:
        """Per-switch and per-link fabric statistics (the ``stats`` RPC)."""
        return {
            "nodes": {
                name: node.stats()
                for name, node in self.topology.nodes.items()
            },
            "links": {
                link.name: dict(link.stats.as_dict(), up=link.up)
                for link in self.topology.links
            },
            "routing": self.fabric.routing,
            "routes": {
                f"{src}->{dst}": list(spines)
                for (src, dst), spines in self.fabric.routes.items()
            },
        }

    # -- failover -------------------------------------------------------------
    def reroute(self) -> float:
        """Controlled-mode table flip; returns the flip latency in ms."""
        return self.fabric.reroute()

    def close(self) -> None:
        self.topology.close()
