"""The fabric packet engine: ECMP routing, link traversal, accounting.

:class:`Fabric` drives traffic through a :class:`~.topology.Topology`.
Each packet is injected at an ingress leaf, processed by that leaf's full
P4runpro pipeline, and — when the pipeline forwards it and the
destination IP belongs to another leaf — carried across a spine chosen by
an RSS-style CRC32 flow hash over the real parsed 5-tuple (the same
:func:`repro.engine.engine.flow_hash` the sharded engine routes with, so
every flow sticks to one path and per-flow order is preserved).  The
spine and the egress leaf each run the packet through their own
pipelines, so a fabric-wide monitoring program observes every hop.

Two routing modes:

* ``auto`` — the data plane hashes over the spines whose full path
  (leaf uplink, spine, spine downlink) is currently up: a failure is
  bypassed immediately, the hardware-ECMP ideal;
* ``controlled`` — the data plane hashes over the *installed* route
  table and keeps using a dead path until the controller calls
  :meth:`Fabric.reroute` (the p4containerflow choreography: failures
  drop traffic, accounted per cause, until the controller flips the
  table; the flip's wall latency is recorded).

Every injected packet is accounted exactly once:
``injected == delivered + sum(drops-by-cause)`` — the invariant the
failure-scenario tests assert.  Per-flow accounting additionally tracks
losses and reorders (a packet arriving — by latency-accumulated
timestamp — before an earlier-injected packet of its own flow).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..engine.engine import flow_hash
from ..rmt.pipeline import Verdict
from .topology import Topology

#: drop causes a FabricReport accounts
DROP_CAUSES = (
    "pipeline",
    "link_down",
    "link_loss",
    "link_bandwidth",
    "node_down",
    "no_route",
)

DELIVERED = "delivered"
DROPPED = "dropped"


@dataclass
class PacketOutcome:
    """What happened to one injected packet."""

    index: int
    flow: tuple[int, int, int, int, int]
    ingress: str
    status: str
    #: drop cause (one of DROP_CAUSES) when status == "dropped"
    cause: str | None = None
    #: node where the packet exited (delivery) or died (drop)
    node: str | None = None
    #: switch hops actually traversed
    path: tuple[str, ...] = ()
    #: pipeline result at the exit node (None for pre-pipeline drops)
    result: object | None = None
    arrive_ts: float = 0.0


@dataclass
class FlowAccount:
    """Per-flow delivery accounting."""

    injected: int = 0
    delivered: int = 0
    lost: int = 0
    reorders: int = 0
    _last_arrival: float = field(default=float("-inf"), repr=False)

    def as_dict(self) -> dict:
        return {
            "injected": self.injected,
            "delivered": self.delivered,
            "lost": self.lost,
            "reorders": self.reorders,
        }


@dataclass
class FabricReport:
    """Aggregate outcome of one :meth:`Fabric.run`."""

    injected: int
    outcomes: list[PacketOutcome]
    drops: dict[str, int]
    per_flow: dict[tuple, FlowAccount]
    per_link: dict[str, dict]
    per_node: dict[str, dict]
    wall_s: float
    reroutes: list[dict] = field(default_factory=list)

    @property
    def delivered(self) -> int:
        return self.injected - sum(self.drops.values())

    @property
    def reorders(self) -> int:
        return sum(acc.reorders for acc in self.per_flow.values())

    def conservation_ok(self) -> bool:
        """True when every injected packet is delivered or accounted."""
        delivered = sum(1 for o in self.outcomes if o.status == DELIVERED)
        dropped = sum(1 for o in self.outcomes if o.status == DROPPED)
        return (
            delivered + dropped == self.injected
            and dropped == sum(self.drops.values())
        )

    def as_dict(self) -> dict:
        return {
            "injected": self.injected,
            "delivered": self.delivered,
            "drops": dict(self.drops),
            "reorders": self.reorders,
            "wall_s": round(self.wall_s, 6),
            "per_link": self.per_link,
            "reroutes": list(self.reroutes),
        }


class Scenario:
    """A schedule of fabric mutations fired at packet-injection indices.

    ::

        scenario = (
            Scenario()
            .link_down(500, "leaf0", "spine0")
            .reroute(800)
            .node_down(1200, "spine1")
        )
        report = fabric.run(assignments, scenario=scenario)
    """

    def __init__(self) -> None:
        self.events: list[tuple[int, str, object]] = []

    def at(self, index: int, action, label: str = "event") -> "Scenario":
        """Fire ``action(fabric)`` just before packet ``index`` is injected."""
        self.events.append((index, label, action))
        return self

    def link_down(self, index: int, a: str, b: str) -> "Scenario":
        return self.at(
            index, lambda f: f.set_link_state(a, b, False), f"link_down {a}<->{b}"
        )

    def link_up(self, index: int, a: str, b: str) -> "Scenario":
        return self.at(
            index, lambda f: f.set_link_state(a, b, True), f"link_up {a}<->{b}"
        )

    def node_down(self, index: int, name: str) -> "Scenario":
        return self.at(
            index, lambda f: f.set_node_state(name, False), f"node_down {name}"
        )

    def node_up(self, index: int, name: str) -> "Scenario":
        return self.at(
            index, lambda f: f.set_node_state(name, True), f"node_up {name}"
        )

    def reroute(self, index: int) -> "Scenario":
        return self.at(index, lambda f: f.reroute(), "reroute")


class Fabric:
    """Routing and traffic execution over a topology."""

    def __init__(self, topology: Topology, *, routing: str = "auto"):
        if routing not in ("auto", "controlled"):
            raise ValueError(f"unknown routing mode {routing!r}")
        self.topology = topology
        self.routing = routing
        #: installed ECMP route table (controlled mode):
        #: (ingress leaf, egress leaf) -> spine list
        self.routes: dict[tuple[str, str], tuple[str, ...]] = {}
        #: reroute events of the most recent run (latency, trigger index)
        self.reroutes: list[dict] = []
        self._run_index = 0
        self.install_routes()

    # -- control surface ------------------------------------------------------
    def install_routes(self) -> None:
        """(Re)install the full ECMP table: every up spine on every pair."""
        spines = tuple(
            s for s in self.topology.spines if self.topology.nodes[s].up
        )
        self.routes = {
            (src, dst): spines
            for src in self.topology.leaves
            for dst in self.topology.leaves
            if src != dst
        }

    def reroute(self) -> float:
        """Controller-driven table flip: recompute every (ingress, egress)
        pair's spine list over the links and switches currently up;
        returns (and records) the wall latency in milliseconds — the
        fabric analogue of p4containerflow's consistent-hash table swap."""
        t0 = time.perf_counter()
        topo = self.topology
        routes: dict[tuple[str, str], tuple[str, ...]] = {}
        for src in topo.leaves:
            for dst in topo.leaves:
                if src == dst:
                    continue
                usable = []
                for spine in topo.spines:
                    if not topo.nodes[spine].up:
                        continue
                    if not topo.link_between(src, spine).up:
                        continue
                    if not topo.link_between(spine, dst).up:
                        continue
                    usable.append(spine)
                routes[(src, dst)] = tuple(usable)
        self.routes = routes
        latency_ms = (time.perf_counter() - t0) * 1e3
        self.reroutes.append(
            {"at_index": self._run_index, "latency_ms": round(latency_ms, 6)}
        )
        return latency_ms

    def set_link_state(self, a: str, b: str, up: bool) -> None:
        self.topology.link_between(a, b).up = up

    def set_node_state(self, name: str, up: bool) -> None:
        node = self.topology.nodes.get(name)
        if node is None:
            raise KeyError(f"no node {name!r}")
        node.up = up

    # -- routing --------------------------------------------------------------
    def _spine_for(
        self, leaf: str, dst_leaf: str, flow: tuple
    ) -> tuple[str | None, str | None]:
        """Pick the spine for a cross-leaf packet.

        Returns ``(spine, None)`` or ``(None, drop_cause)``.  In auto mode
        the hash runs over spines whose full path is up (ECMP failover);
        in controlled mode it runs over the installed table, so a dead
        element on the chosen path becomes an accounted drop until the
        controller reroutes.
        """
        topo = self.topology
        if self.routing == "auto":
            candidates = [
                s
                for s in topo.spines
                if topo.nodes[s].up
                and topo.link_between(leaf, s).up
                and topo.link_between(s, dst_leaf).up
            ]
            if not candidates:
                return None, "no_route"
            return candidates[flow_hash(flow) % len(candidates)], None
        installed = self.routes.get((leaf, dst_leaf), ())
        if not installed:
            return None, "no_route"
        spine = installed[flow_hash(flow) % len(installed)]
        if not topo.nodes[spine].up:
            return None, "node_down"
        return spine, None

    # -- traffic --------------------------------------------------------------
    def run(
        self,
        assignments: list[tuple[str, object]],
        *,
        scenario: Scenario | None = None,
        duration_s: float | None = None,
    ) -> FabricReport:
        """Drive ``[(ingress_leaf, packet), ...]`` through the fabric.

        Packets are processed hop by hop in contiguous chunks between
        scenario events, batched per node (preserving injection order
        within each node, so per-flow order through the pipelines matches
        single-switch execution).  ``duration_s`` opens a bandwidth
        window on every link: a link may carry at most
        ``bandwidth * duration`` bytes during this run.
        """
        topo = self.topology
        events = sorted(scenario.events, key=lambda e: e[0]) if scenario else []
        for link in topo.links:
            link.stats.reset()
            link.begin_window(duration_s)
        self.reroutes = []
        outcomes: list[PacketOutcome | None] = [None] * len(assignments)
        wall0 = time.perf_counter()
        cursor = 0
        for index, _label, action in events:
            boundary = max(cursor, min(index, len(assignments)))
            if boundary > cursor:
                self._run_chunk(assignments, cursor, boundary, outcomes)
                cursor = boundary
            self._run_index = boundary
            action(self)
        if cursor < len(assignments):
            self._run_chunk(assignments, cursor, len(assignments), outcomes)
        wall_s = time.perf_counter() - wall0
        return self._report(outcomes, wall_s)

    def _run_chunk(
        self,
        assignments: list,
        start: int,
        stop: int,
        outcomes: list,
    ) -> None:
        topo = self.topology
        # Hop A: ingress-leaf pipelines.  Work items carry
        # (index, flow, ingress, path, packet, latency_s).
        ingress_work: dict[str, list] = {}
        for index in range(start, stop):
            leaf, packet = assignments[index]
            node = topo.nodes.get(leaf)
            if node is None or node.role != "leaf":
                raise KeyError(f"{leaf!r} is not an ingress leaf")
            flow = packet.five_tuple()
            if not node.up:
                outcomes[index] = PacketOutcome(
                    index, flow, leaf, DROPPED, "node_down", leaf, (leaf,)
                )
                continue
            ingress_work.setdefault(leaf, []).append(
                (index, flow, leaf, (leaf,), packet, 0.0)
            )
        transit: dict[str, list] = {}  # spine -> work items (with dst leaf)
        for leaf in topo.leaves:
            items = ingress_work.get(leaf)
            if not items:
                continue
            results = topo.nodes[leaf].process_batch(
                [item[4] for item in items]
            )
            for item, result in zip(items, results):
                index, flow, ingress, path, packet, latency = item
                if result.verdict is Verdict.DROP:
                    outcomes[index] = PacketOutcome(
                        index, flow, ingress, DROPPED, "pipeline", leaf, path,
                        result,
                    )
                    continue
                dst_leaf = None
                if result.verdict is Verdict.FORWARD:
                    dst_leaf = topo.leaf_of_ip(flow[1])
                if dst_leaf is None or dst_leaf == leaf:
                    # Local/host delivery (or a non-FORWARD verdict —
                    # reflect, to-CPU, multicast — which exits here).
                    outcomes[index] = PacketOutcome(
                        index, flow, ingress, DELIVERED, None, leaf, path,
                        result, packet.ts + latency,
                    )
                    continue
                spine, cause = self._spine_for(leaf, dst_leaf, flow)
                if spine is None:
                    outcomes[index] = PacketOutcome(
                        index, flow, ingress, DROPPED, cause, leaf, path,
                        result,
                    )
                    continue
                out = result.packet
                link = topo.link_between(leaf, spine)
                verdict = link.transmit(out.size)
                if verdict != "ok":
                    outcomes[index] = PacketOutcome(
                        index, flow, ingress, DROPPED, verdict, leaf, path,
                        result,
                    )
                    continue
                out.ingress_port = link.ingress_port_at(spine)
                transit.setdefault(spine, []).append(
                    (
                        index,
                        flow,
                        ingress,
                        path + (spine,),
                        out,
                        latency + link.latency_s,
                        dst_leaf,
                    )
                )
        # Hop B: spine pipelines, then the downlink to the egress leaf.
        egress_work: dict[str, list] = {}
        for spine in topo.spines:
            items = transit.get(spine)
            if not items:
                continue
            results = topo.nodes[spine].process_batch(
                [item[4] for item in items]
            )
            for item, result in zip(items, results):
                index, flow, ingress, path, packet, latency, dst_leaf = item
                if result.verdict is Verdict.DROP:
                    outcomes[index] = PacketOutcome(
                        index, flow, ingress, DROPPED, "pipeline", spine, path,
                        result,
                    )
                    continue
                if result.verdict is not Verdict.FORWARD:
                    outcomes[index] = PacketOutcome(
                        index, flow, ingress, DELIVERED, None, spine, path,
                        result, packet.ts + latency,
                    )
                    continue
                if not topo.nodes[dst_leaf].up:
                    outcomes[index] = PacketOutcome(
                        index, flow, ingress, DROPPED, "node_down", spine,
                        path, result,
                    )
                    continue
                out = result.packet
                link = topo.link_between(spine, dst_leaf)
                verdict = link.transmit(out.size)
                if verdict != "ok":
                    outcomes[index] = PacketOutcome(
                        index, flow, ingress, DROPPED, verdict, spine, path,
                        result,
                    )
                    continue
                out.ingress_port = link.ingress_port_at(dst_leaf)
                egress_work.setdefault(dst_leaf, []).append(
                    (
                        index,
                        flow,
                        ingress,
                        path + (dst_leaf,),
                        out,
                        latency + link.latency_s,
                    )
                )
        # Hop C: egress-leaf pipelines; whatever survives is delivered.
        for leaf in topo.leaves:
            items = egress_work.get(leaf)
            if not items:
                continue
            results = topo.nodes[leaf].process_batch(
                [item[4] for item in items]
            )
            for item, result in zip(items, results):
                index, flow, ingress, path, packet, latency = item
                if result.verdict is Verdict.DROP:
                    outcomes[index] = PacketOutcome(
                        index, flow, ingress, DROPPED, "pipeline", leaf, path,
                        result,
                    )
                    continue
                outcomes[index] = PacketOutcome(
                    index, flow, ingress, DELIVERED, None, leaf, path, result,
                    packet.ts + latency,
                )

    # -- reporting ------------------------------------------------------------
    def _report(self, outcomes: list, wall_s: float) -> FabricReport:
        drops = {cause: 0 for cause in DROP_CAUSES}
        per_flow: dict[tuple, FlowAccount] = {}
        for outcome in outcomes:
            account = per_flow.setdefault(outcome.flow, FlowAccount())
            account.injected += 1
            if outcome.status == DROPPED:
                drops[outcome.cause] += 1
                account.lost += 1
                continue
            account.delivered += 1
            # A delivery arriving before an earlier-injected packet of the
            # same flow (outcomes iterate in injection order) overtook it.
            if outcome.arrive_ts < account._last_arrival:
                account.reorders += 1
            else:
                account._last_arrival = outcome.arrive_ts
        per_link = {
            link.name: dict(link.stats.as_dict(), up=link.up)
            for link in self.topology.links
        }
        per_node = {
            name: node.stats() for name, node in self.topology.nodes.items()
        }
        return FabricReport(
            injected=len(outcomes),
            outcomes=outcomes,
            drops={cause: n for cause, n in drops.items() if n},
            per_flow=per_flow,
            per_link=per_link,
            per_node=per_node,
            wall_s=wall_s,
            reroutes=list(self.reroutes),
        )
